//===- tests/core/DependenceGraphTest.cpp -------------------------------------===//
//
// End-to-end dependence graph tests over parsed programs, including
// orientation (forward/reversed vectors), dependence kinds, carriers,
// and loop-independent dependences.
//
//===----------------------------------------------------------------------===//

#include "core/DependenceGraph.h"

#include "../TestHelpers.h"
#include "driver/Analyzer.h"

#include <gtest/gtest.h>

using namespace pdt;
using namespace pdt::test;

namespace {

/// Analyzes with default options (normalization, IV substitution,
/// symbols at least 1).
AnalysisResult analyze(const std::string &Source) {
  AnalysisResult R = analyzeSource(Source, "test");
  EXPECT_TRUE(R.Parsed);
  return R;
}

unsigned countKind(const DependenceGraph &G, DependenceKind K) {
  unsigned N = 0;
  for (const Dependence &D : G.dependences())
    N += D.Kind == K;
  return N;
}

} // namespace

TEST(DependenceGraph, FlowRecurrence) {
  AnalysisResult R = analyze(R"(
do i = 1, 100
  a(i) = a(i-1) + 1
end do
)");
  ASSERT_EQ(R.Graph.dependences().size(), 1u);
  const Dependence &D = R.Graph.dependences()[0];
  EXPECT_EQ(D.Kind, DependenceKind::Flow);
  ASSERT_TRUE(D.CarriedLevel.has_value());
  EXPECT_EQ(*D.CarriedLevel, 0u);
  EXPECT_EQ(D.Vector.Distances[0], std::optional<int64_t>(1));
  // The write is the source even though the read appears first
  // textually (reversed orientation).
  EXPECT_TRUE(R.Graph.accesses()[D.Source].IsWrite);
}

TEST(DependenceGraph, AntiDependence) {
  AnalysisResult R = analyze(R"(
do i = 1, 100
  a(i) = a(i+1) + 1
end do
)");
  ASSERT_EQ(R.Graph.dependences().size(), 1u);
  const Dependence &D = R.Graph.dependences()[0];
  EXPECT_EQ(D.Kind, DependenceKind::Anti);
  EXPECT_EQ(D.Vector.Distances[0], std::optional<int64_t>(1));
  EXPECT_FALSE(R.Graph.accesses()[D.Source].IsWrite);
}

TEST(DependenceGraph, LoopIndependentFlow) {
  AnalysisResult R = analyze(R"(
do i = 1, 100
  a(i) = 1
  b(i) = a(i)
end do
)");
  ASSERT_EQ(R.Graph.dependences().size(), 1u);
  const Dependence &D = R.Graph.dependences()[0];
  EXPECT_EQ(D.Kind, DependenceKind::Flow);
  EXPECT_TRUE(D.isLoopIndependent());
  EXPECT_TRUE(R.Graph.accesses()[D.Source].IsWrite);
}

TEST(DependenceGraph, OutputDependence) {
  AnalysisResult R = analyze(R"(
do i = 1, 100
  a(i) = 1
  a(i) = 2
end do
)");
  ASSERT_EQ(countKind(R.Graph, DependenceKind::Output), 1u);
  const Dependence &D = R.Graph.dependences()[0];
  EXPECT_TRUE(D.isLoopIndependent());
}

TEST(DependenceGraph, IndependentColumns) {
  AnalysisResult R = analyze(R"(
do i = 1, 100
  a(2*i) = a(2*i+1) + 1
end do
)");
  EXPECT_TRUE(R.Graph.dependences().empty());
  EXPECT_EQ(R.Stats.IndependentPairs, 1u);
}

TEST(DependenceGraph, ParallelInnerSerialOuter) {
  AnalysisResult R = analyze(R"(
do i = 1, 100
  do j = 1, 100
    a(i, j) = a(i-1, j) + 1
  end do
end do
)");
  std::vector<const DoLoop *> Loops = R.Graph.allLoops();
  ASSERT_EQ(Loops.size(), 2u);
  EXPECT_FALSE(R.Graph.isLoopParallel(Loops[0]));
  EXPECT_TRUE(R.Graph.isLoopParallel(Loops[1]));
}

TEST(DependenceGraph, CrossingDependencesBothWays) {
  // a(i) = a(n-i+1): anti and flow components cross the middle.
  AnalysisResult R = analyze(R"(
do i = 1, 9
  a(i) = a(10-i) + 1
end do
)");
  // i + i' = 10: crossing point 5; both '<' (flow from write to later
  // read? check kinds exist) and '>' components.
  EXPECT_FALSE(R.Graph.dependences().empty());
  bool SawFlow = false, SawAnti = false;
  for (const Dependence &D : R.Graph.dependences()) {
    SawFlow |= D.Kind == DependenceKind::Flow;
    SawAnti |= D.Kind == DependenceKind::Anti;
  }
  EXPECT_TRUE(SawFlow);
  EXPECT_TRUE(SawAnti);
}

TEST(DependenceGraph, InputDependencesOptIn) {
  const char *Source = R"(
do i = 1, 100
  b(i) = a(i) + a(i)
end do
)";
  AnalyzerOptions Options;
  AnalysisResult Without = analyzeSource(Source, "t", Options);
  EXPECT_EQ(countKind(Without.Graph, DependenceKind::Input), 0u);
  Options.IncludeInputDeps = true;
  AnalysisResult With = analyzeSource(Source, "t", Options);
  EXPECT_GE(countKind(With.Graph, DependenceKind::Input), 1u);
}

TEST(DependenceGraph, SkewedNestDistances) {
  // The paper's simplified Livermore kernel: distances (1,0) and (0,1).
  AnalysisResult R = analyze(R"(
do j = 1, 50
  do i = 1, 50
    a(i, j) = a(i-1, j) + a(i, j-1)
  end do
end do
)");
  std::set<std::pair<int64_t, int64_t>> Dists;
  for (const Dependence &D : R.Graph.dependences()) {
    if (D.Kind != DependenceKind::Flow)
      continue;
    ASSERT_EQ(D.Vector.depth(), 2u);
    ASSERT_TRUE(D.Vector.Distances[0].has_value());
    ASSERT_TRUE(D.Vector.Distances[1].has_value());
    Dists.insert({*D.Vector.Distances[0], *D.Vector.Distances[1]});
  }
  EXPECT_TRUE(Dists.count({0, 1}));
  EXPECT_TRUE(Dists.count({1, 0}));
}

TEST(DependenceGraph, ReportMentionsEverything) {
  AnalysisResult R = analyze(R"(
do i = 1, 100
  a(i) = a(i-1) + 1
end do
)");
  std::string S = R.Graph.str();
  EXPECT_NE(S.find("flow dependence"), std::string::npos);
  EXPECT_NE(S.find("carried by loop i"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// orientVectors
//===----------------------------------------------------------------------===//

TEST(OrientVectors, PureForward) {
  DependenceVector V(2);
  V.Directions = {DirLT, DirEQ};
  std::vector<OrientedVector> O = orientVectors(V);
  ASSERT_EQ(O.size(), 1u);
  EXPECT_FALSE(O[0].Reversed);
  EXPECT_EQ(O[0].CarriedLevel, std::optional<unsigned>(0));
}

TEST(OrientVectors, PureBackwardMirrors) {
  DependenceVector V(2);
  V.Directions = {DirGT, DirLT};
  V.Distances[0] = -2;
  V.Distances[1] = 3;
  std::vector<OrientedVector> O = orientVectors(V);
  ASSERT_EQ(O.size(), 1u);
  EXPECT_TRUE(O[0].Reversed);
  EXPECT_EQ(O[0].Vector.Directions[0], DirLT);
  EXPECT_EQ(O[0].Vector.Distances[0], std::optional<int64_t>(2));
  EXPECT_EQ(O[0].Vector.Directions[1], DirGT);
  EXPECT_EQ(O[0].Vector.Distances[1], std::optional<int64_t>(-3));
}

TEST(OrientVectors, StarSplitsThreeWays) {
  DependenceVector V(1);
  V.Directions = {DirAll};
  std::vector<OrientedVector> O = orientVectors(V);
  // '<' component, '>' component, and the all-'=' component.
  ASSERT_EQ(O.size(), 3u);
  EXPECT_EQ(O[0].CarriedLevel, std::optional<unsigned>(0));
  EXPECT_FALSE(O[0].Reversed);
  EXPECT_TRUE(O[1].Reversed);
  EXPECT_FALSE(O[2].CarriedLevel.has_value());
}

TEST(OrientVectors, NonZeroDistanceStopsEqualPrefix) {
  DependenceVector V(2);
  V.Directions = {DirEQ, DirLT};
  V.Distances[0] = 1; // Contradicts '=': nothing beyond level 0.
  std::vector<OrientedVector> O = orientVectors(V);
  EXPECT_TRUE(O.empty());
}

TEST(OrientVectors, SecondLevelCarrier) {
  DependenceVector V(2);
  V.Directions = {DirEQ, DirLT};
  std::vector<OrientedVector> O = orientVectors(V);
  ASSERT_EQ(O.size(), 1u);
  EXPECT_EQ(O[0].CarriedLevel, std::optional<unsigned>(1));
}
