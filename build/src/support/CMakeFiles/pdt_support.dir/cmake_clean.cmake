file(REMOVE_RECURSE
  "CMakeFiles/pdt_support.dir/ErrorHandling.cpp.o"
  "CMakeFiles/pdt_support.dir/ErrorHandling.cpp.o.d"
  "CMakeFiles/pdt_support.dir/Interval.cpp.o"
  "CMakeFiles/pdt_support.dir/Interval.cpp.o.d"
  "CMakeFiles/pdt_support.dir/MathExtras.cpp.o"
  "CMakeFiles/pdt_support.dir/MathExtras.cpp.o.d"
  "CMakeFiles/pdt_support.dir/Rational.cpp.o"
  "CMakeFiles/pdt_support.dir/Rational.cpp.o.d"
  "CMakeFiles/pdt_support.dir/SCC.cpp.o"
  "CMakeFiles/pdt_support.dir/SCC.cpp.o.d"
  "libpdt_support.a"
  "libpdt_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdt_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
