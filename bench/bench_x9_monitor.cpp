//===- bench/bench_x9_monitor.cpp -----------------------------------------===//
//
// Experiment X9: the continuous-monitoring overhead contract. The
// always-on monitor stack — flight recorder rings, event journal,
// telemetry sampler, stall watchdog — claims to be cheap enough to
// leave armed in production: on the X3 graph-construction workload it
// must cost <= 5% over the fully disarmed configuration, it must never
// change the analysis (byte-identical dependence edges), and flight
// memory must stay exactly at the configured per-thread cap no matter
// how many spans flow through.
//
// Three legs:
//
//   * disarmed: nothing armed — the bare production baseline;
//   * armed:    flight recorder (bounded rings) + in-memory journal +
//               threadless sampler + armed watchdog, interleaved with
//               the disarmed leg rep by rep so machine drift divides
//               out of every paired ratio (same statistic as X5);
//   * stall:    untimed, fully deterministic — an injected clock and a
//               tight-quiet heartbeat prove that a silent stage yields
//               exactly one watchdog verdict, one journaled
//               "watchdog-stall" event, and one parseable postmortem
//               flight dump.
//
// Writes BENCH_monitor.json plus a companion pdt-report-v1 document
// (BENCH_monitor_report.json) whose leg timings ride along as workload
// values; the depprof_monitor_history ctest appends the latter to the
// perf ledger. Run with --smoke for the sub-second workload (the <= 5%
// assert is enforced only in the full run, where timing noise is
// amortized).
//
//===----------------------------------------------------------------------===//

#include "BenchMeta.h"

#include "core/DependenceGraph.h"
#include "driver/Analyzer.h"
#include "driver/RunReport.h"
#include "driver/WorkloadGenerator.h"
#include "support/EventLog.h"
#include "support/FlightRecorder.h"
#include "support/Json.h"
#include "support/Sampler.h"
#include "support/Trace.h"
#include "support/Watchdog.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

using namespace pdt;

namespace {

/// One dependence edge rendered without graph identity (same format as
/// bench_x3 / bench_x5), so the two legs compare byte for byte.
std::string renderEdges(const std::vector<Dependence> &Edges) {
  std::string Out;
  for (const Dependence &D : Edges) {
    Out += dependenceKindName(D.Kind);
    Out += ' ';
    Out += std::to_string(D.Source);
    Out += "->";
    Out += std::to_string(D.Sink);
    Out += ' ';
    Out += D.Vector.str();
    Out += D.Carrier ? " @" + D.Carrier->getIndexName() : " indep";
    Out += D.Exact ? " exact" : " assumed";
    Out += '\n';
  }
  return Out;
}

struct Leg {
  double Secs = 0;
  std::string EdgeReport;
};

double seconds(std::chrono::steady_clock::duration D) {
  return std::chrono::duration<double>(D).count();
}

/// The armed leg's flight cap: small enough that the X3 workload wraps
/// every ring several times over, so the bounded-memory assertion
/// below actually bites (4 KiB = the 64-slot ring minimum).
constexpr size_t FlightCapBytes = 4096;

/// Arms or disarms the whole monitor stack. The armed configuration is
/// deliberately threadless (sampler interval 0, watchdog poll 0, both
/// driven manually once per rep): the measured cost is the always-on
/// record-path work — ring writes, journal bookkeeping, beat stores —
/// not background-thread scheduling noise.
void armMonitors(bool Arm) {
  if (Arm) {
    FlightRecorder::start(FlightCapBytes);
    if (!EventLog::enabled())
      EventLog::start("");
    Sampler::start(/*IntervalMs=*/0);
    Watchdog::start(Watchdog::DefaultStallFactor, Watchdog::DefaultQuietMs,
                    /*PollMs=*/0);
  } else {
    Watchdog::stop();
    Sampler::stop();
    EventLog::stop();
    FlightRecorder::stop();
  }
}

/// One timed graph build; arming happens before the timer.
Leg timeOneBuild(const Program &Prog, const SymbolRangeMap &Symbols,
                 unsigned Threads, bool Arm) {
  armMonitors(Arm);
  Heartbeat HB("x9.graph-build");
  Leg L;
  auto Start = std::chrono::steady_clock::now();
  DependenceGraph G =
      DependenceGraph::build(Prog, Symbols, nullptr, false, Threads);
  HB.beat();
  if (Arm) {
    Sampler::sampleOnceForTest();
    Watchdog::pollOnceForTest();
  }
  L.Secs = seconds(std::chrono::steady_clock::now() - Start);
  L.EdgeReport = renderEdges(G.dependences());
  return L;
}

/// Interleaved paired reps; returns the median armed/disarmed overhead
/// (see bench_x5 for why median-of-paired-ratios and not best-of-N).
double timeBuilds(unsigned Reps, const Program &Prog,
                  const SymbolRangeMap &Symbols, unsigned Threads,
                  Leg &Disarmed, Leg &Armed) {
  std::vector<double> Ratios;
  Ratios.reserve(Reps);
  for (unsigned R = 0; R != Reps; ++R) {
    Leg D = timeOneBuild(Prog, Symbols, Threads, /*Arm=*/false);
    Leg A = timeOneBuild(Prog, Symbols, Threads, /*Arm=*/true);
    if (D.Secs > 0)
      Ratios.push_back(A.Secs / D.Secs);
    if (Disarmed.EdgeReport.empty() || D.Secs < Disarmed.Secs)
      Disarmed = std::move(D);
    if (Armed.EdgeReport.empty() || A.Secs < Armed.Secs)
      Armed = std::move(A);
  }
  if (Ratios.empty())
    return 0.0;
  std::sort(Ratios.begin(), Ratios.end());
  size_t N = Ratios.size();
  double Median =
      N % 2 ? Ratios[N / 2] : (Ratios[N / 2 - 1] + Ratios[N / 2]) / 2.0;
  return Median - 1.0;
}

std::atomic<uint64_t> FakeMs{0};
uint64_t fakeClock() { return FakeMs.load(std::memory_order_relaxed); }

std::string slurp(const std::string &Path) {
  std::ifstream File(Path);
  std::ostringstream Buffer;
  Buffer << File.rdbuf();
  return Buffer.str();
}

} // namespace

int main(int argc, char **argv) {
  RunReport::noteTool("bench_x9_monitor");
  bool Smoke = false;
  unsigned Threads = 4;
  unsigned NumNests = 96;
  for (int I = 1; I != argc; ++I) {
    if (!std::strcmp(argv[I], "--smoke"))
      Smoke = true;
    else if (!std::strcmp(argv[I], "--threads") && I + 1 != argc)
      Threads = std::strtoul(argv[++I], nullptr, 10);
    else if (!std::strcmp(argv[I], "--nests") && I + 1 != argc)
      NumNests = std::strtoul(argv[++I], nullptr, 10);
    else {
      std::cerr << "usage: " << argv[0]
                << " [--smoke] [--threads N] [--nests N]\n";
      return 2;
    }
  }
  if (Smoke)
    NumNests = 4;
  unsigned Reps = Smoke ? 2 : 25;
  unsigned Failures = 0;
  auto Fail = [&](const std::string &Why) {
    ++Failures;
    std::cerr << "FAIL: " << Why << "\n";
  };

  // The X3 workload: same generator, same seed.
  std::mt19937_64 Rng(0xBADC0FFEE);
  std::string Source = generateRandomProgramSource(Rng, NumNests,
                                                   /*MaxDepth=*/3,
                                                   /*StmtsPerNest=*/3);
  AnalyzerOptions Opt;
  Opt.NumThreads = 1;
  AnalysisResult Base = analyzeSource(Source, "x9-workload", Opt);
  if (!Base.Parsed) {
    std::cerr << "workload failed to parse\n";
    return 1;
  }
  const Program &Prog = *Base.Prog;
  SymbolRangeMap Symbols;
  Symbols.try_emplace("n", Interval(1, std::nullopt));

  Leg Disarmed, Armed;
  double Overhead = timeBuilds(Reps, Prog, Symbols, Threads, Disarmed, Armed);

  // Monitoring must never change the analysis.
  if (Armed.EdgeReport != Disarmed.EdgeReport)
    Fail("armed run produced different dependence edges than the "
         "disarmed run");

  // The bounded-memory contract: however many spans flowed through,
  // every ring holds exactly SlotsPerThread slots and in-use bytes
  // equal rings * slots * event size, at or under the configured cap
  // per recording thread.
  FlightRecorder::Stats Flight = FlightRecorder::stats();
  if (FlightRecorder::compiledIn()) {
    if (Flight.Recorded == 0)
      Fail("armed runs recorded no flight spans");
    if (Flight.BytesInUse != uint64_t(Flight.Threads) *
                                 Flight.SlotsPerThread * sizeof(TraceEvent))
      Fail("flight bytes-in-use does not equal rings * slots * slot size");
    if (Flight.BytesInUse > uint64_t(Flight.Threads) * FlightCapBytes)
      Fail("flight memory " + std::to_string(Flight.BytesInUse) +
           " exceeds the configured cap of " +
           std::to_string(FlightCapBytes) + " bytes/thread");
  }
  uint64_t SamplerSamples = Sampler::summary().Samples;
  if (FlightRecorder::compiledIn() && SamplerSamples == 0)
    Fail("armed runs took no telemetry samples");

  // Leg 3 (untimed): the injected-stall drill. A heartbeat with a
  // 10ms quiet deadline goes silent for 300 fake milliseconds; the
  // sweep must produce exactly one verdict, a journaled
  // "watchdog-stall" event, and a postmortem dump at the configured
  // path tagged with the stall reason.
  uint64_t StallVerdicts = 0;
  bool StallJournaled = false, StallDumpOk = false;
  std::string StallDumpPath = benchOutputPath("BENCH_x9_stall_flight.json");
  if (FlightRecorder::compiledIn()) {
    std::remove(StallDumpPath.c_str());
    Watchdog::stop();
    Watchdog::setClockForTest(fakeClock);
    FlightRecorder::start(FlightCapBytes, StallDumpPath);
    EventLog::start("");
    Watchdog::start(/*StallFactor=*/2.0, /*QuietMs=*/1000, /*PollMs=*/0);
    {
      Heartbeat Probe("x9.stall-probe", /*QuietMs=*/10);
      { Span S("bench_x9_monitor::stall_drill", "monitor"); }
      FakeMs.store(300);
      StallVerdicts = Watchdog::pollOnceForTest();
    }
    for (const std::string &Line : EventLog::recentLines())
      StallJournaled |= Line.find("watchdog-stall") != std::string::npos &&
                        Line.find("x9.stall-probe") != std::string::npos;
    if (std::optional<json::Value> Dump = json::parse(slurp(StallDumpPath)))
      if (const json::Value *Header = Dump->find("flightRecorder"))
        StallDumpOk = Header->stringAt("reason") == "watchdog-stall";
    Watchdog::stop();
    Watchdog::setClockForTest(nullptr);
    EventLog::stop();
    FlightRecorder::stop();

    if (StallVerdicts != 1)
      Fail("injected stall produced " + std::to_string(StallVerdicts) +
           " verdicts (want exactly 1)");
    if (!StallJournaled)
      Fail("stall verdict did not land in the event journal");
    if (!StallDumpOk)
      Fail("stall did not produce a parseable postmortem flight dump");
  }

  // Only the full run has enough work to time the difference above
  // scheduler noise; the paper-facing contract is <= 5%.
  if (!Smoke && FlightRecorder::compiledIn() && Overhead > 0.05)
    Fail("armed overhead " + std::to_string(Overhead * 100) +
         "% exceeds the 5% contract");

  std::printf("x9 monitor: disarmed %.1f ms, armed %.1f ms (%+.2f%%), "
              "%llu spans in %u rings (%llu overwritten), %llu samples, "
              "stall drill %s — %s\n",
              Disarmed.Secs * 1e3, Armed.Secs * 1e3, Overhead * 100,
              static_cast<unsigned long long>(Flight.Recorded),
              Flight.Threads,
              static_cast<unsigned long long>(Flight.Overwritten),
              static_cast<unsigned long long>(SamplerSamples),
              StallDumpOk && StallJournaled ? "ok" : "FAILED",
              Failures ? "FAILURES" : "all checks passed");

  std::ofstream Json(benchOutputPath("BENCH_monitor.json"));
  Json << "{\n"
       << benchMetaJson("x9_monitor") << ",\n"
       << "  \"workload\": {\"nests\": " << NumNests
       << ", \"smoke\": " << (Smoke ? "true" : "false") << "},\n"
       << "  \"disarmed_ms\": " << Disarmed.Secs * 1e3 << ",\n"
       << "  \"armed_ms\": " << Armed.Secs * 1e3 << ",\n"
       << "  \"overhead_ratio\": " << Overhead << ",\n"
       << "  \"flight\": {\"recorded\": " << Flight.Recorded
       << ", \"overwritten\": " << Flight.Overwritten
       << ", \"threads\": " << Flight.Threads
       << ", \"bytes_in_use\": " << Flight.BytesInUse
       << ", \"cap_bytes_per_thread\": " << FlightCapBytes << "},\n"
       << "  \"sampler_samples\": " << SamplerSamples << ",\n"
       << "  \"stall\": {\"verdicts\": " << StallVerdicts
       << ", \"journaled\": " << (StallJournaled ? "true" : "false")
       << ", \"dump_ok\": " << (StallDumpOk ? "true" : "false") << "},\n"
       << "  \"edges_identical\": "
       << (Armed.EdgeReport == Disarmed.EdgeReport ? "true" : "false")
       << ",\n"
       << "  \"tracing_compiled_in\": "
       << (FlightRecorder::compiledIn() ? "true" : "false") << ",\n"
       << "  \"failures\": " << Failures << "\n"
       << "}\n";

  // The pdt-report-v1 companion for the perf ledger: leg timings ride
  // along as workload *_ns values (Time-class keys) on top of the
  // workload's deterministic stats.
  RunReport::reset();
  RunReport::noteTool("bench_x9_monitor");
  RunReport::noteWorkload("mode", "monitor");
  RunReport::noteWorkload("config", Smoke ? "smoke" : "full");
  RunReport::noteWorkload("nests", static_cast<uint64_t>(NumNests));
  RunReport::noteWorkload(
      "disarmed_wall_ns", static_cast<uint64_t>(Disarmed.Secs * 1e9));
  RunReport::noteWorkload("armed_wall_ns",
                          static_cast<uint64_t>(Armed.Secs * 1e9));
  RunReport::noteStats(Base.Stats);
  RunReport::noteWallNs(static_cast<int64_t>((Disarmed.Secs + Armed.Secs) *
                                             1e9));
  if (!RunReport::writeTo(benchOutputPath("BENCH_monitor_report.json")))
    Fail("cannot write BENCH_monitor_report.json");

  return Failures ? 1 : 0;
}
