//===- analysis/InductionSubstitution.cpp - Auxiliary IVs -----------------===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/InductionSubstitution.h"

#include "analysis/ASTRewriter.h"
#include "support/Casting.h"
#include "support/ErrorHandling.h"

#include <set>

using namespace pdt;

namespace {

/// Collects every variable name assigned (as a scalar) anywhere in S.
void collectScalarDefs(const Stmt *S, std::set<std::string> &Defs) {
  switch (S->getKind()) {
  case Stmt::Kind::Assign: {
    const auto *A = cast<AssignStmt>(S);
    if (!A->isArrayAssign())
      Defs.insert(A->getScalarTarget());
    return;
  }
  case Stmt::Kind::DoLoop:
    for (const Stmt *Child : cast<DoLoop>(S)->getBody())
      collectScalarDefs(Child, Defs);
    return;
  }
  pdt_unreachable("covered switch");
}

/// True when \p E mentions variable \p Name.
bool mentionsVar(const Expr *E, const std::string &Name) {
  switch (E->getKind()) {
  case Expr::Kind::IntLiteral:
    return false;
  case Expr::Kind::VarRef:
    return cast<VarRef>(E)->getName() == Name;
  case Expr::Kind::Unary:
    return mentionsVar(cast<UnaryExpr>(E)->getOperand(), Name);
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    return mentionsVar(B->getLHS(), Name) || mentionsVar(B->getRHS(), Name);
  }
  case Expr::Kind::ArrayElement:
    for (const Expr *Sub : cast<ArrayElement>(E)->getSubscripts())
      if (mentionsVar(Sub, Name))
        return true;
    return false;
  }
  pdt_unreachable("covered switch");
}

/// Matches `K = K + Delta` / `K = Delta + K` / `K = K - Delta` and
/// returns Delta (negated for the minus form) when Delta does not
/// mention K; null otherwise.
const Expr *matchSelfIncrement(ASTContext &Ctx, const AssignStmt *A,
                               const std::string &K) {
  const auto *B = dyn_cast<BinaryExpr>(A->getValue());
  if (!B)
    return nullptr;
  auto IsK = [&K](const Expr *E) {
    const auto *V = dyn_cast<VarRef>(E);
    return V && V->getName() == K;
  };
  if (B->getOpcode() == BinaryExpr::Opcode::Add) {
    if (IsK(B->getLHS()) && !mentionsVar(B->getRHS(), K))
      return B->getRHS();
    if (IsK(B->getRHS()) && !mentionsVar(B->getLHS(), K))
      return B->getLHS();
    return nullptr;
  }
  if (B->getOpcode() == BinaryExpr::Opcode::Sub) {
    if (IsK(B->getLHS()) && !mentionsVar(B->getRHS(), K))
      return Ctx.getNeg(B->getRHS());
    return nullptr;
  }
  return nullptr;
}

class Substituter {
public:
  explicit Substituter(ASTContext &Ctx) : Ctx(Ctx) {}

  /// Rewrites a statement list, performing the init/update pattern
  /// match across adjacent statements.
  std::vector<const Stmt *> visitList(const std::vector<const Stmt *> &Stmts,
                                      const VarSubstitution &Subst) {
    std::vector<const Stmt *> Out;
    for (size_t I = 0; I != Stmts.size(); ++I) {
      const Stmt *S = Stmts[I];
      // Try: scalar init immediately followed by a loop that updates
      // the same scalar with a loop-invariant increment.
      if (I + 1 < Stmts.size()) {
        if (const auto *Init = dyn_cast<AssignStmt>(S)) {
          if (!Init->isArrayAssign()) {
            if (const auto *Loop = dyn_cast<DoLoop>(Stmts[I + 1])) {
              if (const Stmt *Rewritten =
                      tryRewriteLoop(Init, Loop, Subst, Out)) {
                Out.push_back(Rewritten);
                if (const Stmt *Final = takePending())
                  Out.push_back(Final);
                ++I; // Consumed the loop too.
                continue;
              }
            }
          }
        }
      }
      Out.push_back(visit(S, Subst));
    }
    return Out;
  }

private:
  ASTContext &Ctx;

  const Stmt *visit(const Stmt *S, const VarSubstitution &Subst) {
    switch (S->getKind()) {
    case Stmt::Kind::Assign:
      return cloneStmt(Ctx, S, Subst);
    case Stmt::Kind::DoLoop: {
      const auto *L = cast<DoLoop>(S);
      VarSubstitution BodySubst = Subst;
      BodySubst.erase(L->getIndexName());
      std::vector<const Stmt *> Body = visitList(L->getBody(), BodySubst);
      return Ctx.createDoLoop(L->getIndexName(),
                              cloneExpr(Ctx, L->getLower(), Subst),
                              cloneExpr(Ctx, L->getUpper(), Subst),
                              cloneExpr(Ctx, L->getStep(), Subst),
                              std::move(Body));
    }
    }
    pdt_unreachable("covered switch");
  }

  /// Attempts the auxiliary-IV rewrite for `Init; Loop`. On success
  /// pushes the (cloned) init statement into \p Out and returns the
  /// rewritten loop followed by emitting the final-value assignment;
  /// returns null when the pattern does not apply.
  const Stmt *tryRewriteLoop(const AssignStmt *Init, const DoLoop *Loop,
                             const VarSubstitution &Subst,
                             std::vector<const Stmt *> &Out) {
    const std::string &K = Init->getScalarTarget();
    // Unit-step loops only (run after normalization).
    const auto *StepLit = dyn_cast<IntLiteral>(Loop->getStep());
    if (!StepLit || StepLit->getValue() != 1)
      return nullptr;
    if (K == Loop->getIndexName())
      return nullptr;
    // The init value must not depend on K itself and must not be
    // recomputed from the loop index.
    if (mentionsVar(Init->getValue(), K) ||
        mentionsVar(Init->getValue(), Loop->getIndexName()))
      return nullptr;

    // Find exactly one top-level self-increment of K in the body; K
    // must not be assigned anywhere else (including nested loops).
    const Expr *Delta = nullptr;
    size_t UpdatePos = static_cast<size_t>(-1);
    const std::vector<const Stmt *> &Body = Loop->getBody();
    for (size_t I = 0; I != Body.size(); ++I) {
      std::set<std::string> Defs;
      collectScalarDefs(Body[I], Defs);
      if (!Defs.count(K))
        continue;
      const auto *A = dyn_cast<AssignStmt>(Body[I]);
      if (!A || A->isArrayAssign() || A->getScalarTarget() != K || Delta)
        return nullptr;
      Delta = matchSelfIncrement(Ctx, A, K);
      if (!Delta)
        return nullptr;
      UpdatePos = I;
    }
    if (!Delta)
      return nullptr;
    // The increment must be loop-invariant with respect to this loop.
    if (mentionsVar(Delta, Loop->getIndexName()) || mentionsVar(Delta, K))
      return nullptr;

    // Emit the init statement unchanged, then the rewritten loop, then
    // the final value. Closed forms (I = loop index, L = lower bound):
    //   before the update: K = init + (I - L) * delta
    //   after the update:  K = init + (I - L + 1) * delta
    const Stmt *ClonedInit = cloneStmt(Ctx, Init, Subst);
    Out.push_back(ClonedInit);

    const Expr *InitVal = cloneExpr(Ctx, Init->getValue(), Subst);
    const Expr *DeltaClone = cloneExpr(Ctx, Delta, Subst);
    const Expr *IndexVar = Ctx.getVar(Loop->getIndexName());
    const Expr *LowerClone = cloneExpr(Ctx, Loop->getLower(), Subst);
    const Expr *TripsBefore = Ctx.getSub(IndexVar, LowerClone);
    const Expr *TripsAfter = Ctx.getAdd(TripsBefore, Ctx.getInt(1));
    const Expr *KBefore =
        Ctx.getAdd(InitVal, Ctx.getMul(TripsBefore, DeltaClone));
    const Expr *KAfter =
        Ctx.getAdd(InitVal, Ctx.getMul(TripsAfter, DeltaClone));

    VarSubstitution BodySubst = Subst;
    BodySubst.erase(Loop->getIndexName());

    std::vector<const Stmt *> NewBody;
    for (size_t I = 0; I != Body.size(); ++I) {
      if (I == UpdatePos)
        continue; // The update disappears.
      VarSubstitution StmtSubst = BodySubst;
      StmtSubst[K] = I < UpdatePos ? KBefore : KAfter;
      NewBody.push_back(visit(Body[I], StmtSubst));
    }
    const Stmt *NewLoop = Ctx.createDoLoop(
        Loop->getIndexName(), cloneExpr(Ctx, Loop->getLower(), Subst),
        cloneExpr(Ctx, Loop->getUpper(), Subst),
        cloneExpr(Ctx, Loop->getStep(), Subst), std::move(NewBody));

    // Final live-out value: K = init + (U - L + 1) * delta. (If the
    // loop runs zero times this over-writes K, which is acceptable for
    // dependence analysis; we document the pass as analysis-oriented.)
    const Expr *Trips = Ctx.getAdd(
        Ctx.getSub(cloneExpr(Ctx, Loop->getUpper(), Subst),
                   cloneExpr(Ctx, Loop->getLower(), Subst)),
        Ctx.getInt(1));
    Pending = Ctx.createScalarAssign(
        K, Ctx.getAdd(InitVal, Ctx.getMul(Trips, DeltaClone)));
    PendingValid = true;
    return NewLoop;
  }

public:
  /// After tryRewriteLoop succeeds, the caller must append the pending
  /// final-value assignment.
  const Stmt *takePending() {
    if (!PendingValid)
      return nullptr;
    PendingValid = false;
    return Pending;
  }

private:
  const Stmt *Pending = nullptr;
  bool PendingValid = false;
};

} // namespace

Program pdt::substituteInductionVariables(const Program &P) {
  Program Result;
  Result.Name = P.Name;
  Substituter S(*Result.Context);
  Result.TopLevel = S.visitList(P.TopLevel, VarSubstitution());
  return Result;
}
