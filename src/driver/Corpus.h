//===- driver/Corpus.h - Built-in kernel corpus -----------------*- C++ -*-===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The kernel corpus standing in for the paper's Fortran suites
/// (RiCEPS, Perfect, SPEC, eispack, linpack; see DESIGN.md's
/// substitution notes). Each kernel is a loop nest written in the
/// input language, faithful to the memory access pattern of the code
/// it models: linpack's vector/column operations, eispack's coupled
/// (i,j)/(j,i) subscripts, Livermore loops, SPEC-style stencils, and
/// application loops. A separate "paper" suite carries the worked
/// examples from the paper text for golden tests and the figure
/// benches.
///
//===----------------------------------------------------------------------===//

#ifndef PDT_DRIVER_CORPUS_H
#define PDT_DRIVER_CORPUS_H

#include "driver/Analyzer.h"

#include <string>
#include <vector>

namespace pdt {

/// One corpus entry.
struct CorpusKernel {
  std::string Name;
  std::string Suite;
  std::string Source;
};

/// The whole corpus, suite-ordered.
const std::vector<CorpusKernel> &corpus();

/// Distinct suite names in corpus order.
std::vector<std::string> suiteNames();

/// Kernels of one suite.
std::vector<const CorpusKernel *> kernelsInSuite(const std::string &Suite);

/// Lookup by kernel name; null when absent.
const CorpusKernel *findKernel(const std::string &Name);

/// One kernel's analysis within a corpus sweep.
struct CorpusSweepEntry {
  const CorpusKernel *Kernel = nullptr;
  AnalysisResult Result;
};

/// Analyzes the whole corpus as a parse -> analyze job pipeline over
/// a shared worker pool (support/JobGraph.h): each kernel's parse and
/// its analysis are separate dependency-ordered jobs, so one kernel's
/// analysis overlaps another kernel's parse. \p NumThreads follows
/// the AnalyzerOptions::NumThreads convention (0 = auto);
/// \p Options.NumThreads itself is ignored — inside a sweep each
/// per-kernel graph build runs serially, the parallelism is across
/// kernels. Results are in corpus order and identical at any worker
/// count.
std::vector<CorpusSweepEntry> sweepCorpus(const AnalyzerOptions &Options = {},
                                          unsigned NumThreads = 0);

} // namespace pdt

#endif // PDT_DRIVER_CORPUS_H
