//===- transforms/LoopFusion.cpp - Dependence-legal loop fusion -----------===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//

#include "transforms/LoopFusion.h"

#include "analysis/ASTRewriter.h"
#include "core/DependenceGraph.h"
#include "ir/PrettyPrinter.h"
#include "support/Casting.h"

#include <map>

using namespace pdt;

namespace {

/// Structural equality of bound expressions (after cloning, pointer
/// identity is useless; rendered text is a faithful structural key).
bool sameExpr(const Expr *A, const Expr *B) {
  return exprToString(A) == exprToString(B);
}

bool conformable(const DoLoop *A, const DoLoop *B) {
  return A->getIndexName() == B->getIndexName() &&
         sameExpr(A->getLower(), B->getLower()) &&
         sameExpr(A->getUpper(), B->getUpper()) &&
         sameExpr(A->getStep(), B->getStep());
}

class Fuser {
public:
  Fuser(ASTContext &Ctx, const SymbolRangeMap &Symbols, FusionStats *Stats)
      : Ctx(Ctx), Symbols(Symbols), Stats(Stats) {}

  std::vector<const Stmt *> visitList(const std::vector<const Stmt *> &In) {
    // First rebuild each statement (fusing inside loop bodies).
    std::vector<const Stmt *> Out;
    for (const Stmt *S : In)
      Out.push_back(visit(S));

    // Then greedily fuse adjacent conformable loop siblings.
    std::vector<const Stmt *> Fused;
    for (const Stmt *S : Out) {
      if (!Fused.empty()) {
        const auto *Prev = dyn_cast<DoLoop>(Fused.back());
        const auto *Cur = dyn_cast<DoLoop>(S);
        if (Prev && Cur && conformable(Prev, Cur)) {
          if (Stats)
            ++Stats->CandidatesConsidered;
          if (const DoLoop *Merged = tryFuse(Prev, Cur)) {
            Fused.back() = Merged;
            if (Stats)
              ++Stats->Fused;
            continue;
          }
          if (Stats)
            ++Stats->BlockedByDependence;
        }
      }
      Fused.push_back(S);
    }
    return Fused;
  }

private:
  ASTContext &Ctx;
  const SymbolRangeMap &Symbols;
  FusionStats *Stats;

  const Stmt *visit(const Stmt *S) {
    if (isa<AssignStmt>(S))
      return cloneStmt(Ctx, S, {});
    const auto *L = cast<DoLoop>(S);
    std::vector<const Stmt *> Body = visitList(L->getBody());
    return Ctx.createDoLoop(L->getIndexName(),
                            cloneExpr(Ctx, L->getLower(), {}),
                            cloneExpr(Ctx, L->getUpper(), {}),
                            cloneExpr(Ctx, L->getStep(), {}),
                            std::move(Body));
  }

  /// Builds the fused candidate, analyzes it in isolation, and
  /// returns the merged loop when no fusion-preventing dependence
  /// (source in the second piece, sink in the first) exists.
  const DoLoop *tryFuse(const DoLoop *First, const DoLoop *Second) {
    // Candidate in its own program so statement identity is local.
    Program Candidate;
    ASTContext &CCtx = *Candidate.Context;
    std::vector<const Stmt *> Body;
    std::map<const Stmt *, bool> FromSecond; // Candidate stmt -> origin.
    auto Add = [&](const std::vector<const Stmt *> &Stmts, bool Second) {
      for (const Stmt *S : Stmts) {
        const Stmt *Clone = cloneStmt(CCtx, S, {});
        markOrigin(Clone, Second, FromSecond);
        Body.push_back(Clone);
      }
    };
    Add(First->getBody(), false);
    Add(Second->getBody(), true);
    const DoLoop *CandidateLoop = CCtx.createDoLoop(
        First->getIndexName(), cloneExpr(CCtx, First->getLower(), {}),
        cloneExpr(CCtx, First->getUpper(), {}),
        cloneExpr(CCtx, First->getStep(), {}), std::move(Body));
    Candidate.TopLevel.push_back(CandidateLoop);

    DependenceGraph G = DependenceGraph::build(Candidate, Symbols);
    for (const Dependence &D : G.dependences()) {
      const Stmt *Src = G.accesses()[D.Source].Statement;
      const Stmt *Snk = G.accesses()[D.Sink].Statement;
      auto SrcIt = FromSecond.find(Src);
      auto SnkIt = FromSecond.find(Snk);
      if (SrcIt == FromSecond.end() || SnkIt == FromSecond.end())
        continue;
      if (SrcIt->second && !SnkIt->second)
        return nullptr; // Fusion-preventing back edge.
    }

    // Legal: build the merged loop in the *result* context.
    std::vector<const Stmt *> Merged;
    for (const Stmt *S : First->getBody())
      Merged.push_back(cloneStmt(Ctx, S, {}));
    for (const Stmt *S : Second->getBody())
      Merged.push_back(cloneStmt(Ctx, S, {}));
    return Ctx.createDoLoop(First->getIndexName(),
                            cloneExpr(Ctx, First->getLower(), {}),
                            cloneExpr(Ctx, First->getUpper(), {}),
                            cloneExpr(Ctx, First->getStep(), {}),
                            std::move(Merged));
  }

  /// Records the origin of \p S and every statement below it.
  static void markOrigin(const Stmt *S, bool Second,
                         std::map<const Stmt *, bool> &FromSecond) {
    FromSecond[S] = Second;
    if (const auto *L = dyn_cast<DoLoop>(S))
      for (const Stmt *Child : L->getBody())
        markOrigin(Child, Second, FromSecond);
  }
};

} // namespace

Program pdt::fuseLoops(const Program &P, const SymbolRangeMap &Symbols,
                       FusionStats *Stats) {
  Program Result;
  Result.Name = P.Name;
  Fuser F(*Result.Context, Symbols, Stats);
  Result.TopLevel = F.visitList(P.TopLevel);
  return Result;
}
