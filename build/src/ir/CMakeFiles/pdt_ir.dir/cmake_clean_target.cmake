file(REMOVE_RECURSE
  "libpdt_ir.a"
)
