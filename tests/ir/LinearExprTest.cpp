//===- tests/ir/LinearExprTest.cpp -----------------------------------------===//
//
// Unit tests for the canonical affine expression form.
//
//===----------------------------------------------------------------------===//

#include "ir/LinearExpr.h"

#include "ir/AST.h"

#include <gtest/gtest.h>

using namespace pdt;

TEST(LinearExpr, Construction) {
  LinearExpr Zero;
  EXPECT_TRUE(Zero.isZero());
  EXPECT_TRUE(Zero.isPureConstant());

  LinearExpr C(5);
  EXPECT_EQ(C.getConstant(), 5);
  EXPECT_TRUE(C.isPureConstant());

  LinearExpr I = LinearExpr::index("i", 2);
  EXPECT_EQ(I.indexCoeff("i"), 2);
  EXPECT_EQ(I.indexCoeff("j"), 0);
  EXPECT_EQ(I.numIndices(), 1u);
  EXPECT_FALSE(I.isLoopInvariant());

  LinearExpr N = LinearExpr::symbol("n");
  EXPECT_EQ(N.symbolCoeff("n"), 1);
  EXPECT_TRUE(N.isLoopInvariant());
  EXPECT_FALSE(N.isPureConstant());
}

TEST(LinearExpr, ZeroCoefficientsVanish) {
  LinearExpr E = LinearExpr::index("i", 3) + LinearExpr::index("i", -3);
  EXPECT_TRUE(E.isZero());
  EXPECT_EQ(E.numIndices(), 0u);
}

TEST(LinearExpr, Arithmetic) {
  LinearExpr E = LinearExpr::index("i", 2) + LinearExpr::symbol("n") +
                 LinearExpr(3);
  LinearExpr F = LinearExpr::index("i") - LinearExpr(1);
  LinearExpr Sum = E + F;
  EXPECT_EQ(Sum.indexCoeff("i"), 3);
  EXPECT_EQ(Sum.symbolCoeff("n"), 1);
  EXPECT_EQ(Sum.getConstant(), 2);

  LinearExpr Diff = E - F;
  EXPECT_EQ(Diff.indexCoeff("i"), 1);
  EXPECT_EQ(Diff.getConstant(), 4);

  LinearExpr Scaled = E.scale(-2);
  EXPECT_EQ(Scaled.indexCoeff("i"), -4);
  EXPECT_EQ(Scaled.symbolCoeff("n"), -2);
  EXPECT_EQ(Scaled.getConstant(), -6);
}

TEST(LinearExpr, DivideExactly) {
  LinearExpr E = LinearExpr::index("i", 4) + LinearExpr(6);
  std::optional<LinearExpr> Half = E.divideExactly(2);
  ASSERT_TRUE(Half.has_value());
  EXPECT_EQ(Half->indexCoeff("i"), 2);
  EXPECT_EQ(Half->getConstant(), 3);
  EXPECT_FALSE(E.divideExactly(3).has_value());
}

TEST(LinearExpr, SubstituteIndex) {
  // i + 2j with j := i + 1 becomes 3i + 2.
  LinearExpr E = LinearExpr::index("i") + LinearExpr::index("j", 2);
  LinearExpr Repl = LinearExpr::index("i") + LinearExpr(1);
  LinearExpr S = E.substituteIndex("j", Repl);
  EXPECT_EQ(S.indexCoeff("i"), 3);
  EXPECT_EQ(S.indexCoeff("j"), 0);
  EXPECT_EQ(S.getConstant(), 2);

  // Substituting an absent index is the identity.
  EXPECT_EQ(E.substituteIndex("k", Repl), E);
}

TEST(LinearExpr, SingleIndexAndNames) {
  LinearExpr E = LinearExpr::index("j", -1) + LinearExpr(7);
  EXPECT_EQ(E.singleIndex(), "j");
  LinearExpr F = E + LinearExpr::index("i");
  std::set<std::string> Names = F.indexNames();
  EXPECT_EQ(Names, (std::set<std::string>{"i", "j"}));
  EXPECT_TRUE(F.usesIndex("i"));
  EXPECT_FALSE(F.usesIndex("k"));
}

TEST(LinearExpr, Str) {
  LinearExpr E = LinearExpr::index("i", 2) - LinearExpr::index("j") +
                 LinearExpr::symbol("n") + LinearExpr(3);
  EXPECT_EQ(E.str(), "2*i - j + n + 3");
  EXPECT_EQ(LinearExpr().str(), "0");
  EXPECT_EQ(LinearExpr(-4).str(), "-4");
  EXPECT_EQ(LinearExpr::index("i", -1).str(), "-i");
}

//===----------------------------------------------------------------------===//
// AST conversion
//===----------------------------------------------------------------------===//

class BuildLinearTest : public ::testing::Test {
protected:
  ASTContext Ctx;
  std::set<std::string> Indices{"i", "j"};
};

TEST_F(BuildLinearTest, SimpleAffine) {
  // 2*i + n - 3
  const Expr *E = Ctx.getSub(
      Ctx.getAdd(Ctx.getMul(Ctx.getInt(2), Ctx.getVar("i")), Ctx.getVar("n")),
      Ctx.getInt(3));
  std::optional<LinearExpr> L = buildLinearExpr(E, Indices);
  ASSERT_TRUE(L.has_value());
  EXPECT_EQ(L->indexCoeff("i"), 2);
  EXPECT_EQ(L->symbolCoeff("n"), 1);
  EXPECT_EQ(L->getConstant(), -3);
}

TEST_F(BuildLinearTest, Negation) {
  const Expr *E = Ctx.getNeg(Ctx.getAdd(Ctx.getVar("i"), Ctx.getInt(1)));
  std::optional<LinearExpr> L = buildLinearExpr(E, Indices);
  ASSERT_TRUE(L.has_value());
  EXPECT_EQ(L->indexCoeff("i"), -1);
  EXPECT_EQ(L->getConstant(), -1);
}

TEST_F(BuildLinearTest, IndexTimesIndexIsNonlinear) {
  const Expr *E = Ctx.getMul(Ctx.getVar("i"), Ctx.getVar("j"));
  EXPECT_FALSE(buildLinearExpr(E, Indices).has_value());
}

TEST_F(BuildLinearTest, SymbolTimesIndexIsNonlinear) {
  // n*i is not affine with integer coefficients.
  const Expr *E = Ctx.getMul(Ctx.getVar("n"), Ctx.getVar("i"));
  EXPECT_FALSE(buildLinearExpr(E, Indices).has_value());
}

TEST_F(BuildLinearTest, ExactDivision) {
  // (4*i + 2) / 2 = 2*i + 1.
  const Expr *E = Ctx.getBinary(
      BinaryExpr::Opcode::Div,
      Ctx.getAdd(Ctx.getMul(Ctx.getInt(4), Ctx.getVar("i")), Ctx.getInt(2)),
      Ctx.getInt(2));
  std::optional<LinearExpr> L = buildLinearExpr(E, Indices);
  ASSERT_TRUE(L.has_value());
  EXPECT_EQ(L->indexCoeff("i"), 2);
  EXPECT_EQ(L->getConstant(), 1);
}

TEST_F(BuildLinearTest, InexactDivisionIsNonlinear) {
  const Expr *E = Ctx.getBinary(
      BinaryExpr::Opcode::Div,
      Ctx.getAdd(Ctx.getMul(Ctx.getInt(4), Ctx.getVar("i")), Ctx.getInt(1)),
      Ctx.getInt(2));
  EXPECT_FALSE(buildLinearExpr(E, Indices).has_value());
}

TEST_F(BuildLinearTest, IndexArrayIsNonlinear) {
  const Expr *E = Ctx.getArrayElement("idx", {Ctx.getVar("i")});
  EXPECT_FALSE(buildLinearExpr(E, Indices).has_value());
}

TEST_F(BuildLinearTest, ConstantFolding) {
  const Expr *E =
      Ctx.getMul(Ctx.getInt(3), Ctx.getSub(Ctx.getInt(5), Ctx.getInt(2)));
  std::optional<LinearExpr> L = buildLinearExpr(E, Indices);
  ASSERT_TRUE(L.has_value());
  EXPECT_EQ(L->getConstant(), 9);
  EXPECT_TRUE(L->isPureConstant());
}
