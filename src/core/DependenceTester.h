//===- core/DependenceTester.h - Partition-based testing --------*- C++ -*-===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's top-level dependence testing algorithm (section 3):
///
///  1. partition the subscripts of a reference pair into separable
///     subscripts and minimal coupled groups;
///  2. classify each separable subscript as ZIV / SIV / MIV;
///  3. apply the matching exact single-subscript test to each
///     separable subscript;
///  4. apply the Delta test to each coupled group;
///  5. any test proving independence ends the algorithm;
///  6. otherwise merge the per-partition direction vector sets (the
///     partitions' index sets are disjoint, so the merge is a
///     per-level composition).
///
/// The tester also classifies nonlinear subscripts (which contribute
/// no information but keep the result conservative), records the
/// paper's Table 1-3 statistics, and collects loop peeling / splitting
/// hints from the weak SIV tests.
///
//===----------------------------------------------------------------------===//

#ifndef PDT_CORE_DEPENDENCETESTER_H
#define PDT_CORE_DEPENDENCETESTER_H

#include "analysis/LoopNest.h"
#include "core/DeltaTest.h"
#include "core/DependenceTypes.h"
#include "core/Subscript.h"
#include "core/TestStats.h"
#include "ir/AccessCollector.h"
#include "support/Failure.h"
#include "support/Rational.h"

#include <optional>
#include <vector>

namespace pdt {

struct PairExplanation;

/// A transformation opportunity discovered while testing (sections
/// 4.2.2 and 4.2.3).
struct TransformHint {
  enum class Kind { PeelFirst, PeelLast, Split };
  Kind TheKind;
  /// Loop index the transformation applies to.
  std::string Index;
  /// For Split: the crossing iteration (possibly half-integral).
  std::optional<Rational> CrossingPoint;
  /// For Split with a symbolic bound: the iteration sum i + i'
  /// (crossing point = sum/2), e.g. n + 1.
  std::optional<LinearExpr> SymbolicCrossingSum;
};

/// Result of testing one ordered reference pair (source candidate
/// first).
struct DependenceTestResult {
  Verdict TheVerdict = Verdict::Maybe;
  /// The test that proved independence, when TheVerdict is
  /// Independent.
  TestKind DecidedBy = TestKind::Delta;
  /// True when the verdict and vectors are exact, not conservative.
  bool Exact = false;
  /// Surviving dependence vectors over the common loop nest. A vector
  /// whose leading non-'=' direction is '>' denotes the reversed
  /// dependence (sink to source); the dependence-graph layer
  /// normalizes these.
  std::vector<DependenceVector> Vectors;
  /// Some subscript pair was nonlinear (untestable).
  bool HasNonlinear = false;
  /// Loop transformation opportunities found by the weak SIV tests.
  std::vector<TransformHint> Hints;
  /// A failure (overflow, exhausted budget, internal invariant) was
  /// contained while testing: the result is the conservative
  /// all-directions dependence, never "independent".
  bool Degraded = false;
  /// The contained failure, when Degraded.
  std::optional<AnalysisFailure> Failure;

  bool isIndependent() const { return TheVerdict == Verdict::Independent; }
};

/// Tests a pair of already-affine subscript vectors against a loop
/// nest. This is the paper's algorithm proper, exposed for unit tests,
/// the oracle comparison, and the synthetic workload benches.
///
/// This is a fault-containment boundary: any AnalysisError raised by
/// the tests (coefficient overflow, exhausted budgets, injected
/// faults, internal invariants) is caught here and collapsed into the
/// conservative all-directions dependence flagged Degraded — a
/// failure can widen the answer but never produce "independent".
///
/// \p Explain, when non-null, receives one ExplainStep per partition
/// (see core/Explain.h): which test fired and the constraint values it
/// derived. The explain path is only exercised by the --explain driver
/// flag; passing nullptr (the default) keeps the hot path untouched.
DependenceTestResult
testDependence(const std::vector<SubscriptPair> &Subscripts,
               const LoopNestContext &Ctx, TestStats *Stats = nullptr,
               PairExplanation *Explain = nullptr);

/// The conservative result a contained failure degrades to: Maybe,
/// inexact, one all-'*' vector over \p Depth levels, carrying
/// \p Failure. Counted in \p Stats when provided.
DependenceTestResult degradedTestResult(unsigned Depth,
                                        AnalysisFailure Failure,
                                        TestStats *Stats = nullptr);

/// An access pair lowered to testable form: affine subscripts over the
/// common nest plus the analyzed nest context. Shared by the practical
/// tester and the baseline testers so comparisons see identical input.
struct PreparedPair {
  std::vector<SubscriptPair> Subscripts;
  LoopNestContext Ctx;
  /// Some dimension was nonlinear and is missing from Subscripts.
  bool HasNonlinear = false;
  /// True when the subscripts form at least one coupled group.
  bool HasCoupledGroup = false;
};

/// Lowers an access pair (see testAccessPair for the conversion
/// rules). Returns std::nullopt when the references have different
/// dimensionality.
std::optional<PreparedPair>
prepareAccessPair(const ArrayAccess &A, const ArrayAccess &B,
                  const SymbolRangeMap &Symbols,
                  const std::set<std::string> *VaryingScalars = nullptr);

/// Names of scalars that cannot be treated as loop-invariant symbols:
/// assigned inside some loop, or assigned more than once.
std::set<std::string> collectVaryingScalars(const Program &P);

/// Tests two program accesses to the same array: builds the common
/// nest context under \p Symbols, converts subscripts to affine form
/// (indices of non-common loops become free symbols ranging over their
/// loops), runs the algorithm, and updates the structural statistics.
/// \p A is the dependence source candidate. \p VaryingScalars names
/// scalars assigned somewhere in the program: a subscript mentioning
/// one is NOT loop-invariant and is treated as nonlinear
/// (conservative), since pretending it is a symbol could prove false
/// independence.
DependenceTestResult testAccessPair(
    const ArrayAccess &A, const ArrayAccess &B, const SymbolRangeMap &Symbols,
    TestStats *Stats = nullptr,
    const std::set<std::string> *VaryingScalars = nullptr);

/// The back half of testAccessPair for callers that already lowered
/// the pair (e.g. through an AccessLoweringCache): records the pair
/// statistics, runs the algorithm on \p Prepared, and applies the
/// conservative nonlinear adjustments. \p Prepared being nullopt means
/// the references had mismatched dimensionality and yields the fully
/// conservative result over the common nest of \p A and \p B.
DependenceTestResult testPreparedAccessPair(
    const ArrayAccess &A, const ArrayAccess &B,
    const std::optional<PreparedPair> &Prepared, TestStats *Stats = nullptr);

} // namespace pdt

#endif // PDT_CORE_DEPENDENCETESTER_H
