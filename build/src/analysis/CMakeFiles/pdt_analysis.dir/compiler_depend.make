# Empty compiler generated dependencies file for pdt_analysis.
# This may be replaced when dependencies are built.
