//===- core/Oracle.cpp - Brute-force dependence ground truth --------------===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Oracle.h"

#include "support/MathExtras.h"
#include "support/Trace.h"

#include <cassert>
#include <limits>
#include <map>

using namespace pdt;

namespace {

/// Evaluates an affine expression at a concrete iteration point;
/// fails on symbol terms and on int64 overflow (the fuzzer feeds
/// near-INT64_MAX coefficients through here).
std::optional<int64_t>
evalAt(const LinearExpr &E, const std::map<std::string, int64_t> &Values) {
  if (!E.symbolTerms().empty())
    return std::nullopt;
  int64_t V = E.getConstant();
  for (const auto &[Name, Coeff] : E.indexTerms()) {
    auto It = Values.find(Name);
    if (It == Values.end())
      return std::nullopt;
    std::optional<int64_t> Term = checkedMul(Coeff, It->second);
    if (!Term)
      return std::nullopt;
    std::optional<int64_t> Sum = checkedAdd(V, *Term);
    if (!Sum)
      return std::nullopt;
    V = *Sum;
  }
  return V;
}

/// Enumerates every iteration vector of the nest (respecting
/// outer-index-dependent bounds) and invokes Fn.
template <typename CallbackT>
bool forEachIteration(const LoopNestContext &Ctx, unsigned Level,
                      std::map<std::string, int64_t> &Values, CallbackT &&Fn) {
  if (Level == Ctx.depth())
    return Fn(Values);
  const LoopBounds &B = Ctx.loop(Level);
  if (!B.Affine || B.Step != 1)
    return false;
  std::optional<int64_t> Lo = evalAt(B.Lower, Values);
  std::optional<int64_t> Hi = evalAt(B.Upper, Values);
  if (!Lo || !Hi)
    return false;
  for (int64_t I = *Lo; I <= *Hi;) {
    Values[B.Index] = I;
    if (!forEachIteration(Ctx, Level + 1, Values,
                          std::forward<CallbackT>(Fn)))
      return false;
    std::optional<int64_t> Next = checkedAdd(I, 1);
    if (!Next)
      break; // I == INT64_MAX: the bound check cannot pass again.
    I = *Next;
  }
  Values.erase(B.Index);
  return true;
}

} // namespace

std::optional<OracleResult>
pdt::enumerateDependences(const std::vector<SubscriptPair> &Subscripts,
                          const LoopNestContext &Ctx, uint64_t MaxPairs) {
  Span OracleSpan("Oracle::enumerateDependences", "oracle",
                  testKindTag(TestKind::Oracle));
  for (const SubscriptPair &S : Subscripts)
    if (!S.Src.symbolTerms().empty() || !S.Dst.symbolTerms().empty())
      return std::nullopt;

  OracleResult Result;
  uint64_t Budget = MaxPairs;

  std::map<std::string, int64_t> SrcValues;
  bool OK = forEachIteration(Ctx, 0, SrcValues, [&](auto &Src) {
    // Evaluate the source subscripts once per source iteration.
    std::vector<int64_t> SrcVals;
    SrcVals.reserve(Subscripts.size());
    for (const SubscriptPair &S : Subscripts) {
      std::optional<int64_t> V = evalAt(S.Src, Src);
      if (!V)
        return false;
      SrcVals.push_back(*V);
    }
    std::map<std::string, int64_t> SnkValues;
    return forEachIteration(Ctx, 0, SnkValues, [&](auto &Snk) {
      if (Budget-- == 0)
        return false;
      for (unsigned K = 0; K != Subscripts.size(); ++K) {
        std::optional<int64_t> V = evalAt(Subscripts[K].Dst, Snk);
        if (!V)
          return false;
        if (*V != SrcVals[K])
          return true; // Not a dependence; keep enumerating.
      }
      ++Result.PairCount;
      Result.Dependent = true;
      std::vector<int> Tuple;
      std::vector<int64_t> Dist;
      Tuple.reserve(Ctx.depth());
      Dist.reserve(Ctx.depth());
      for (unsigned L = 0; L != Ctx.depth(); ++L) {
        const std::string &Idx = Ctx.loop(L).Index;
        int64_t SnkV = Snk.at(Idx), SrcV = Src.at(Idx);
        std::optional<int64_t> D = checkedSub(SnkV, SrcV);
        // The sign survives even when the distance itself overflows.
        int Sign = SnkV > SrcV ? 1 : (SnkV < SrcV ? -1 : 0);
        Tuple.push_back(-Sign);
        Dist.push_back(D ? *D : (Sign > 0 ? std::numeric_limits<int64_t>::max()
                                          : std::numeric_limits<int64_t>::min()));
      }
      // Tuple convention: -1 encodes '<' (source earlier). Flip to the
      // documented -1='<'? We store sign of (source - sink): source <
      // sink  =>  -1.
      Result.DirectionTuples.insert(std::move(Tuple));
      Result.DistanceVectors.insert(std::move(Dist));
      return true;
    });
  });
  if (!OK)
    return std::nullopt;
  return Result;
}

bool pdt::vectorsAdmitTuple(const std::vector<DependenceVector> &Vectors,
                            const std::vector<int> &Tuple) {
  for (const DependenceVector &V : Vectors) {
    if (V.depth() != Tuple.size())
      continue;
    bool Match = true;
    for (unsigned L = 0; L != Tuple.size(); ++L) {
      DirectionSet Need =
          Tuple[L] < 0 ? DirLT : (Tuple[L] > 0 ? DirGT : DirEQ);
      if (!(V.Directions[L] & Need)) {
        Match = false;
        break;
      }
    }
    if (Match)
      return true;
  }
  return false;
}
