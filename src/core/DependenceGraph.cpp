//===- core/DependenceGraph.cpp - Program-level dependences ---------------===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/DependenceGraph.h"

#include "ir/PrettyPrinter.h"
#include "support/Casting.h"

#include <cassert>

using namespace pdt;

std::vector<OrientedVector> pdt::orientVectors(const DependenceVector &V) {
  std::vector<OrientedVector> Result;
  unsigned Depth = V.depth();

  // Walk an all-'=' prefix; at each level emit the '<' and '>'
  // components, and continue only while '=' remains possible.
  for (unsigned L = 0; L != Depth; ++L) {
    DirectionSet S = V.Directions[L];
    if (S & DirLT) {
      OrientedVector O;
      O.Vector = V;
      for (unsigned P = 0; P != L; ++P) {
        O.Vector.Directions[P] = DirEQ;
        O.Vector.Distances[P] = 0;
      }
      O.Vector.Directions[L] = DirLT;
      if (O.Vector.Distances[L] && *O.Vector.Distances[L] <= 0)
        O.Vector.Distances[L].reset();
      O.CarriedLevel = L;
      Result.push_back(std::move(O));
    }
    if (S & DirGT) {
      // A '>' leading direction is the mirrored dependence from the
      // textual sink to the textual source.
      OrientedVector O;
      O.Reversed = true;
      O.Vector.Directions.assign(Depth, DirAll);
      O.Vector.Distances.assign(Depth, std::nullopt);
      for (unsigned P = 0; P != L; ++P) {
        O.Vector.Directions[P] = DirEQ;
        O.Vector.Distances[P] = 0;
      }
      O.Vector.Directions[L] = DirLT;
      // Mirror the tail: swap < and >, negate distances.
      for (unsigned P = L + 1; P != Depth; ++P) {
        DirectionSet T = V.Directions[P];
        DirectionSet M = T & DirEQ;
        if (T & DirLT)
          M |= DirGT;
        if (T & DirGT)
          M |= DirLT;
        O.Vector.Directions[P] = M;
        if (V.Distances[P])
          O.Vector.Distances[P] = -*V.Distances[P];
      }
      if (V.Distances[L] && *V.Distances[L] < 0)
        O.Vector.Distances[L] = -*V.Distances[L];
      O.CarriedLevel = L;
      Result.push_back(std::move(O));
    }
    if (!(S & DirEQ))
      return Result;
    // Distances contradict a continued '=' prefix when non-zero.
    if (V.Distances[L] && *V.Distances[L] != 0)
      return Result;
  }

  // All levels admit '=': the loop-independent component.
  OrientedVector O;
  O.Vector = V;
  for (unsigned P = 0; P != Depth; ++P) {
    O.Vector.Directions[P] = DirEQ;
    O.Vector.Distances[P] = 0;
  }
  Result.push_back(std::move(O));
  return Result;
}

DependenceGraph DependenceGraph::build(const Program &P,
                                       const SymbolRangeMap &Symbols,
                                       TestStats *Stats, bool IncludeInput) {
  DependenceGraph G;
  G.Prog = &P;
  G.Accesses = collectAccesses(P);

  std::set<std::string> VaryingScalars = collectVaryingScalars(P);

  for (unsigned I = 0, E = G.Accesses.size(); I != E; ++I) {
    for (unsigned J = I, E2 = E; J != E2; ++J) {
      const ArrayAccess &A = G.Accesses[I];
      const ArrayAccess &B = G.Accesses[J];
      bool SelfPair = I == J;
      // A reference against itself can only produce an output
      // self-dependence (distinct iterations writing one element,
      // e.g. a(5) or a(i/2-free dims)); reads need no self edge.
      if (SelfPair && !A.IsWrite)
        continue;
      if (A.Ref->getArrayName() != B.Ref->getArrayName())
        continue;
      if (!IncludeInput && !A.IsWrite && !B.IsWrite)
        continue;

      DependenceTestResult R =
          testAccessPair(A, B, Symbols, Stats, &VaryingScalars);
      if (R.isIndependent())
        continue;

      std::vector<const DoLoop *> Common = commonLoops(A, B);
      for (const DependenceVector &V : R.Vectors) {
        for (const OrientedVector &O : orientVectors(V)) {
          Dependence D;
          D.Source = O.Reversed ? J : I;
          D.Sink = O.Reversed ? I : J;
          // Loop-independent dependences flow with textual order; the
          // collection order (reads before the write of the same
          // statement, statements in program order) encodes it.
          if (!O.CarriedLevel && O.Reversed)
            continue; // Covered by the forward all-'=' component.
          // For a self pair, the same instance is not a dependence and
          // the reversed carried component mirrors the forward one.
          if (SelfPair && (!O.CarriedLevel || O.Reversed))
            continue;
          D.Vector = O.Vector;
          D.CarriedLevel = O.CarriedLevel;
          D.Carrier = O.CarriedLevel ? Common[*O.CarriedLevel] : nullptr;
          D.Exact = R.Exact;
          const ArrayAccess &Src = G.Accesses[D.Source];
          const ArrayAccess &Snk = G.Accesses[D.Sink];
          if (Src.IsWrite && Snk.IsWrite)
            D.Kind = DependenceKind::Output;
          else if (Src.IsWrite)
            D.Kind = DependenceKind::Flow;
          else if (Snk.IsWrite)
            D.Kind = DependenceKind::Anti;
          else
            D.Kind = DependenceKind::Input;
          G.Edges.push_back(std::move(D));
        }
      }
    }
  }
  return G;
}

bool DependenceGraph::isLoopParallel(const DoLoop *Loop) const {
  for (const Dependence &D : Edges)
    if (D.Carrier == Loop)
      return false;
  return true;
}

std::vector<const DoLoop *> DependenceGraph::allLoops() const {
  std::vector<const DoLoop *> Loops;
  auto Walk = [&Loops](auto &&Self, const Stmt *S) -> void {
    if (const auto *L = dyn_cast<DoLoop>(S)) {
      Loops.push_back(L);
      for (const Stmt *Child : L->getBody())
        Self(Self, Child);
    }
  };
  for (const Stmt *S : Prog->TopLevel)
    Walk(Walk, S);
  return Loops;
}

std::string DependenceGraph::str() const {
  std::string Out;
  for (const Dependence &D : Edges) {
    const ArrayAccess &Src = Accesses[D.Source];
    const ArrayAccess &Snk = Accesses[D.Sink];
    Out += dependenceKindName(D.Kind);
    Out += " dependence: ";
    Out += exprToString(Src.Ref);
    Out += " -> ";
    Out += exprToString(Snk.Ref);
    Out += "  vector ";
    Out += D.Vector.str();
    if (D.Carrier) {
      Out += "  carried by loop ";
      Out += D.Carrier->getIndexName();
    } else {
      Out += "  loop-independent";
    }
    if (!D.Exact)
      Out += "  (assumed)";
    Out += "\n";
  }
  return Out;
}
