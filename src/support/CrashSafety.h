//===- support/CrashSafety.h - Flush telemetry on abnormal exit -*- C++ -*-===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The trace, metrics, and run-report dumps (PDT_TRACE, PDT_METRICS,
/// PDT_REPORT, PDT_PROFILE) are exactly the artifacts one needs when a
/// run dies — and an aborting process skips atexit, so without extra
/// care they would be lost precisely then. This registry gives every
/// telemetry sink one flush hook and arranges for all of them to run
/// on the abnormal-exit paths:
///
///   * std::terminate (uncaught exception, missing handler), via a
///     chained terminate handler installed on first registration;
///   * SIGABRT (assert, abort, library fatal), via a best-effort
///     signal handler that flushes, restores the default disposition,
///     and re-raises so the exit status is preserved.
///
/// Normal exits still flush through the sinks' own atexit hooks; the
/// registry runs each hook at most once per process, so a terminate
/// that turns into an abort does not double-write.
///
/// Hooks must be safe to call from a crashing context: no allocation
/// guarantees are made for them (ours buffer in memory and write with
/// ofstream — technically not async-signal-safe, which is the usual,
/// deliberate trade for crash diagnostics).
///
//===----------------------------------------------------------------------===//

#ifndef PDT_SUPPORT_CRASHSAFETY_H
#define PDT_SUPPORT_CRASHSAFETY_H

namespace pdt {

/// Registers \p Hook to run on abnormal process exit. The first
/// registration installs the terminate and SIGABRT handlers. \p Name
/// identifies the sink in the one-line stderr notice printed when the
/// crash path actually flushes.
void registerCrashFlush(const char *Name, void (*Hook)());

/// Runs every registered hook that has not run yet (idempotent).
/// Invoked by the handlers; exposed so tests can exercise the flush
/// without dying.
void runCrashFlushHooks();

} // namespace pdt

#endif // PDT_SUPPORT_CRASHSAFETY_H
