//===- bench/bench_table1_characteristics.cpp ------------------------------===//
//
// Experiment T1: regenerates Table 1 of the paper — program
// characteristics of each suite (kernels, lines, loops, reference
// pairs, array dimension histogram) and subscript complexity
// (separable vs coupled vs nonlinear). The paper's observation to
// reproduce: most tested reference pairs are one- or two-dimensional,
// coupled subscripts are a small minority concentrated in
// eispack-like code, and nonlinear subscripts are rare.
//
//===----------------------------------------------------------------------===//

#include "driver/TableReport.h"

#include <cstdio>

using namespace pdt;

int main() {
  std::vector<SuiteReport> Reports = analyzeCorpusSuites();
  std::string Out = formatTable1(Reports);
  std::fputs(Out.c_str(), stdout);

  // Aggregate shares, the form the paper quotes in prose.
  uint64_t Pairs = 0, OneD = 0, Sep = 0, Coupled = 0, Nonlinear = 0;
  for (const SuiteReport &R : Reports) {
    Pairs += R.Stats.ReferencePairs;
    OneD += R.Stats.DimensionHistogram[0];
    Sep += R.Stats.SeparableSubscripts;
    Coupled += R.Stats.CoupledSubscripts;
    Nonlinear += R.Stats.NonlinearSubscripts;
  }
  std::printf("\ntotals: %llu pairs, %.0f%% 1-dimensional; "
              "%llu separable / %llu coupled / %llu nonlinear subscripts\n",
              static_cast<unsigned long long>(Pairs),
              Pairs ? 100.0 * OneD / Pairs : 0.0,
              static_cast<unsigned long long>(Sep),
              static_cast<unsigned long long>(Coupled),
              static_cast<unsigned long long>(Nonlinear));
  return 0;
}
