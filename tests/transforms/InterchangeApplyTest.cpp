//===- tests/transforms/InterchangeApplyTest.cpp -----------------------------===//
//
// Tests for the interchange rewrite: structural swap, semantic
// preservation when legal, and the observable semantic change when a
// dependence made the swap illegal (demonstrating that the legality
// check is load-bearing).
//
//===----------------------------------------------------------------------===//

#include "transforms/Interchange.h"

#include "../TestHelpers.h"
#include "core/DependenceGraph.h"
#include "driver/Interpreter.h"
#include "ir/PrettyPrinter.h"

#include <gtest/gtest.h>

using namespace pdt;
using namespace pdt::test;

namespace {

const DoLoop *outerLoopOf(const Program &P) {
  return dyn_cast<DoLoop>(P.TopLevel.front());
}

} // namespace

TEST(InterchangeApply, StructuralSwap) {
  Program P = parseOrDie(R"(
do i = 1, 10
  do j = 1, 20
    a(i, j) = i + j
  end do
end do
)");
  std::optional<Program> Swapped = applyInterchange(P, outerLoopOf(P));
  ASSERT_TRUE(Swapped.has_value());
  EXPECT_EQ(programToString(*Swapped),
            "do j = 1, 20\n"
            "  do i = 1, 10\n"
            "    a(i, j) = i + j\n"
            "  end do\n"
            "end do\n");
}

TEST(InterchangeApply, LegalSwapPreservesSemantics) {
  Program P = parseOrDie(R"(
do i = 2, 12
  do j = 2, 12
    a(i, j) = a(i-1, j-1) + i
  end do
end do
)");
  DependenceGraph G = DependenceGraph::build(P, SymbolRangeMap());
  const DoLoop *Outer = outerLoopOf(P);
  const auto *Inner = cast<DoLoop>(Outer->getBody().front());
  ASSERT_TRUE(isInterchangeLegal(G, Outer, Inner));
  std::optional<Program> Swapped = applyInterchange(P, Outer);
  ASSERT_TRUE(Swapped.has_value());
  ExecutionTrace Before = interpret(P);
  ExecutionTrace After = interpret(*Swapped);
  ASSERT_TRUE(Before.OK && After.OK);
  EXPECT_EQ(Before.Memory, After.Memory);
}

TEST(InterchangeApply, IllegalSwapChangesSemantics) {
  // Distance vector (1, -1): the legality check says no, and indeed
  // the swapped program computes different values — evidence the
  // direction-vector rule is exactly right.
  Program P = parseOrDie(R"(
b(3) = 100
do i = 2, 6
  do j = 1, 5
    a(i, j) = a(i-1, j+1) + b(i)
  end do
end do
)");
  DependenceGraph G = DependenceGraph::build(P, SymbolRangeMap());
  const DoLoop *Outer = dyn_cast<DoLoop>(P.TopLevel[1]);
  ASSERT_NE(Outer, nullptr);
  const auto *Inner = cast<DoLoop>(Outer->getBody().front());
  EXPECT_FALSE(isInterchangeLegal(G, Outer, Inner));
  std::optional<Program> Swapped = applyInterchange(P, Outer);
  ASSERT_TRUE(Swapped.has_value()); // The rewrite itself works...
  ExecutionTrace Before = interpret(P);
  ExecutionTrace After = interpret(*Swapped);
  ASSERT_TRUE(Before.OK && After.OK);
  EXPECT_NE(Before.Memory, After.Memory); // ...but semantics change.
}

TEST(InterchangeApply, TriangularPairRejected) {
  Program P = parseOrDie(R"(
do i = 1, 10
  do j = 1, i
    a(i, j) = 0
  end do
end do
)");
  EXPECT_FALSE(applyInterchange(P, outerLoopOf(P)).has_value());
}

TEST(InterchangeApply, ImperfectPairRejected) {
  Program P = parseOrDie(R"(
do i = 1, 10
  b(i) = i
  do j = 1, 10
    a(i, j) = 0
  end do
end do
)");
  EXPECT_FALSE(applyInterchange(P, outerLoopOf(P)).has_value());
}

TEST(InterchangeApply, InnerPairOfTripleNest) {
  Program P = parseOrDie(R"(
do i = 1, 4
  do j = 1, 5
    do k = 1, 6
      a(i, j, k) = i + j + k
    end do
  end do
end do
)");
  const DoLoop *Outer = outerLoopOf(P);
  const auto *Mid = cast<DoLoop>(Outer->getBody().front());
  std::optional<Program> Swapped = applyInterchange(P, Mid);
  ASSERT_TRUE(Swapped.has_value());
  // New order: i, k, j.
  const auto *NewOuter = cast<DoLoop>(Swapped->TopLevel.front());
  EXPECT_EQ(NewOuter->getIndexName(), "i");
  const auto *NewMid = cast<DoLoop>(NewOuter->getBody().front());
  EXPECT_EQ(NewMid->getIndexName(), "k");
  ExecutionTrace Before = interpret(P);
  ExecutionTrace After = interpret(*Swapped);
  EXPECT_EQ(Before.Memory, After.Memory);
}
