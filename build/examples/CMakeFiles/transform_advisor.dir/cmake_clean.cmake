file(REMOVE_RECURSE
  "CMakeFiles/transform_advisor.dir/transform_advisor.cpp.o"
  "CMakeFiles/transform_advisor.dir/transform_advisor.cpp.o.d"
  "transform_advisor"
  "transform_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transform_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
