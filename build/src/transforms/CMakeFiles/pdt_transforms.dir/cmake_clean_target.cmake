file(REMOVE_RECURSE
  "libpdt_transforms.a"
)
