
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_vectorization_stats.cpp" "bench/CMakeFiles/bench_vectorization_stats.dir/bench_vectorization_stats.cpp.o" "gcc" "bench/CMakeFiles/bench_vectorization_stats.dir/bench_vectorization_stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/driver/CMakeFiles/pdt_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/transforms/CMakeFiles/pdt_transforms.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pdt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/pdt_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/pdt_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/pdt_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pdt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
