//===- tests/transforms/LoopDistributionTest.cpp ----------------------------===//
//
// Loop distribution tests: the transform must follow the pi-block
// topological order (even against textual order), keep recurrences
// together, and always preserve semantics (checked dynamically).
//
//===----------------------------------------------------------------------===//

#include "transforms/LoopDistribution.h"

#include "../TestHelpers.h"
#include "driver/Interpreter.h"
#include "driver/WorkloadGenerator.h"
#include "ir/PrettyPrinter.h"

#include <gtest/gtest.h>

using namespace pdt;
using namespace pdt::test;

namespace {

/// Parses, builds the graph on the *parsed* program (no
/// normalization, so statement pointers match), distributes, and
/// checks semantic equality with the interpreter.
struct Distributed {
  Program Original;
  DistributionStats Stats;
  Program Result;
};

Distributed distribute(const char *Source,
                       const std::map<std::string, int64_t> &Symbols = {}) {
  Distributed D;
  D.Original = parseOrDie(Source);
  SymbolRangeMap Ranges;
  for (const auto &[Name, Value] : Symbols)
    Ranges[Name] = Interval::point(Value);
  DependenceGraph G = DependenceGraph::build(D.Original, Ranges);
  D.Result = distributeLoops(D.Original, G, &D.Stats);

  InterpreterOptions Exec;
  Exec.Symbols = Symbols;
  ExecutionTrace Before = interpret(D.Original, Exec);
  ExecutionTrace After = interpret(D.Result, Exec);
  EXPECT_TRUE(Before.OK && After.OK);
  EXPECT_EQ(Before.Memory, After.Memory)
      << "distribution changed semantics:\n"
      << programToString(D.Result);
  return D;
}

} // namespace

TEST(LoopDistribution, IndependentStatementsSplit) {
  Distributed D = distribute(R"(
do i = 1, 20
  a(i) = i
  b(i) = 2*i
end do
)");
  EXPECT_EQ(D.Stats.LoopsDistributed, 1u);
  EXPECT_EQ(D.Stats.PiecesEmitted, 2u);
  EXPECT_EQ(D.Result.TopLevel.size(), 2u);
}

TEST(LoopDistribution, ForwardDependenceKeepsOrder) {
  Distributed D = distribute(R"(
do i = 2, 20
  a(i) = i
  b(i) = a(i-1) + a(i)
end do
)");
  EXPECT_EQ(D.Stats.PiecesEmitted, 2u);
  // Piece order: a-producer first.
  ASSERT_EQ(D.Result.TopLevel.size(), 2u);
  const auto *First = cast<DoLoop>(D.Result.TopLevel[0]);
  const auto *Assign = cast<AssignStmt>(First->getBody()[0]);
  EXPECT_EQ(Assign->getArrayTarget()->getArrayName(), "a");
}

TEST(LoopDistribution, BackwardCarriedDependenceReorders) {
  // Textually b-then-a, but b reads a(i-1): the a-producing piece must
  // run first after distribution.
  Distributed D = distribute(R"(
do i = 2, 20
  b(i) = a(i-1) + 1
  a(i) = c(i) + i
end do
)");
  EXPECT_EQ(D.Stats.PiecesEmitted, 2u);
  ASSERT_EQ(D.Result.TopLevel.size(), 2u);
  const auto *First = cast<DoLoop>(D.Result.TopLevel[0]);
  const auto *Assign = cast<AssignStmt>(First->getBody()[0]);
  EXPECT_EQ(Assign->getArrayTarget()->getArrayName(), "a")
      << programToString(D.Result);
}

TEST(LoopDistribution, CycleStaysFused) {
  Distributed D = distribute(R"(
do i = 2, 20
  a(i) = d(i-1) + 1
  d(i) = a(i) + a(i-1)
end do
)");
  EXPECT_EQ(D.Stats.LoopsDistributed, 0u);
  EXPECT_EQ(D.Result.TopLevel.size(), 1u);
}

TEST(LoopDistribution, RecurrencePlusIndependentSplits) {
  Distributed D = distribute(R"(
do i = 2, 30
  a(i) = a(i-1) + 1
  b(i) = c(i)*2
end do
)");
  EXPECT_EQ(D.Stats.PiecesEmitted, 2u);
}

TEST(LoopDistribution, ScalarAssignBlocksDistribution) {
  // Scalar flow is not tracked by the array dependence graph: the loop
  // must stay fused for safety.
  Distributed D = distribute(R"(
do i = 1, 20
  t = a(i) + 1
  b(i) = t*2
end do
)");
  EXPECT_EQ(D.Stats.LoopsDistributed, 0u);
  EXPECT_EQ(D.Result.TopLevel.size(), 1u);
}

TEST(LoopDistribution, InnerLoopOfNestDistributes) {
  Distributed D = distribute(R"(
do i = 1, 10
  do j = 1, 10
    a(i, j) = i + j
    b(i, j) = 2*i
  end do
end do
)");
  EXPECT_EQ(D.Stats.LoopsDistributed, 1u);
  // The outer loop now contains two inner loops.
  const auto *Outer = cast<DoLoop>(D.Result.TopLevel[0]);
  EXPECT_EQ(Outer->getBody().size(), 2u);
}

TEST(LoopDistribution, SameIterationReadAfterWriteSplits) {
  // b(i) = a(i): loop-independent flow; split is legal with the
  // producer first (it is already first).
  Distributed D = distribute(R"(
do i = 1, 20
  a(i) = i
  b(i) = a(i)
end do
)");
  EXPECT_EQ(D.Stats.PiecesEmitted, 2u);
}

TEST(LoopDistribution, AntiDependencePairSplitsWithReadFirst) {
  // b(i) = a(i+1) reads ahead of the write a(i): anti dependence
  // read -> write; the reading piece must stay first.
  Distributed D = distribute(R"(
do i = 1, 20
  b(i) = a(i+1)
  a(i) = c(i)
end do
)");
  EXPECT_EQ(D.Stats.PiecesEmitted, 2u);
  const auto *First = cast<DoLoop>(D.Result.TopLevel[0]);
  const auto *Assign = cast<AssignStmt>(First->getBody()[0]);
  EXPECT_EQ(Assign->getArrayTarget()->getArrayName(), "b");
}

TEST(LoopDistribution, RandomProgramsPreserveSemantics) {
  std::mt19937_64 Rng(555001);
  for (unsigned N = 0; N != 30; ++N) {
    std::string Source = generateRandomProgramSource(Rng, 2, 2, 4);
    distribute(Source.c_str(), {{"n", 6}});
    if (::testing::Test::HasFailure()) {
      ADD_FAILURE() << "failing source:\n" << Source;
      return;
    }
  }
}
