//===- support/Sampler.cpp - Periodic metrics time series -----------------===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Sampler.h"

#include "support/BuildInfo.h"
#include "support/Env.h"
#include "support/Json.h"
#include "support/Metrics.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

using namespace pdt;

#if PDT_TRACING

namespace {

constexpr size_t MaxRecentSamples = 4096;

struct Series {
  size_t Id;
  std::string Name;
  std::function<uint64_t()> Fn;
};

struct SamplerState {
  std::mutex M;
  std::atomic<bool> Enabled{false};
  std::FILE *File = nullptr;
  uint64_t IntervalMs = Sampler::DefaultIntervalMs;
  uint64_t Samples = 0;
  MetricsSnapshot Prev;
  std::deque<std::string> Recent;
  std::vector<Series> SeriesList;
  size_t NextSeriesId = 1;
  std::chrono::steady_clock::time_point Epoch;

  std::thread Worker;
  std::mutex WorkerM;
  std::condition_variable WorkerCv;
  bool WorkerStop = false;
};

SamplerState &state() {
  // Immortal, like every telemetry singleton in support/.
  static SamplerState *S = new SamplerState;
  return *S;
}

void appendSampleLocked(SamplerState &S) {
  MetricsSnapshot Snap = Metrics::snapshot();
  uint64_t TMs = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - S.Epoch)
          .count());

  std::string Line = "{\"t_ms\": " + std::to_string(TMs);
  Line += ", \"counters\": {";
  bool First = true;
  for (unsigned I = 0; I != NumMetrics; ++I) {
    uint64_t Delta = Snap.Counters[I] - S.Prev.Counters[I];
    if (!Delta)
      continue;
    Line += First ? "" : ", ";
    First = false;
    Line += "\"";
    Line += metricName(static_cast<Metric>(I));
    Line += "\": " + std::to_string(Delta);
  }
  Line += "}, \"gauges\": {";
  First = true;
  for (unsigned I = 0; I != NumGauges; ++I) {
    if (!Snap.Gauges[I])
      continue;
    Line += First ? "" : ", ";
    First = false;
    Line += "\"";
    Line += gaugeName(static_cast<Gauge>(I));
    Line += "\": " + std::to_string(Snap.Gauges[I]);
  }
  Line += "}";
  if (!S.SeriesList.empty()) {
    Line += ", \"series\": {";
    First = true;
    for (const Series &Ser : S.SeriesList) {
      Line += First ? "" : ", ";
      First = false;
      Line += "\"" + json::escape(Ser.Name) + "\": " +
              std::to_string(Ser.Fn ? Ser.Fn() : 0);
    }
    Line += "}";
  }
  Line += "}";

  S.Prev = Snap;
  ++S.Samples;
  Metrics::count(Metric::SamplerSamples);
  if (S.Recent.size() == MaxRecentSamples)
    S.Recent.pop_front();
  S.Recent.push_back(Line);
  if (S.File) {
    std::fwrite(Line.data(), 1, Line.size(), S.File);
    std::fputc('\n', S.File);
    std::fflush(S.File);
  }
}

void workerLoop(uint64_t IntervalMs) {
  SamplerState &S = state();
  std::unique_lock<std::mutex> Lock(S.WorkerM);
  while (!S.WorkerStop) {
    S.WorkerCv.wait_for(Lock, std::chrono::milliseconds(IntervalMs),
                        [&S] { return S.WorkerStop; });
    if (S.WorkerStop)
      break;
    Lock.unlock();
    {
      std::lock_guard<std::mutex> StateLock(S.M);
      if (S.Enabled.load(std::memory_order_relaxed))
        appendSampleLocked(S);
    }
    Lock.lock();
  }
}

} // namespace

bool Sampler::enabled() {
  return state().Enabled.load(std::memory_order_relaxed);
}

bool Sampler::start(uint64_t IntervalMs, const std::string &Path) {
  stop();
  SamplerState &S = state();
  bool FileOk = true;
  {
    std::lock_guard<std::mutex> Lock(S.M);
    S.IntervalMs = IntervalMs;
    S.Samples = 0;
    S.Recent.clear();
    S.Epoch = std::chrono::steady_clock::now();
    if (Metrics::compiledIn() && !Metrics::enabled())
      Metrics::enable();
    S.Prev = Metrics::snapshot();
    if (!Path.empty()) {
      S.File = std::fopen(Path.c_str(), "w");
      FileOk = S.File != nullptr;
      if (S.File) {
        std::string Header =
            "{\"schema\": \"pdt-timeseries-v1\", \"interval_ms\": " +
            std::to_string(IntervalMs) + ", \"build\": " + buildInfoJson() +
            "}\n";
        std::fwrite(Header.data(), 1, Header.size(), S.File);
        std::fflush(S.File);
      }
    }
    S.Enabled.store(true, std::memory_order_relaxed);
  }
  if (IntervalMs) {
    std::lock_guard<std::mutex> Lock(S.WorkerM);
    S.WorkerStop = false;
    S.Worker = std::thread(workerLoop, IntervalMs);
  }
  return FileOk;
}

void Sampler::stop() {
  SamplerState &S = state();
  std::thread Worker;
  {
    std::lock_guard<std::mutex> Lock(S.WorkerM);
    S.WorkerStop = true;
    Worker = std::move(S.Worker);
  }
  S.WorkerCv.notify_all();
  if (Worker.joinable())
    Worker.join();
  std::lock_guard<std::mutex> Lock(S.M);
  if (S.Enabled.load(std::memory_order_relaxed)) {
    // One final sample so short runs (and every stop) leave at least
    // one data point past the header.
    appendSampleLocked(S);
    S.Enabled.store(false, std::memory_order_relaxed);
  }
  if (S.File) {
    std::fclose(S.File);
    S.File = nullptr;
  }
}

void Sampler::sampleOnceForTest() {
  SamplerState &S = state();
  std::lock_guard<std::mutex> Lock(S.M);
  if (S.Enabled.load(std::memory_order_relaxed))
    appendSampleLocked(S);
}

size_t Sampler::registerSeries(std::string Name,
                               std::function<uint64_t()> Fn) {
  SamplerState &S = state();
  std::lock_guard<std::mutex> Lock(S.M);
  size_t Id = S.NextSeriesId++;
  S.SeriesList.push_back({Id, std::move(Name), std::move(Fn)});
  return Id;
}

void Sampler::unregisterSeries(size_t Id) {
  SamplerState &S = state();
  std::lock_guard<std::mutex> Lock(S.M);
  for (size_t I = 0; I != S.SeriesList.size(); ++I)
    if (S.SeriesList[I].Id == Id) {
      S.SeriesList.erase(S.SeriesList.begin() + static_cast<ptrdiff_t>(I));
      return;
    }
}

Sampler::Summary Sampler::summary() {
  SamplerState &S = state();
  std::lock_guard<std::mutex> Lock(S.M);
  return {S.Samples, S.IntervalMs};
}

std::vector<std::string> Sampler::recentLines() {
  SamplerState &S = state();
  std::lock_guard<std::mutex> Lock(S.M);
  return {S.Recent.begin(), S.Recent.end()};
}

#endif // PDT_TRACING

void Sampler::initFromEnvironment() {
  static bool Done = false;
  if (Done)
    return;
  Done = true;
  std::optional<int64_t> Interval = envInt("PDT_SAMPLE_MS", 1, 3600000);
  std::optional<std::string> Path = envPath("PDT_SAMPLE");
  if (!Interval && !Path)
    return;
  if (!compiledIn()) {
    std::fprintf(stderr, "pdt: warning: PDT_SAMPLE_MS/PDT_SAMPLE is set but "
                         "the sampler was compiled out (PDT_TRACING=OFF); "
                         "no time series will be written\n");
    return;
  }
#if PDT_TRACING
  uint64_t IntervalMs =
      Interval ? static_cast<uint64_t>(*Interval) : DefaultIntervalMs;
  if (!Sampler::start(IntervalMs, Path ? *Path : std::string()))
    std::fprintf(stderr, "pdt: warning: cannot open PDT_SAMPLE file %s\n",
                 Path->c_str());
  // Normal exits take the final sample and close the stream; crashes
  // keep every line already flushed.
  std::atexit([] { Sampler::stop(); });
#endif
}

namespace {
/// Arms PDT_SAMPLE_MS before main, mirroring Trace/Metrics.
[[maybe_unused]] const bool SamplerEnvInitialized =
    (Sampler::initFromEnvironment(), true);
} // namespace
