//===- tests/core/TestStatsTest.cpp -------------------------------------------===//
//
// TestStats::merge algebra (associativity / commutativity / identity)
// and the sharding contract the parallel graph builder relies on: a
// run split over any number of per-worker TestStats sinks must merge
// back to exactly the serial counters.
//
//===----------------------------------------------------------------------===//

#include "core/TestStats.h"

#include "core/AccessLoweringCache.h"
#include "core/DependenceGraph.h"
#include "core/DependenceTester.h"
#include "driver/Analyzer.h"
#include "driver/Corpus.h"

#include <gtest/gtest.h>

#include <random>

using namespace pdt;

namespace {

/// A deterministic pseudo-random TestStats instance.
TestStats randomStats(uint64_t Seed) {
  std::mt19937_64 Rng(Seed);
  std::uniform_int_distribution<uint64_t> D(0, 1000);
  TestStats S;
  for (unsigned I = 0; I != NumTestKinds; ++I) {
    S.Applications[I] = D(Rng);
    S.Independences[I] = D(Rng);
  }
  S.ReferencePairs = D(Rng);
  S.IndependentPairs = D(Rng);
  for (unsigned I = 0; I != 4; ++I)
    S.DimensionHistogram[I] = D(Rng);
  S.SeparableSubscripts = D(Rng);
  S.CoupledSubscripts = D(Rng);
  S.NonlinearSubscripts = D(Rng);
  S.ZIVSubscripts = D(Rng);
  S.SIVSubscripts = D(Rng);
  S.MIVSubscripts = D(Rng);
  S.CoupledGroups = D(Rng);
  S.GroupsWithResidualMIV = D(Rng);
  return S;
}

TEST(TestStatsTest, MergeIsCommutative) {
  for (uint64_t Seed = 0; Seed != 8; ++Seed) {
    TestStats A = randomStats(Seed);
    TestStats B = randomStats(Seed + 100);
    TestStats AB = A;
    AB.merge(B);
    TestStats BA = B;
    BA.merge(A);
    EXPECT_EQ(AB, BA);
  }
}

TEST(TestStatsTest, MergeIsAssociative) {
  for (uint64_t Seed = 0; Seed != 8; ++Seed) {
    TestStats A = randomStats(Seed);
    TestStats B = randomStats(Seed + 100);
    TestStats C = randomStats(Seed + 200);
    TestStats Left = A; // (A + B) + C
    Left.merge(B);
    Left.merge(C);
    TestStats BC = B; // A + (B + C)
    BC.merge(C);
    TestStats Right = A;
    Right.merge(BC);
    EXPECT_EQ(Left, Right);
  }
}

TEST(TestStatsTest, DefaultIsMergeIdentity) {
  TestStats A = randomStats(42);
  TestStats Merged = A;
  Merged.merge(TestStats());
  EXPECT_EQ(Merged, A);
  TestStats Other;
  Other.merge(A);
  EXPECT_EQ(Other, A);
}

/// Shards the tested pairs of a program over K sinks by hand
/// (round-robin, the worst case for any order assumption) and checks
/// the merge reproduces the serial counters exactly.
TEST(TestStatsTest, ShardedRunReproducesSerialCounts) {
  // Concatenate a few corpus kernels into one program so the pair
  // population is large enough to spread across shards.
  std::string Source;
  for (unsigned I = 0; I != 5 && I != corpus().size(); ++I)
    Source += corpus()[I].Source + "\n";
  AnalysisResult R = analyzeSource(Source, "sharded");
  ASSERT_TRUE(R.Parsed);

  std::vector<ArrayAccess> Accesses = collectAccesses(*R.Prog);
  std::set<std::string> Varying = collectVaryingScalars(*R.Prog);
  SymbolRangeMap Symbols;
  for (const char *Name : {"n", "m"})
    Symbols.try_emplace(Name, Interval(1, std::nullopt));
  AccessLoweringCache Cache(Accesses, Symbols, &Varying);

  TestStats Serial;
  constexpr unsigned NumShards = 3;
  std::array<TestStats, NumShards> Shards;
  unsigned Pair = 0;
  for (unsigned I = 0; I != Accesses.size(); ++I) {
    for (unsigned J = I; J != Accesses.size(); ++J) {
      if (I == J && !Accesses[I].IsWrite)
        continue;
      if (Accesses[I].Ref->getArrayName() != Accesses[J].Ref->getArrayName())
        continue;
      if (!Accesses[I].IsWrite && !Accesses[J].IsWrite)
        continue;
      std::optional<PreparedPair> P = Cache.preparePair(I, J);
      testPreparedAccessPair(Accesses[I], Accesses[J], P, &Serial);
      testPreparedAccessPair(Accesses[I], Accesses[J], P,
                             &Shards[Pair++ % NumShards]);
    }
  }
  ASSERT_GT(Pair, NumShards) << "corpus program too small to shard";

  TestStats Merged;
  for (const TestStats &S : Shards)
    Merged.merge(S);
  EXPECT_EQ(Merged, Serial);
  EXPECT_EQ(Merged.ReferencePairs, Pair);
}

/// End to end: the analyzer's merged per-worker statistics at several
/// thread counts equal the serial statistics on every corpus kernel.
TEST(TestStatsTest, ThreadedAnalysisStatsMatchSerial) {
  for (const CorpusKernel &K : corpus()) {
    AnalyzerOptions Serial;
    Serial.NumThreads = 1;
    AnalysisResult R1 = analyzeSource(K.Source, K.Name, Serial);
    ASSERT_TRUE(R1.Parsed) << K.Name;

    for (unsigned Threads : {2u, 4u}) {
      AnalyzerOptions Opt;
      Opt.NumThreads = Threads;
      AnalysisResult RN = analyzeSource(K.Source, K.Name, Opt);
      ASSERT_TRUE(RN.Parsed) << K.Name;
      EXPECT_EQ(RN.Stats, R1.Stats) << K.Name << " at " << Threads
                                    << " threads";
    }
  }
}

} // namespace
