//===- transforms/Vectorizer.cpp - Allen-Kennedy codegen ------------------===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//

#include "transforms/Vectorizer.h"

#include "ir/PrettyPrinter.h"
#include "support/Casting.h"
#include "support/SCC.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>

using namespace pdt;

namespace {

/// A statement of the nest with its enclosing loop stack.
struct StmtInfo {
  const AssignStmt *S = nullptr;
  std::vector<const DoLoop *> Stack;
  bool ScalarAssign = false;
};

void collectStmts(const Stmt *S, std::vector<const DoLoop *> &Stack,
                  std::vector<StmtInfo> &Out) {
  if (const auto *A = dyn_cast<AssignStmt>(S)) {
    Out.push_back({A, Stack, !A->isArrayAssign()});
    return;
  }
  const auto *L = cast<DoLoop>(S);
  Stack.push_back(L);
  for (const Stmt *Child : L->getBody())
    collectStmts(Child, Stack, Out);
  Stack.pop_back();
}

/// Statement-level dependence edges of one nest, annotated with the
/// carried level (nullopt = loop-independent).
struct StmtEdge {
  unsigned From;
  unsigned To;
  std::optional<unsigned> Level;
};

class Planner {
public:
  Planner(const DependenceGraph &G, const DoLoop *Root) : Root(Root) {
    std::vector<const DoLoop *> Stack;
    collectStmts(Root, Stack, Stmts);
    for (unsigned I = 0; I != Stmts.size(); ++I)
      StmtId[Stmts[I].S] = I;

    // Project access-level dependences to statement-level edges.
    for (const Dependence &D : G.dependences()) {
      const ArrayAccess &Src = G.accesses()[D.Source];
      const ArrayAccess &Snk = G.accesses()[D.Sink];
      auto FromIt = StmtId.find(Src.Statement);
      auto ToIt = StmtId.find(Snk.Statement);
      if (FromIt == StmtId.end() || ToIt == StmtId.end())
        continue;
      Edges.push_back({FromIt->second, ToIt->second, D.CarriedLevel});
    }
  }

  VectorizationPlan plan() {
    VectorizationPlan Result;
    Result.Root = Root;
    std::vector<unsigned> All(Stmts.size());
    for (unsigned I = 0; I != All.size(); ++I)
      All[I] = I;
    codegen(0, All, Result.Pieces, Result);
    return Result;
  }

private:
  const DoLoop *Root;
  std::vector<StmtInfo> Stmts;
  std::map<const AssignStmt *, unsigned> StmtId;
  std::vector<StmtEdge> Edges;

  /// The Allen-Kennedy recursion.
  void codegen(unsigned Level, const std::vector<unsigned> &Nodes,
               std::vector<VectorPlanNode> &Out, VectorizationPlan &Plan) {
    std::vector<bool> InSet(Stmts.size(), false);
    for (unsigned N : Nodes)
      InSet[N] = true;

    // Adjacency restricted to the node set and edges at >= Level
    // (deeper-carried or loop-independent).
    std::vector<std::vector<unsigned>> Adj(Stmts.size());
    std::vector<bool> SelfEdge(Stmts.size(), false);
    for (const StmtEdge &E : Edges) {
      if (!InSet[E.From] || !InSet[E.To])
        continue;
      if (E.Level && *E.Level < Level)
        continue;
      if (E.From == E.To) {
        // A loop-independent self edge is the statement's own
        // read-before-write in one instance; vector semantics fetch
        // operands before storing, so only *carried* self edges form
        // recurrences.
        if (E.Level)
          SelfEdge[E.From] = true;
        continue;
      }
      Adj[E.From].push_back(E.To);
    }

    std::vector<std::vector<unsigned>> Components =
        stronglyConnectedComponents(Stmts.size(), Adj, Nodes);
    // Tarjan emits reverse topological order; execute in topological
    // order.
    std::reverse(Components.begin(), Components.end());

    for (std::vector<unsigned> &Component : Components) {
      // Keep statement order textual within a component.
      std::sort(Component.begin(), Component.end());
      const StmtInfo &First = Stmts[Component.front()];
      bool Cyclic = Component.size() > 1 || SelfEdge[Component.front()] ||
                    First.ScalarAssign;
      if (!Cyclic) {
        VectorPlanNode Node;
        Node.TheKind = VectorPlanNode::Kind::VectorStatement;
        Node.Level = Level;
        Node.Statement = First.S;
        Out.push_back(std::move(Node));
        if (Level == 0)
          ++Plan.FullyVectorized;
        continue;
      }

      // A recurrence at this level: wrap in a serial loop and recurse
      // one level deeper while the statements still have deeper loops.
      unsigned MaxDepth = 0;
      for (unsigned N : Component)
        MaxDepth = std::max(MaxDepth,
                            static_cast<unsigned>(Stmts[N].Stack.size()));
      VectorPlanNode Node;
      Node.TheKind = VectorPlanNode::Kind::SerialLoop;
      Node.Level = Level;
      if (Level < First.Stack.size())
        Node.LoopIndex = First.Stack[Level]->getIndexName();
      if (Level + 1 < MaxDepth) {
        codegen(Level + 1, Component, Node.Children, Plan);
      } else {
        for (unsigned N : Component) {
          VectorPlanNode Leaf;
          Leaf.TheKind = VectorPlanNode::Kind::VectorStatement;
          Leaf.Level = Level + 1;
          Leaf.Statement = Stmts[N].S;
          Node.Children.push_back(std::move(Leaf));
          ++Plan.Sequentialized;
        }
      }
      Out.push_back(std::move(Node));
    }
  }
};

void renderNode(const VectorPlanNode &Node, unsigned Indent,
                std::string &Out) {
  std::string Pad(Indent * 2, ' ');
  if (Node.TheKind == VectorPlanNode::Kind::VectorStatement) {
    std::string Text = stmtToString(Node.Statement);
    if (!Text.empty() && Text.back() == '\n')
      Text.pop_back();
    Out += Pad + "vectorize[level " + std::to_string(Node.Level) + "] " +
           Text + "\n";
    return;
  }
  Out += Pad + "serial loop " + Node.LoopIndex + ":\n";
  for (const VectorPlanNode &Child : Node.Children)
    renderNode(Child, Indent + 1, Out);
}

} // namespace

std::vector<VectorizationPlan>
pdt::planVectorization(const DependenceGraph &G) {
  std::vector<VectorizationPlan> Plans;
  // Outermost loops only: allLoops() is preorder, so an outermost loop
  // is one not contained in a previously seen loop's subtree; easier:
  // walk the accesses' stacks... simplest: recompute from allLoops by
  // nesting. A loop is outermost iff it appears at depth 0 of some
  // access stack or has no parent among the others. Use the graph's
  // program walk: every loop whose body contains another loop "owns"
  // it; collect roots.
  std::vector<const DoLoop *> All = G.allLoops();
  std::set<const DoLoop *> Inner;
  auto MarkInner = [&Inner](auto &&Self, const DoLoop *L) -> void {
    for (const Stmt *Child : L->getBody())
      if (const auto *CL = dyn_cast<DoLoop>(Child)) {
        Inner.insert(CL);
        Self(Self, CL);
      }
  };
  for (const DoLoop *L : All)
    MarkInner(MarkInner, L);
  for (const DoLoop *L : All) {
    if (Inner.count(L))
      continue;
    Planner P(G, L);
    Plans.push_back(P.plan());
  }
  return Plans;
}

std::string pdt::planToString(const VectorizationPlan &Plan) {
  std::string Out;
  Out += "nest " + Plan.Root->getIndexName() + ":\n";
  for (const VectorPlanNode &Node : Plan.Pieces)
    renderNode(Node, 1, Out);
  Out += "  (" + std::to_string(Plan.FullyVectorized) +
         " fully vectorized, " + std::to_string(Plan.Sequentialized) +
         " sequentialized)\n";
  return Out;
}
