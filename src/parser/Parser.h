//===- parser/Parser.h - Recursive-descent parser ---------------*- C++ -*-===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for the Fortran-like loop language:
///
///   program := stmt*
///   stmt    := 'do' IDENT '=' expr ',' expr (',' expr)? NL stmt* 'end' 'do'
///            | lvalue '=' expr NL
///   lvalue  := IDENT ('(' expr (',' expr)* ')')?
///   expr    := the usual +, -, *, / with unary minus and parens
///
/// Errors are collected as diagnostics; parsing recovers at statement
/// boundaries so a single bad line does not hide later errors.
///
//===----------------------------------------------------------------------===//

#ifndef PDT_PARSER_PARSER_H
#define PDT_PARSER_PARSER_H

#include "ir/AST.h"
#include "parser/Token.h"

#include <optional>
#include <string>
#include <vector>

namespace pdt {

/// One parse diagnostic (always an error; the grammar has no warnings).
struct Diagnostic {
  SourceLocation Loc;
  std::string Message;

  std::string str() const { return Loc.str() + ": error: " + Message; }
};

/// Result of a parse: the program is present iff there were no errors.
struct ParseResult {
  std::optional<Program> Prog;
  std::vector<Diagnostic> Diagnostics;

  bool succeeded() const { return Prog.has_value(); }
};

/// Parses \p Source into a Program. \p Name labels the program in
/// reports (typically the file or kernel name).
ParseResult parseProgram(const std::string &Source,
                         const std::string &Name = "<program>");

} // namespace pdt

#endif // PDT_PARSER_PARSER_H
