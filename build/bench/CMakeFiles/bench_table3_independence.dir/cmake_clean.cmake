file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_independence.dir/bench_table3_independence.cpp.o"
  "CMakeFiles/bench_table3_independence.dir/bench_table3_independence.cpp.o.d"
  "bench_table3_independence"
  "bench_table3_independence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_independence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
