//===- examples/depfuzz.cpp - Differential soundness fuzzer CLI ----------===//
//
// Command-line front end for the differential fuzzer (src/fuzz, see
// docs/FUZZING.md):
//
//   depfuzz [--seed N] [--count N] [--threads N] [--repro-dir DIR]
//           [--no-shrink] [--json FILE] [--bug NAME]
//   depfuzz --replay FILE [--shrink]
//
// Campaign mode generates `count` kernels from `seed`, cross-checks
// every access pair against the fast partitioned suite, the
// Fourier-Motzkin baseline, and brute-force enumeration (plus sampled
// interpreter runs), shrinks every discrepancy to a locally minimal
// kernel, and writes one repro file per finding when --repro-dir is
// set. Exit status 0 means a clean campaign.
//
// Replay mode re-runs all deciders on a repro file produced by a
// previous campaign (or any fuzz-kernel-shaped program with `! pdt-fuzz`
// metadata comments); --shrink reduces it further in-process.
//
// All PDT_FUZZ_* environment knobs apply; explicit flags win. When
// PDT_FAULT_INJECT is set, campaign mode switches to the single-thread
// fault-injection self-check: the injected fault must surface as a
// DegradedResult discrepancy and shrink like any other finding.
//
// --bug plants a deliberate harness bug (force-independent | drop-lt)
// in the fast suite's reported result; the campaign must then fail.
// This validates the fuzzer itself, never real analysis code.
//
//===----------------------------------------------------------------------===//

#include "driver/RunReport.h"
#include "fuzz/Fuzzer.h"
#include "fuzz/Repro.h"
#include "fuzz/Shrinker.h"
#include "support/BuildInfo.h"
#include "support/FaultInjector.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

using namespace pdt;

namespace {

int usage(const char *Argv0) {
  std::cerr << "usage: " << Argv0
            << " [--seed N] [--count N] [--threads N] [--repro-dir DIR]\n"
               "       [--no-shrink] [--json FILE] [--bug "
               "force-independent|drop-lt]\n"
            << "       " << Argv0 << " --replay FILE [--shrink]\n";
  return 2;
}

void printDiscrepancies(const std::vector<FuzzDiscrepancy> &Ds) {
  for (const FuzzDiscrepancy &D : Ds) {
    std::printf("  %s", fuzzDiscrepancyKindName(D.Kind));
    if (D.SrcAccess != ~0u)
      std::printf(" (pair %u->%u)", D.SrcAccess, D.SnkAccess);
    std::printf(": %s\n", D.Detail.c_str());
  }
}

int replay(const std::string &Path, bool Shrink) {
  std::optional<FuzzKernel> K = loadFuzzReproFile(Path);
  if (!K) {
    std::cerr << "depfuzz: cannot load repro " << Path << "\n";
    return 2;
  }
  FuzzCampaignConfig Config = fuzzCampaignConfigFromEnv();
  std::printf("replaying seed=%llu index=%llu stratum=%s\n",
              static_cast<unsigned long long>(K->Seed),
              static_cast<unsigned long long>(K->Index),
              fuzzStratumName(K->Stratum));
  FuzzKernelVerdict V = checkFuzzKernel(*K, Config.Check);
  if (!V.failed()) {
    std::printf("no discrepancy: %u pairs agree across all deciders\n",
                V.PairsChecked);
    return 0;
  }
  std::printf("%zu discrepanc%s:\n", V.Discrepancies.size(),
              V.Discrepancies.size() == 1 ? "y" : "ies");
  printDiscrepancies(V.Discrepancies);
  if (Shrink) {
    FuzzPredicate StillFails = [&](const FuzzKernel &C) {
      return checkFuzzKernel(C, Config.Check).failed();
    };
    FuzzShrinkResult R =
        shrinkFuzzKernel(*K, StillFails, Config.ShrinkMaxSteps);
    std::printf("shrunk in %u steps (%u reductions%s):\n%s", R.StepsTried,
                R.Reductions, R.Minimal ? "" : ", step budget hit",
                fuzzKernelToSource(R.Kernel).c_str());
  }
  return 1;
}

} // namespace

int main(int argc, char **argv) {
  FuzzCampaignConfig Config = fuzzCampaignConfigFromEnv();
  std::string JsonPath;
  std::string ReplayPath;
  bool ReplayMode = false;
  bool ReplayShrink = false;

  auto NumArg = [&](int &I, const char *Flag) -> uint64_t {
    if (I + 1 >= argc) {
      std::cerr << "depfuzz: " << Flag << " needs a value\n";
      std::exit(2);
    }
    return std::strtoull(argv[++I], nullptr, 10);
  };
  for (int I = 1; I != argc; ++I) {
    if (!std::strcmp(argv[I], "--version")) {
      std::printf("%s\n", buildInfoLine("depfuzz").c_str());
      return 0;
    }
    if (!std::strcmp(argv[I], "--seed"))
      Config.Seed = NumArg(I, "--seed");
    else if (!std::strcmp(argv[I], "--count"))
      Config.Count = NumArg(I, "--count");
    else if (!std::strcmp(argv[I], "--threads"))
      Config.NumThreads = static_cast<unsigned>(NumArg(I, "--threads"));
    else if (!std::strcmp(argv[I], "--repro-dir") && I + 1 < argc)
      Config.ReproDir = argv[++I];
    else if (!std::strcmp(argv[I], "--json") && I + 1 < argc)
      JsonPath = argv[++I];
    else if (!std::strcmp(argv[I], "--replay") && I + 1 < argc) {
      ReplayPath = argv[++I];
      ReplayMode = true;
    }
    else if (!std::strcmp(argv[I], "--no-shrink"))
      Config.Shrink = false;
    else if (!std::strcmp(argv[I], "--shrink"))
      ReplayShrink = true;
    else if (!std::strcmp(argv[I], "--bug") && I + 1 < argc) {
      std::string Name = argv[++I];
      if (Name == "force-independent")
        Config.Check.DeliberateBug = FuzzCheckConfig::Bug::ForceIndependent;
      else if (Name == "drop-lt")
        Config.Check.DeliberateBug = FuzzCheckConfig::Bug::DropLTDirection;
      else
        return usage(argv[0]);
    } else
      return usage(argv[0]);
  }

  if (ReplayMode)
    return replay(ReplayPath, ReplayShrink);

  // PDT_FAULT_INJECT switches to the self-check: prove the injected
  // fault is caught, classified, and shrinkable.
  if (const char *Spec = std::getenv("PDT_FAULT_INJECT")) {
    FaultInjector::disarm();
    std::printf("fault-injection self-check: %s over up to %llu kernels\n",
                Spec, static_cast<unsigned long long>(Config.Count));
    std::optional<FuzzFinding> F = runFaultInjectionSelfCheck(Config, Spec);
    if (!F) {
      std::cerr << "depfuzz: injected fault never surfaced (malformed spec "
                   "or site out of reach)\n";
      return 1;
    }
    std::printf("caught at kernel %llu; shrunk to %zu statement(s) in %u "
                "steps:\n%s",
                static_cast<unsigned long long>(F->Original.Index),
                F->Shrunk.Stmts.size(), F->ShrinkSteps,
                fuzzKernelToSource(F->Shrunk).c_str());
    printDiscrepancies(F->Discrepancies);
    if (!F->ReproPath.empty())
      std::printf("repro: %s\n", F->ReproPath.c_str());
    return 0;
  }

  RunReport::noteTool("depfuzz");
  RunReport::noteWorkload("seed", Config.Seed);
  RunReport::noteWorkload("kernels", Config.Count);
  FuzzCampaignReport Report = runFuzzCampaign(Config);
  RunReport::noteWallNs(static_cast<int64_t>(Report.ElapsedSec * 1e9));

  std::printf("checked %llu kernels (%llu pairs) in %.2f s: "
              "%llu discrepancies, %llu aborts, %llu exactness losses\n",
              static_cast<unsigned long long>(Report.KernelsChecked),
              static_cast<unsigned long long>(Report.PairsChecked),
              Report.ElapsedSec,
              static_cast<unsigned long long>(Report.Discrepancies),
              static_cast<unsigned long long>(Report.Aborts),
              static_cast<unsigned long long>(Report.ExactnessLosses));
  for (unsigned S = 0; S != NumFuzzStrata; ++S)
    std::printf("  %-16s %8llu kernels, %llu with ground truth\n",
                fuzzStratumName(static_cast<FuzzStratum>(S)),
                static_cast<unsigned long long>(Report.StratumKernels[S]),
                static_cast<unsigned long long>(Report.StratumGroundTruth[S]));
  if (Report.KernelsSkipped)
    std::printf("  %llu kernels skipped by the deadline\n",
                static_cast<unsigned long long>(Report.KernelsSkipped));
  for (const FuzzFinding &F : Report.Findings) {
    std::printf("finding at kernel %llu (%s), shrunk to %zu statement(s):\n",
                static_cast<unsigned long long>(F.Original.Index),
                fuzzStratumName(F.Original.Stratum), F.Shrunk.Stmts.size());
    printDiscrepancies(F.Discrepancies);
    if (!F.ReproPath.empty())
      std::printf("  repro: %s\n", F.ReproPath.c_str());
    else
      std::printf("%s", fuzzKernelToSource(F.Shrunk).c_str());
  }

  if (!JsonPath.empty()) {
    std::ofstream Json(JsonPath);
    Json << "{\n" << fuzzReportJson(Config, Report) << "\n}\n";
  }
  return Report.clean() ? 0 : 1;
}
