# Empty compiler generated dependencies file for pdt_transforms.
# This may be replaced when dependencies are built.
