//===- ir/PrettyPrinter.cpp - Render the IR back to source ----------------===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/PrettyPrinter.h"

#include "ir/AST.h"
#include "support/Casting.h"
#include "support/ErrorHandling.h"

using namespace pdt;

namespace {

/// Binding strength used to decide parenthesization.
enum Precedence { PrecAdd = 1, PrecMul = 2, PrecUnary = 3, PrecAtom = 4 };

Precedence precedenceOf(const Expr *E) {
  switch (E->getKind()) {
  case Expr::Kind::IntLiteral:
  case Expr::Kind::VarRef:
  case Expr::Kind::ArrayElement:
    return PrecAtom;
  case Expr::Kind::Unary:
    return PrecUnary;
  case Expr::Kind::Binary:
    switch (cast<BinaryExpr>(E)->getOpcode()) {
    case BinaryExpr::Opcode::Add:
    case BinaryExpr::Opcode::Sub:
      return PrecAdd;
    case BinaryExpr::Opcode::Mul:
    case BinaryExpr::Opcode::Div:
      return PrecMul;
    }
    pdt_unreachable("covered switch");
  }
  pdt_unreachable("covered switch");
}

std::string renderExpr(const Expr *E, Precedence Parent) {
  std::string S;
  switch (E->getKind()) {
  case Expr::Kind::IntLiteral:
    S = std::to_string(cast<IntLiteral>(E)->getValue());
    break;
  case Expr::Kind::VarRef:
    S = cast<VarRef>(E)->getName();
    break;
  case Expr::Kind::Unary:
    S = "-" + renderExpr(cast<UnaryExpr>(E)->getOperand(), PrecUnary);
    break;
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    const char *Op = nullptr;
    switch (B->getOpcode()) {
    case BinaryExpr::Opcode::Add:
      Op = " + ";
      break;
    case BinaryExpr::Opcode::Sub:
      Op = " - ";
      break;
    case BinaryExpr::Opcode::Mul:
      Op = "*";
      break;
    case BinaryExpr::Opcode::Div:
      Op = "/";
      break;
    }
    Precedence MyPrec = precedenceOf(E);
    // Right operand of - and / needs parens at equal precedence.
    S = renderExpr(B->getLHS(), MyPrec) + Op +
        renderExpr(B->getRHS(), static_cast<Precedence>(MyPrec + 1));
    break;
  }
  case Expr::Kind::ArrayElement: {
    const auto *A = cast<ArrayElement>(E);
    S = A->getArrayName() + "(";
    bool First = true;
    for (const Expr *Sub : A->getSubscripts()) {
      if (!First)
        S += ", ";
      First = false;
      S += renderExpr(Sub, PrecAdd);
    }
    S += ")";
    break;
  }
  }
  if (precedenceOf(E) < Parent)
    return "(" + S + ")";
  return S;
}

void renderStmt(const Stmt *S, unsigned Indent, std::string &Out) {
  std::string Pad(Indent * 2, ' ');
  switch (S->getKind()) {
  case Stmt::Kind::Assign: {
    const auto *A = cast<AssignStmt>(S);
    Out += Pad;
    if (A->isArrayAssign())
      Out += renderExpr(A->getArrayTarget(), PrecAdd);
    else
      Out += A->getScalarTarget();
    Out += " = ";
    Out += renderExpr(A->getValue(), PrecAdd);
    Out += "\n";
    return;
  }
  case Stmt::Kind::DoLoop: {
    const auto *L = cast<DoLoop>(S);
    Out += Pad + "do " + L->getIndexName() + " = " +
           renderExpr(L->getLower(), PrecAdd) + ", " +
           renderExpr(L->getUpper(), PrecAdd);
    // Suppress the default unit step for readability.
    const auto *StepLit = dyn_cast<IntLiteral>(L->getStep());
    if (!StepLit || StepLit->getValue() != 1)
      Out += ", " + renderExpr(L->getStep(), PrecAdd);
    Out += "\n";
    for (const Stmt *Child : L->getBody())
      renderStmt(Child, Indent + 1, Out);
    Out += Pad + "end do\n";
    return;
  }
  }
  pdt_unreachable("covered switch");
}

} // namespace

std::string pdt::exprToString(const Expr *E) { return renderExpr(E, PrecAdd); }

std::string pdt::stmtToString(const Stmt *S, unsigned Indent) {
  std::string Out;
  renderStmt(S, Indent, Out);
  return Out;
}

std::string pdt::programToString(const Program &P) {
  std::string Out;
  for (const Stmt *S : P.TopLevel)
    renderStmt(S, 0, Out);
  return Out;
}
