//===- support/Trace.h - Scoped spans as Chrome trace events ----*- C++ -*-===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Thread-aware scoped tracing for the analysis pipeline. Every
/// instrumented layer (DependenceGraph::build, the lowering cache, the
/// tester, the Delta test, Fourier-Motzkin, the thread-pool workers)
/// opens a pdt::Span over its work; when tracing is armed the spans
/// are buffered per thread and dumped as Chrome trace-event JSON
/// ("ph":"X" complete events), which chrome://tracing and Perfetto
/// load directly as a flame chart per thread.
///
/// Overhead policy (see DESIGN.md "Observability architecture"):
///
///   * compiled out (-DPDT_TRACING=OFF): Span is an empty no-op type
///     — zero atomics, zero branches in the hot loops; the
///     observability smoke test static_asserts the type is empty;
///   * compiled in, disarmed (the default): one relaxed atomic load
///     and a predictable not-taken branch per span;
///   * armed: two steady_clock reads and one uncontended thread-local
///     buffer append per span (< 5% on the x3 workload, enforced by
///     bench_x5_observability).
///
/// Arming is programmatic (Trace::start / Trace::stop, used by the
/// tests and benches) or via the environment: PDT_TRACE=out.json
/// writes the trace at process exit. Span names must be string
/// literals (they are stored, not copied).
///
/// Spans have two consumers behind one capture gate: the full
/// per-thread buffers here (every span kept, bounded only by the
/// PDT_TRACE_MAX_SPANS per-thread cap, drops counted) and the
/// flight recorder's fixed-size rings (support/FlightRecorder.h,
/// last-N spans at bounded memory). Either, both, or neither may be
/// armed; the Span fast path stays a single relaxed load.
///
//===----------------------------------------------------------------------===//

#ifndef PDT_SUPPORT_TRACE_H
#define PDT_SUPPORT_TRACE_H

#include <atomic>
#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

// Defined to 0 by the build when the PDT_TRACING CMake option is OFF;
// standalone compilation (no CMake) defaults to instrumented.
#ifndef PDT_TRACING
#define PDT_TRACING 1
#endif

namespace pdt {

/// One finished span, as recorded in a thread buffer and exposed to
/// tests through Trace::snapshot(). Times are nanoseconds since the
/// trace clock anchor. Kind is a small attribution tag (the core layer
/// stores its TestKind enumerator there, see support/Profile.h);
/// NoTag for structural spans that belong to no particular test. Req
/// is the RequestContext token of the serving request the span ran
/// under (support/RequestContext.h; 0 = none), resolved to the ID
/// string only at dump time — the JSON emits it as an "args.req" tag.
struct TraceEvent {
  static constexpr int16_t NoTag = -1;

  const char *Name = nullptr;
  const char *Category = nullptr;
  uint32_t Tid = 0;
  int16_t Kind = NoTag;
  uint32_t Req = 0;
  int64_t StartNs = 0;
  int64_t DurationNs = 0;
};

/// Global trace control. All members are static; the collector behind
/// them owns one buffer per thread that ever finished a span.
class Trace {
public:
  /// Capture-gate bits: which span consumers are armed.
  enum CaptureBit : unsigned {
    CaptureFull = 1u << 0,   ///< The full per-thread buffers (PDT_TRACE).
    CaptureFlight = 1u << 1, ///< The flight-recorder rings (PDT_FLIGHT).
  };

  /// True when the full trace buffers are recording.
  static bool enabled() {
    return (CaptureFlags.load(std::memory_order_relaxed) & CaptureFull) != 0;
  }

  /// True when any span consumer (full trace or flight recorder) is
  /// armed — the Span constructor's single gate.
  static bool capturing() {
    return CaptureFlags.load(std::memory_order_relaxed) != 0;
  }

  /// Arms or disarms one capture consumer. Used by the flight
  /// recorder; start()/stop() manage the CaptureFull bit.
  static void setCaptureBit(CaptureBit Bit, bool On);

  /// True when span instrumentation was compiled in (PDT_TRACING=ON).
  static constexpr bool compiledIn() { return PDT_TRACING != 0; }

  /// Starts recording; \p Path (may be empty) is where stop() and the
  /// process-exit hook write the JSON. Clears previously buffered
  /// events. No-op (returns false) when compiled out.
  static bool start(std::string Path);

  /// Stops recording and writes the JSON to the path given to start()
  /// (skipped when that path is empty). Returns false when the file
  /// could not be written.
  static bool stop();

  /// Drops every buffered event without writing.
  static void clear();

  /// All buffered events, merged across threads and sorted by
  /// (thread, start time, longest-first). Exposed for the nesting and
  /// layer-coverage tests.
  static std::vector<TraceEvent> snapshot();

  /// Renders \p Events as a Chrome trace-event JSON document.
  static std::string toJson(const std::vector<TraceEvent> &Events);

  /// Writes snapshot() to \p Path; false on I/O failure.
  static bool writeTo(const std::string &Path);

  /// Nanoseconds since the process-wide trace clock anchor.
  static int64_t nowNs();

  /// Per-thread span cap for the *full* buffers (the flight rings are
  /// bounded by construction). A thread that reaches the cap drops
  /// further spans and counts them; 0 restores the built-in default.
  /// Env-tunable via PDT_TRACE_MAX_SPANS.
  static void setMaxSpansPerThread(uint32_t Cap);
  static uint32_t maxSpansPerThread();

  /// Spans dropped by the per-thread cap since the last start().
  static uint64_t droppedSpans();

  /// Appends \p Events to \p Out as a comma-separated run of Chrome
  /// "ph":"X" complete-event objects plus per-thread thread_name
  /// metadata (no surrounding array). Shared by toJson and the flight
  /// recorder's dump so the two artifacts stay format-identical.
  static void appendEventsJson(std::string &Out,
                               const std::vector<TraceEvent> &Events);

  /// Arms tracing from PDT_TRACE and the span cap from
  /// PDT_TRACE_MAX_SPANS (hardened parsing: a present-but-empty value
  /// warns and stays disarmed). Called once automatically before main
  /// via a static initializer; exposed for tests.
  static void initFromEnvironment();

private:
#if PDT_TRACING
  // In the compiled-out build Span is an alias of NoopSpan, which a
  // friend *class* declaration would conflict with.
  friend class Span;
#endif
  static void record(const char *Name, const char *Category, int16_t Kind,
                     int64_t StartNs, int64_t EndNs);
  static std::atomic<unsigned> CaptureFlags;
};

/// The compiled-out span: constructing and destroying it is a no-op
/// the optimizer deletes entirely. Kept defined in every build so the
/// observability smoke test can static_assert its emptiness.
class NoopSpan {
public:
  explicit NoopSpan(const char *, const char * = nullptr, int = -1) {}
  NoopSpan(const NoopSpan &) = delete;
  NoopSpan &operator=(const NoopSpan &) = delete;
};
static_assert(std::is_empty_v<NoopSpan>,
              "the compiled-out span must stay an empty type: the "
              "tracing off-path is required to add no state (and no "
              "atomics) to the hot loops");

#if PDT_TRACING

/// RAII scope: records one complete event from construction to
/// destruction when tracing is armed. \p Name and \p Category must be
/// string literals. \p KindTag, when not NoTag, attributes the span to
/// a dependence test for the profiler (core passes its TestKind
/// enumerator cast to int; support deliberately stays ignorant of the
/// enum itself).
class Span {
public:
  explicit Span(const char *Name, const char *Category = "pdt",
                int KindTag = TraceEvent::NoTag) {
    if (Trace::capturing()) {
      this->Name = Name;
      this->Category = Category;
      Kind = static_cast<int16_t>(KindTag);
      StartNs = Trace::nowNs();
    }
  }
  ~Span() {
    if (Name)
      Trace::record(Name, Category, Kind, StartNs, Trace::nowNs());
  }
  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

private:
  const char *Name = nullptr;
  const char *Category = nullptr;
  int16_t Kind = TraceEvent::NoTag;
  int64_t StartNs = 0;
};

#else

using Span = NoopSpan;

#endif // PDT_TRACING

} // namespace pdt

#endif // PDT_SUPPORT_TRACE_H
