//===- core/ResultStore.cpp - Persistent dependence-result cache ----------===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/ResultStore.h"

#include "support/MathExtras.h"
#include "support/Metrics.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <mutex>

using namespace pdt;

bool pdt::resultStoreCompiledIn() {
#if PDT_PERSISTENT_STORE
  return true;
#else
  return false;
#endif
}

//===----------------------------------------------------------------------===//
// Canonicalization
//===----------------------------------------------------------------------===//

namespace {

/// Serializes \p E in canonical coordinates into \p Out:
/// "<const>" then "+%<level>*<coeff>" index terms (by level) and
/// "+$<slot>*<coeff>" symbol terms (by slot). The constant absorbs the
/// lower-bound shifts of every referenced index plus \p ExtraConst.
/// When \p AssignSlots, unseen symbols get the next slot; otherwise an
/// unseen symbol fails (hint dehydration must not invent slots the
/// lookup side cannot have). Returns false on any unmappable name or
/// overflow — the caller abandons the store for this pair/record.
bool serializeExpr(const LinearExpr &E, int64_t ExtraConst, bool AssignSlots,
                   const std::map<std::string, unsigned> &LevelOf,
                   CanonicalPair &C, std::string &Out) {
  int64_t Const = E.getConstant();
  std::vector<std::pair<unsigned, int64_t>> Idx;
  Idx.reserve(E.indexTerms().size());
  for (const auto &[Name, Coeff] : E.indexTerms()) {
    auto It = LevelOf.find(Name);
    if (It == LevelOf.end())
      return false;
    std::optional<int64_t> Scaled = checkedMul(Coeff, C.Shift[It->second]);
    if (!Scaled)
      return false;
    std::optional<int64_t> Sum = checkedAdd(Const, *Scaled);
    if (!Sum)
      return false;
    Const = *Sum;
    Idx.emplace_back(It->second, Coeff);
  }
  std::optional<int64_t> Final = checkedAdd(Const, ExtraConst);
  if (!Final)
    return false;
  Const = *Final;
  std::sort(Idx.begin(), Idx.end());

  std::vector<std::pair<unsigned, int64_t>> Sym;
  Sym.reserve(E.symbolTerms().size());
  for (const auto &[Name, Coeff] : E.symbolTerms()) {
    auto It = C.SymbolSlot.find(Name);
    unsigned Slot;
    if (It != C.SymbolSlot.end()) {
      Slot = It->second;
    } else if (AssignSlots) {
      Slot = static_cast<unsigned>(C.SlotSymbol.size());
      C.SymbolSlot.emplace(Name, Slot);
      C.SlotSymbol.push_back(Name);
    } else {
      return false;
    }
    Sym.emplace_back(Slot, Coeff);
  }
  std::sort(Sym.begin(), Sym.end());

  Out += std::to_string(Const);
  for (const auto &[Level, Coeff] : Idx) {
    Out += "+%";
    Out += std::to_string(Level);
    Out += '*';
    Out += std::to_string(Coeff);
  }
  for (const auto &[Slot, Coeff] : Sym) {
    Out += "+$";
    Out += std::to_string(Slot);
    Out += '*';
    Out += std::to_string(Coeff);
  }
  return true;
}

} // namespace

std::optional<CanonicalPair>
ResultStore::canonicalize(const std::vector<SubscriptPair> &Subscripts,
                          const LoopNestContext &Ctx) {
  CanonicalPair C;
  const std::vector<LoopBounds> &Loops = Ctx.loops();
  std::map<std::string, unsigned> LevelOf;
  C.LevelIndex.reserve(Loops.size());
  C.Shift.reserve(Loops.size());
  for (unsigned Level = 0; Level != Loops.size(); ++Level) {
    const LoopBounds &L = Loops[Level];
    if (!LevelOf.emplace(L.Index, Level).second)
      return std::nullopt; // Duplicate index name: refuse to rename.
    C.LevelIndex.push_back(L.Index);
    // Normalize only levels whose lower bound is a literal integer:
    // i := i" + L, which every serialized expression absorbs into its
    // constant.
    bool Shiftable = L.Affine && L.Lower.isPureConstant();
    C.Shift.push_back(Shiftable ? L.Lower.getConstant() : 0);
  }

  std::string Key;
  Key.reserve(128);
  for (const SubscriptPair &S : Subscripts) {
    if (!serializeExpr(S.Src, 0, true, LevelOf, C, Key))
      return std::nullopt;
    Key += '=';
    if (!serializeExpr(S.Dst, 0, true, LevelOf, C, Key))
      return std::nullopt;
    Key += '@';
    Key += std::to_string(S.Dim);
    Key += ';';
  }
  Key += '|';
  for (unsigned Level = 0; Level != Loops.size(); ++Level) {
    const LoopBounds &L = Loops[Level];
    Key += ':';
    if (L.Affine) {
      std::optional<int64_t> NegShift = checkedSub(0, C.Shift[Level]);
      if (!NegShift)
        return std::nullopt;
      if (!serializeExpr(L.Lower, *NegShift, true, LevelOf, C, Key))
        return std::nullopt;
      Key += ',';
      if (!serializeExpr(L.Upper, *NegShift, true, LevelOf, C, Key))
        return std::nullopt;
    } else {
      Key += '?';
    }
    Key += ',';
    Key += std::to_string(L.Step);
    Key += ';';
  }
  // Assumed ranges of exactly the symbols the content mentions, in
  // slot order. Unmentioned symbols cannot influence the result.
  Key += '|';
  const SymbolRangeMap &Ranges = Ctx.symbolRanges();
  for (unsigned Slot = 0; Slot != C.SlotSymbol.size(); ++Slot) {
    auto It = Ranges.find(C.SlotSymbol[Slot]);
    Key += It != Ranges.end() ? It->second.str() : std::string("?");
    Key += ';';
  }
  C.Key = std::move(Key);
  return C;
}

//===----------------------------------------------------------------------===//
// Value (de)hydration
//===----------------------------------------------------------------------===//

namespace {

// The serialized-value schema version; bumped on any layout change.
// Belt and braces under the store generation, which already embeds the
// analyzer version.
constexpr char ValueTag = 'r';

void serializeStats(const TestStats &S, std::string &Out) {
  auto Num = [&Out](uint64_t V) {
    Out += std::to_string(V);
    Out += ',';
  };
  for (uint64_t V : S.Applications)
    Num(V);
  for (uint64_t V : S.Independences)
    Num(V);
  Num(S.ReferencePairs);
  Num(S.IndependentPairs);
  for (uint64_t V : S.DimensionHistogram)
    Num(V);
  Num(S.SeparableSubscripts);
  Num(S.CoupledSubscripts);
  Num(S.NonlinearSubscripts);
  Num(S.ZIVSubscripts);
  Num(S.SIVSubscripts);
  Num(S.MIVSubscripts);
  Num(S.CoupledGroups);
  Num(S.GroupsWithResidualMIV);
  for (uint64_t V : S.DegradedByKind)
    Num(V);
  Num(S.DegradedResults);
  Num(S.FMBudgetHits);
}

/// Cursor over a serialized value. Every read checks bounds; Ok goes
/// false on the first malformed token and stays false.
struct Cursor {
  const std::string &Buf;
  size_t Pos = 0;
  bool Ok = true;

  explicit Cursor(const std::string &B) : Buf(B) {}

  bool atEnd() const { return Pos >= Buf.size(); }
  char peek() const { return atEnd() ? '\0' : Buf[Pos]; }

  bool eat(char C) {
    if (!Ok || atEnd() || Buf[Pos] != C)
      return Ok = false;
    ++Pos;
    return true;
  }

  int64_t num() {
    if (!Ok)
      return 0;
    size_t Start = Pos;
    if (!atEnd() && Buf[Pos] == '-')
      ++Pos;
    size_t DigitStart = Pos;
    while (!atEnd() && Buf[Pos] >= '0' && Buf[Pos] <= '9')
      ++Pos;
    if (Pos == DigitStart) {
      Ok = false;
      return 0;
    }
    errno = 0;
    char *End = nullptr;
    long long V = std::strtoll(Buf.c_str() + Start, &End, 10);
    if (errno == ERANGE || End != Buf.c_str() + Pos) {
      Ok = false;
      return 0;
    }
    return V;
  }

  uint64_t unum() {
    int64_t V = num();
    if (V < 0)
      Ok = false;
    return Ok ? static_cast<uint64_t>(V) : 0;
  }
};

bool parseStats(Cursor &C, TestStats &S) {
  auto Num = [&C](uint64_t &V) {
    V = C.unum();
    C.eat(',');
  };
  for (uint64_t &V : S.Applications)
    Num(V);
  for (uint64_t &V : S.Independences)
    Num(V);
  Num(S.ReferencePairs);
  Num(S.IndependentPairs);
  for (uint64_t &V : S.DimensionHistogram)
    Num(V);
  Num(S.SeparableSubscripts);
  Num(S.CoupledSubscripts);
  Num(S.NonlinearSubscripts);
  Num(S.ZIVSubscripts);
  Num(S.SIVSubscripts);
  Num(S.MIVSubscripts);
  Num(S.CoupledGroups);
  Num(S.GroupsWithResidualMIV);
  for (uint64_t &V : S.DegradedByKind)
    Num(V);
  Num(S.DegradedResults);
  Num(S.FMBudgetHits);
  return C.Ok;
}

/// A hint's symbolic crossing sum in canonical coordinates.
bool serializeSumExpr(const LinearExpr &E, int64_t Shift,
                      const std::map<std::string, unsigned> &LevelOf,
                      CanonicalPair &C, std::string &Out) {
  // Crossing sum i + i" shifts by -2L when the level shifts by L.
  std::optional<int64_t> Twice = checkedMul(Shift, -2);
  if (!Twice)
    return false;
  // Slots are frozen at canonicalize() time: the lookup side derives
  // the same slots from content alone, so dehydration must not extend
  // them.
  return serializeExpr(E, *Twice, false, LevelOf, C, Out);
}

std::optional<std::string> serializeValue(const CanonicalPair &C,
                                          const DependenceTestResult &R,
                                          const TestStats &Delta) {
  std::map<std::string, unsigned> LevelOf;
  for (unsigned Level = 0; Level != C.LevelIndex.size(); ++Level)
    LevelOf.emplace(C.LevelIndex[Level], Level);

  std::string V;
  V += ValueTag;
  V += std::to_string(static_cast<int>(R.TheVerdict));
  V += ',';
  V += std::to_string(static_cast<int>(R.DecidedBy));
  V += ',';
  V += R.Exact ? '1' : '0';
  V += ',';
  V += R.HasNonlinear ? '1' : '0';
  V += '|';
  for (const DependenceVector &Vec : R.Vectors) {
    for (DirectionSet D : Vec.Directions)
      V += static_cast<char>('0' + (D & 7));
    V += ':';
    for (const std::optional<int64_t> &Dist : Vec.Distances) {
      V += Dist ? std::to_string(*Dist) : std::string("?");
      V += ',';
    }
    V += '/';
  }
  V += '|';
  for (const TransformHint &H : R.Hints) {
    auto It = LevelOf.find(H.Index);
    if (It == LevelOf.end())
      return std::nullopt; // Hint mentions a name outside the nest.
    unsigned Level = It->second;
    int64_t Shift = C.Shift[Level];
    V += std::to_string(static_cast<int>(H.TheKind));
    V += ',';
    V += std::to_string(Level);
    V += ',';
    if (H.CrossingPoint) {
      // Crossing iteration p sits at p - L in canonical coordinates.
      std::optional<int64_t> Scaled =
          checkedMul(Shift, H.CrossingPoint->denominator());
      if (!Scaled)
        return std::nullopt;
      std::optional<int64_t> Num =
          checkedSub(H.CrossingPoint->numerator(), *Scaled);
      if (!Num)
        return std::nullopt;
      V += std::to_string(*Num);
      V += '/';
      V += std::to_string(H.CrossingPoint->denominator());
    } else {
      V += '-';
    }
    V += ',';
    if (H.SymbolicCrossingSum) {
      // serializeSumExpr never assigns slots, so the const_cast'd
      // CanonicalPair is not actually mutated.
      if (!serializeSumExpr(*H.SymbolicCrossingSum, Shift, LevelOf,
                            const_cast<CanonicalPair &>(C), V))
        return std::nullopt;
    } else {
      V += '-';
    }
    V += ';';
  }
  V += '|';
  serializeStats(Delta, V);
  return V;
}

/// Parses one canonical expression ("<c>" "+%l*a" "+$s*b" ...) and
/// rehydrates it with the querying context's names: level l becomes
/// Q.LevelIndex[l] with the level's shift folded back into the
/// constant, slot s becomes Q.SlotSymbol[s]. \p ExtraConst is added to
/// the constant (the hint-sum +2L reverse shift).
std::optional<LinearExpr> parseExpr(Cursor &C, const CanonicalPair &Q,
                                    int64_t ExtraConst) {
  int64_t Const = C.num();
  std::vector<std::pair<unsigned, int64_t>> Idx, Sym;
  while (C.Ok && C.peek() == '+') {
    C.eat('+');
    bool IsIndex = C.peek() == '%';
    if (!IsIndex && C.peek() != '$') {
      C.Ok = false;
      break;
    }
    ++C.Pos;
    uint64_t Ref = C.unum();
    C.eat('*');
    int64_t Coeff = C.num();
    if (!C.Ok)
      break;
    if (IsIndex) {
      if (Ref >= Q.LevelIndex.size())
        return std::nullopt;
      // Reverse the serialization-time shift absorption: the stored
      // constant includes +coeff*L for this level under *canonical*
      // coordinates; expressing the value over the querying nest's
      // original index subtracts coeff*L again.
      std::optional<int64_t> Scaled =
          checkedMul(Coeff, Q.Shift[static_cast<unsigned>(Ref)]);
      if (!Scaled)
        return std::nullopt;
      std::optional<int64_t> Sum = checkedSub(Const, *Scaled);
      if (!Sum)
        return std::nullopt;
      Const = *Sum;
      Idx.emplace_back(static_cast<unsigned>(Ref), Coeff);
    } else {
      if (Ref >= Q.SlotSymbol.size())
        return std::nullopt;
      Sym.emplace_back(static_cast<unsigned>(Ref), Coeff);
    }
  }
  if (!C.Ok)
    return std::nullopt;
  std::optional<int64_t> Final = checkedAdd(Const, ExtraConst);
  if (!Final)
    return std::nullopt;
  LinearExpr E(*Final);
  for (const auto &[Level, Coeff] : Idx)
    E = E + LinearExpr::index(Q.LevelIndex[Level], Coeff);
  for (const auto &[Slot, Coeff] : Sym)
    E = E + LinearExpr::symbol(Q.SlotSymbol[Slot], Coeff);
  return E;
}

std::optional<DependenceTestResult>
parseValue(const std::string &Buf, const CanonicalPair &Q, TestStats &Delta) {
  Cursor C(Buf);
  if (!C.eat(ValueTag))
    return std::nullopt;
  DependenceTestResult R;
  int64_t VerdictInt = C.num();
  C.eat(',');
  int64_t DecidedInt = C.num();
  C.eat(',');
  int64_t ExactInt = C.num();
  C.eat(',');
  int64_t NonlinearInt = C.num();
  C.eat('|');
  if (!C.Ok || VerdictInt < 0 || VerdictInt > 2 || DecidedInt < 0 ||
      DecidedInt >= static_cast<int64_t>(NumTestKinds))
    return std::nullopt;
  R.TheVerdict = static_cast<Verdict>(VerdictInt);
  R.DecidedBy = static_cast<TestKind>(DecidedInt);
  R.Exact = ExactInt != 0;
  R.HasNonlinear = NonlinearInt != 0;

  const unsigned Depth = Q.LevelIndex.size();
  while (C.Ok && C.peek() != '|') {
    DependenceVector Vec;
    while (C.Ok && C.peek() >= '0' && C.peek() <= '7') {
      Vec.Directions.push_back(static_cast<DirectionSet>(Buf[C.Pos] - '0'));
      ++C.Pos;
    }
    C.eat(':');
    while (C.Ok && C.peek() != '/') {
      if (C.peek() == '?') {
        ++C.Pos;
        Vec.Distances.emplace_back(std::nullopt);
      } else {
        Vec.Distances.emplace_back(C.num());
      }
      C.eat(',');
    }
    C.eat('/');
    if (!C.Ok || Vec.Directions.size() != Depth ||
        Vec.Distances.size() != Depth)
      return std::nullopt;
    R.Vectors.push_back(std::move(Vec));
  }
  C.eat('|');

  while (C.Ok && C.peek() != '|') {
    TransformHint H;
    int64_t KindInt = C.num();
    C.eat(',');
    uint64_t Level = C.unum();
    C.eat(',');
    if (!C.Ok || KindInt < 0 || KindInt > 2 || Level >= Depth)
      return std::nullopt;
    H.TheKind = static_cast<TransformHint::Kind>(KindInt);
    H.Index = Q.LevelIndex[static_cast<unsigned>(Level)];
    const int64_t Shift = Q.Shift[static_cast<unsigned>(Level)];
    if (C.peek() == '-' && C.Pos + 1 < Buf.size() && Buf[C.Pos + 1] == ',') {
      ++C.Pos; // No crossing point.
    } else {
      int64_t Num = C.num();
      C.eat('/');
      int64_t Den = C.num();
      if (!C.Ok || Den <= 0)
        return std::nullopt;
      // p = p_canonical + L; Rational arithmetic may overflow, which
      // must surface as a miss, not an exception.
      std::optional<int64_t> Scaled = checkedMul(Shift, Den);
      if (!Scaled)
        return std::nullopt;
      std::optional<int64_t> NewNum = checkedAdd(Num, *Scaled);
      if (!NewNum)
        return std::nullopt;
      try {
        H.CrossingPoint = Rational(*NewNum, Den);
      } catch (...) {
        return std::nullopt;
      }
    }
    C.eat(',');
    if (C.peek() == '-' && C.Pos + 1 < Buf.size() && Buf[C.Pos + 1] == ';') {
      ++C.Pos; // No symbolic sum.
    } else {
      std::optional<int64_t> Twice = checkedMul(Shift, 2);
      if (!Twice)
        return std::nullopt;
      std::optional<LinearExpr> Sum;
      try {
        Sum = parseExpr(C, Q, *Twice);
      } catch (...) {
        return std::nullopt;
      }
      if (!Sum)
        return std::nullopt;
      H.SymbolicCrossingSum = std::move(*Sum);
    }
    C.eat(';');
    if (!C.Ok)
      return std::nullopt;
    R.Hints.push_back(std::move(H));
  }
  C.eat('|');
  if (!parseStats(C, Delta))
    return std::nullopt;
  return R;
}

} // namespace

//===----------------------------------------------------------------------===//
// Process-wide activation
//===----------------------------------------------------------------------===//

namespace {

std::mutex ActiveMutex;
std::shared_ptr<ResultStore> &activeSlot() {
  static std::shared_ptr<ResultStore> Slot;
  return Slot;
}

thread_local unsigned BypassDepth = 0;

} // namespace

bool ResultStore::activate(const std::string &Dir,
                           const std::string &Generation) {
  if (!resultStoreCompiledIn())
    return false;
  std::unique_ptr<SegmentStore> Seg = SegmentStore::open(Dir, Generation);
  StoreRecoveryStats RS = Seg->recoveryStats();
  Metrics::count(Metric::StoreRecordsLoaded, RS.RecordsLoaded);
  Metrics::count(Metric::StoreCorruptRecords, RS.CorruptRecords);
  Metrics::count(Metric::StoreTornTails, RS.TornTails);
  Metrics::count(Metric::StoreStaleSegments, RS.StaleSegments);
  Metrics::count(Metric::StoreQuarantined, RS.Quarantined);
  Metrics::count(Metric::StoreRebuilds, RS.Rebuilds);
  std::shared_ptr<ResultStore> S(
      new ResultStore(std::move(Seg), Generation));
  std::lock_guard<std::mutex> Lock(ActiveMutex);
  activeSlot().swap(S); // Old store (if any) flushes on destruction.
  return true;
}

void ResultStore::deactivate() {
  std::lock_guard<std::mutex> Lock(ActiveMutex);
  activeSlot().reset();
}

std::shared_ptr<ResultStore> ResultStore::active() {
  if (!resultStoreCompiledIn() || BypassDepth != 0)
    return nullptr;
  std::lock_guard<std::mutex> Lock(ActiveMutex);
  return activeSlot();
}

StoreBypassGuard::StoreBypassGuard() { ++BypassDepth; }
StoreBypassGuard::~StoreBypassGuard() { --BypassDepth; }

//===----------------------------------------------------------------------===//
// Lookup / insert
//===----------------------------------------------------------------------===//

std::optional<DependenceTestResult> ResultStore::lookup(const CanonicalPair &Q,
                                                        TestStats *Stats) {
  std::optional<std::string> Raw = Segments->lookup(Q.Key);
  std::optional<DependenceTestResult> R;
  TestStats Delta;
  if (Raw) {
    R = parseValue(*Raw, Q, Delta);
    if (!R)
      // The record survived the checksum but does not parse or cannot
      // be rehydrated for this nest (e.g. a shifted crossing point
      // would overflow): serve a miss, never a guess.
      Metrics::count(Metric::StoreCorruptRecords);
  }
  if (!R) {
    Metrics::count(Metric::StoreMisses);
    if (Stats)
      ++Stats->StoreMisses;
    return std::nullopt;
  }
  Metrics::count(Metric::StoreHits);
  if (Stats) {
    ++Stats->StoreHits;
    // Replaying the original computation's counters makes a warm run's
    // statistics equal a cold run's exactly.
    Stats->merge(Delta);
  }
  return R;
}

void ResultStore::insert(const CanonicalPair &Q,
                         const DependenceTestResult &Result,
                         const TestStats &Delta) {
  // A degraded result reflects a (possibly transient) failure, not the
  // content; persisting it would poison every future run.
  if (Result.Degraded)
    return;
  std::optional<std::string> Value = serializeValue(Q, Result, Delta);
  if (!Value)
    return; // Undehydratable hints: skip, never persist approximations.
  bool WasBroken = Segments->broken();
  Segments->insert(Q.Key, *Value);
  Metrics::count(Metric::StoreInserts);
  if (!WasBroken && Segments->broken())
    Metrics::count(Metric::StoreWriteFailures);
}
