//===- examples/vectorize_kernels.cpp --------------------------------------===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//
//
// Domain example 4: PFC's reason for existing — layered vectorization.
// For each kernel of a suite (default livermore), run dependence
// analysis and the Allen-Kennedy planner, print the distribution plan
// (which statements become vector operations, which loops stay
// serial), and list the scalar replacement candidates the dependence
// distances expose.
//
// Usage: vectorize_kernels [suite]
//
//===----------------------------------------------------------------------===//

#include "driver/Analyzer.h"
#include "driver/Corpus.h"
#include "transforms/LocalityAdvisor.h"
#include "transforms/ScalarReplacement.h"
#include "transforms/Vectorizer.h"

#include <cstdio>
#include <string>

using namespace pdt;

int main(int argc, char **argv) {
  std::string Suite = argc > 1 ? argv[1] : "livermore";
  std::vector<const CorpusKernel *> Kernels = kernelsInSuite(Suite);
  if (Kernels.empty()) {
    std::fprintf(stderr, "unknown suite '%s'\n", Suite.c_str());
    return 1;
  }

  unsigned Vector = 0, Serial = 0;
  for (const CorpusKernel *K : Kernels) {
    AnalysisResult R = analyzeSource(K->Source, K->Name);
    if (!R.Parsed)
      continue;
    std::printf("=== %s ===\n", K->Name.c_str());
    for (const VectorizationPlan &Plan : planVectorization(R.Graph)) {
      std::fputs(planToString(Plan).c_str(), stdout);
      Vector += Plan.FullyVectorized;
      Serial += Plan.Sequentialized;
    }
    std::vector<ScalarReplacementCandidate> Candidates =
        findScalarReplacementCandidates(R.Graph);
    if (!Candidates.empty()) {
      std::printf("scalar replacement:\n%s",
                  scalarReplacementReport(R.Graph, Candidates).c_str());
    }
    std::vector<LocalityAdvice> Advice = adviseLocality(R.Graph);
    if (!Advice.empty())
      std::printf("locality:\n%s", localityReport(Advice).c_str());
    std::printf("\n");
  }
  std::printf("suite %s: %u statements fully vectorized, %u sequential\n",
              Suite.c_str(), Vector, Serial);
  return 0;
}
