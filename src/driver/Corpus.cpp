//===- driver/Corpus.cpp - Built-in kernel corpus -------------------------===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//

#include "driver/Corpus.h"

#include "support/JobGraph.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <deque>
#include <map>

using namespace pdt;

// Kernel sources. The input language has no conditionals or calls;
// kernels that use them in the original are modeled by their array
// access pattern, which is all dependence testing sees.

static const CorpusKernel CorpusTable[] = {
    //===------------------------------------------------------------------===//
    // linpack: vector ops and LU factorization column sweeps.
    //===------------------------------------------------------------------===//
    {"daxpy", "linpack", R"(
! y = a*x + y
do i = 1, n
  dy(i) = dy(i) + da*dx(i)
end do
)"},
    {"daxpy_stride", "linpack", R"(
! unrolled-by-4 daxpy tail pattern
do i = 1, n, 4
  dy(i) = dy(i) + da*dx(i)
  dy(i+1) = dy(i+1) + da*dx(i+1)
  dy(i+2) = dy(i+2) + da*dx(i+2)
  dy(i+3) = dy(i+3) + da*dx(i+3)
end do
)"},
    {"dscal", "linpack", R"(
do i = 1, n
  dx(i) = da*dx(i)
end do
)"},
    {"ddot", "linpack", R"(
dtemp = 0
do i = 1, n
  dtemp = dtemp + dx(i)*dy(i)
end do
)"},
    {"dgefa_update", "linpack", R"(
! rank-1 trailing update of LU factorization
do j = k+1, n
  t = a(k, j)
  do i = k+1, n
    a(i, j) = a(i, j) + t*a(i, k)
  end do
end do
)"},
    {"dgesl_back", "linpack", R"(
! back substitution sweep
do kb = 1, n
  k = n + 1 - kb
  b(k) = b(k)/a(k, k)
  t = b(k)
  do i = 1, k-1
    b(i) = b(i) - t*a(i, k)
  end do
end do
)"},
    {"dgefa_pivot_swap", "linpack", R"(
! row exchange after pivoting
do j = k, n
  t = a(l, j)
  a(l, j) = a(k, j)
  a(k, j) = t
end do
)"},
    {"dtrsl_lower", "linpack", R"(
! forward solve with a unit lower triangular matrix
do j = 1, n
  do i = j+1, n
    b(i) = b(i) - t(i, j)*b(j)
  end do
end do
)"},
    {"dmxpy", "linpack", R"(
! y = y + m*x, column-major
do j = 1, m
  do i = 1, n
    y(i) = y(i) + x(j)*a(i, j)
  end do
end do
)"},

    //===------------------------------------------------------------------===//
    // eispack: symmetric reductions with coupled subscripts.
    //===------------------------------------------------------------------===//
    {"tred2_sym", "eispack", R"(
! symmetric rank-2 update: coupled (i,j) and (j,i)
do j = 1, n
  do i = 1, j
    z(i, j) = z(i, j) - e(i)*d(j) - d(i)*e(j)
    z(j, i) = z(i, j)
  end do
end do
)"},
    {"tred1_accum", "eispack", R"(
do i = 1, n
  do j = 1, i-1
    e(j) = e(j) + a(i, j)*d(i)
    d(j) = a(i, j)
  end do
end do
)"},
    {"tql2_shift", "eispack", R"(
! eigenvector accumulation
do k = 1, n
  do j = 1, n
    h = z(k, j+1)
    z(k, j+1) = s*z(k, j) + c*h
    z(k, j) = c*z(k, j) - s*h
  end do
end do
)"},
    {"hqr_row", "eispack", R"(
do j = k, n
  p = h(k, j) + q*h(k+1, j)
  h(k, j) = h(k, j) - p*x
  h(k+1, j) = h(k+1, j) - p*y
end do
)"},
    {"hqr2_backsub", "eispack", R"(
! back substitution over the quasi-triangular matrix
do i = 1, en
  do j = i+1, en
    h(i, en) = h(i, en) + h(i, j)*h(j, en)
  end do
end do
)"},
    {"minfit_householder", "eispack", R"(
do j = 1, n
  s = 0
  do k = 1, m
    s = s + u(k, j)*u(k, i)
  end do
  do k = 1, m
    u(k, j) = u(k, j) + s*u(k, i)
  end do
end do
)"},
    {"balanc_swap", "eispack", R"(
! row/column exchange pattern: coupled RDIV subscripts
do i = 1, n
  do j = 1, n
    b(i, j) = a(j, i)
  end do
end do
)"},
    {"htridi_scale", "eispack", R"(
do i = 1, n
  do j = 1, i
    ar(i, j) = ar(i, j)/scale
    ai(i, j) = ai(i, j)/scale
  end do
end do
)"},
    {"svd_rotate", "eispack", R"(
! plane rotation applied to two columns
do i = 1, m
  y = u(i, j)
  z = u(i, j+1)
  u(i, j) = y*cs + z*sn
  u(i, j+1) = z*cs - y*sn
end do
)"},
    {"reduc_chol", "eispack", R"(
do j = 1, n
  do i = j, n
    x = a(i, j)
    do k = 1, j-1
      x = x - b(i, k)*a(j, k)
    end do
    a(i, j) = x
  end do
end do
)"},

    //===------------------------------------------------------------------===//
    // livermore: the Livermore Fortran Kernels access patterns.
    //===------------------------------------------------------------------===//
    {"lfk1_hydro", "livermore", R"(
do k = 1, n
  x(k) = q + y(k)*(r*z(k+10) + t*z(k+11))
end do
)"},
    {"lfk2_iccg", "livermore", R"(
do k = 1, n, 2
  x(k) = x(k) - x(k+1)*x(k+2)
end do
)"},
    {"lfk3_inner", "livermore", R"(
q = 0
do k = 1, n
  q = q + z(k)*x(k)
end do
)"},
    {"lfk5_tridiag", "livermore", R"(
! true recurrence: carried flow dependence distance 1
do i = 2, n
  x(i) = z(i)*(y(i) - x(i-1))
end do
)"},
    {"lfk6_recur", "livermore", R"(
do i = 2, n
  do k = 1, i-1
    w(i) = w(i) + b(i, k)*w(i-k)
  end do
end do
)"},
    {"lfk7_state", "livermore", R"(
do k = 1, n
  x(k) = u(k) + r*(z(k) + r*y(k)) + t*(u(k+3) + r*(u(k+2) + r*u(k+1)))
end do
)"},
    {"lfk8_adi", "livermore", R"(
do kx = 2, 3
  do ky = 2, n
    du1(ky) = u1(kx, ky+1) - u1(kx, ky-1)
    u1(kx+1, ky) = u1(kx-1, ky) + a11*du1(ky)
  end do
end do
)"},
    {"lfk11_partial_sum", "livermore", R"(
do k = 2, n
  x(k) = x(k-1) + y(k)
end do
)"},
    {"lfk12_first_diff", "livermore", R"(
do k = 1, n
  x(k) = y(k+1) - y(k)
end do
)"},
    {"lfk18_hydro2d", "livermore", R"(
do k = 2, kn
  do j = 2, jn
    za(j, k) = (zp(j-1, k+1) + zq(j-1, k+1) - zp(j-1, k) - zq(j-1, k))
    zb(j, k) = (zp(j-1, k) + zq(j-1, k) - zp(j, k) - zq(j, k))
  end do
end do
)"},
    {"lfk21_matmul", "livermore", R"(
do k = 1, 25
  do i = 1, 25
    do j = 1, n
      px(i, j) = px(i, j) + vy(i, k)*cx(k, j)
    end do
  end do
end do
)"},
    {"lfk4_banded", "livermore", R"(
! banded linear equations: strided exact SIV subscripts
do k = 7, 107, 50
  do i = 1, n
    xz(k) = xz(k) - x(k-i)*y(i)
  end do
end do
)"},
    {"lfk9_integrate", "livermore", R"(
do i = 1, n
  px(i, 1) = dm28*px(i, 13) + dm27*px(i, 12) + dm26*px(i, 11)
  px(i, 3) = px(i, 3) + px(i, 1)
end do
)"},
    {"lfk10_diff", "livermore", R"(
do i = 1, n
  br(i, 5) = px(i, 5) - br(i, 5)
  px(i, 5) = ar(i)
  br(i, 6) = px(i, 6) - br(i, 6)
  px(i, 6) = br(i, 5)
end do
)"},
    {"lfk13_pic2d", "livermore", R"(
! 2-D particle in cell: strided even/odd access
do ip = 1, n
  i1 = p(ip, 1)
  j1 = p(ip, 2)
  p(ip, 3) = p(ip, 3) + b(i1, j1)
  p(ip, 4) = p(ip, 4) + c(i1, j1)
end do
)"},
    {"lfk14_particle1d", "livermore", R"(
do k = 1, n
  vx(k) = vx(k) + ex(k)
  xx(k) = xx(k) + vx(k)
  ir(k) = xx(k)
  rx(k) = xx(k) - ir(k)
end do
)"},
    {"lfk16_monte", "livermore", R"(
! branchless core of the Monte Carlo search loop
do k = 1, n
  j2 = (n + n)*(m - 1) + k*2
  plan(k) = zone(j2 + 1)
  zone(k) = plan(k)*r
end do
)"},
    {"lfk23_implicit2d", "livermore", R"(
do j = 2, 6
  do k = 2, n
    qa = za(k, j+1)*zr(k, j) + za(k, j-1)*zb(k, j) + za(k+1, j) + za(k-1, j)
    za(k, j) = za(k, j) + s*(qa - za(k, j))
  end do
end do
)"},
    {"lfk24_minloc", "livermore", R"(
! findmin pattern: scalar carried dependence only
m = 1
do k = 2, n
  m = m + x(k) - x(m)
end do
)"},
    {"lfk22_skewed", "livermore", R"(
! wavefront after skewing: coupled subscripts from normalization
do j = 2, n
  do i = 2, m
    a(i, j) = a(i-1, j) + a(i, j-1)
  end do
end do
)"},

    //===------------------------------------------------------------------===//
    // spec: tomcatv/swim-style stencils.
    //===------------------------------------------------------------------===//
    {"tomcatv_weakzero", "spec", R"(
! the SPEC tomcatv pattern: the first column feeds every iteration
do i = 1, n
  y(i) = y(1) + dd*x(i)
end do
)"},
    {"tomcatv_mesh", "spec", R"(
do j = 2, n-1
  do i = 2, n-1
    xx(i, j) = x(i+1, j) - x(i-1, j)
    yx(i, j) = y(i+1, j) - y(i-1, j)
    xy(i, j) = x(i, j+1) - x(i, j-1)
    yy(i, j) = y(i, j+1) - y(i, j-1)
  end do
end do
)"},
    {"tomcatv_rhs", "spec", R"(
do j = 2, n-1
  do i = 2, n-1
    rx(i, j) = a(i, j)*pxx(i, j) + b(i, j)*qxx(i, j)
    ry(i, j) = a(i, j)*pyy(i, j) + b(i, j)*qyy(i, j)
  end do
end do
)"},
    {"swim_calc1", "spec", R"(
do j = 1, n
  do i = 1, m
    cu(i+1, j) = p5*(p(i+1, j) + p(i, j))*u(i+1, j)
    cv(i, j+1) = p5*(p(i, j+1) + p(i, j))*v(i, j+1)
    z(i+1, j+1) = (fsdx*(v(i+1, j+1) - v(i, j+1)))
    h(i, j) = p(i, j) + p25*(u(i+1, j)*u(i+1, j) + u(i, j)*u(i, j))
  end do
end do
)"},
    {"nasa7_gmtry", "spec", R"(
! Gaussian elimination sweep from the NASA7 kernels
do i = 2, ns
  do j = 1, i-1
    do k = 1, nw
      rmatrx(i, k) = rmatrx(i, k) - rmatrx(i, j)*rmatrx(j, k)
    end do
  end do
end do
)"},
    {"matrix300_mm", "spec", R"(
do j = 1, n
  do k = 1, n
    do i = 1, n
      c(i, j) = c(i, j) + a(i, k)*b(k, j)
    end do
  end do
end do
)"},

    //===------------------------------------------------------------------===//
    // riceps: application loops (wave/weather/seismic-like patterns).
    //===------------------------------------------------------------------===//
    {"wave_redblack", "riceps", R"(
! red-black relaxation: strided independent sweeps
do i = 2, n, 2
  v(i) = v(i-1) + v(i+1)
end do
)"},
    {"wave_strided", "riceps", R"(
do i = 1, n
  a(2*i) = b(i) + c(i)
  d(i) = a(2*i+1)
end do
)"},
    {"weather_shift", "riceps", R"(
do j = 1, m
  do i = 1, n
    q(i, j) = q(i, j+1) + dq(i)
  end do
end do
)"},
    {"seismic_conv", "riceps", R"(
do i = 1, n
  do j = 1, k
    out(i+j) = out(i+j) + sig(i)*flt(j)
  end do
end do
)"},
    {"adm_transpose", "riceps", R"(
do i = 1, n
  do j = 1, i-1
    t = a(i, j)
    a(i, j) = a(j, i)
    a(j, i) = t
  end do
end do
)"},
    {"boast_reflect", "riceps", R"(
! reflection with constant extent: weak-crossing at 101/2
do i = 1, 100
  a(i) = a(101-i) + b(i)
end do
)"},
    {"interp_stride", "riceps", R"(
! interpolation with mixed strides: exact SIV subscripts
do i = 1, 50
  f(2*i) = f(3*i+1) + g(i)
end do
)"},
    {"shallow_edge", "riceps", R"(
! boundary column feeds the sweep: weak-zero at the first iteration
do i = 1, 64
  e(i) = e(1) + de(i)
end do
)"},
    {"track_crossing", "riceps", R"(
! reversal: weak-crossing dependences about (n+1)/2
do i = 1, n
  a(i) = a(n-i+1) + b(i)
end do
)"},

    //===------------------------------------------------------------------===//
    // perfect: Perfect-club style kernels.
    //===------------------------------------------------------------------===//
    {"flo52_sweep", "perfect", R"(
do j = 2, jl
  do i = 2, il
    w(i, j) = w(i, j) + rfl*(fs(i, j) - fs(i-1, j))
  end do
end do
)"},
    {"qcd_link", "perfect", R"(
do i = 1, n
  u(i, 1) = u(i, 2)*g(i)
  u(i, 2) = u(i, 3)*g(i)
  u(i, 3) = u(i, 1)*g(i)
end do
)"},
    {"trfd_integrals", "perfect", R"(
! integral transformation: coupled triangular indexing
do mi = 1, morb
  do mj = 1, mi
    xrsiq(mi, mj) = xij(mi)*v(mj, mrs)
    xrsiq(mj, mi) = xij(mj)*v(mi, mrs)
  end do
end do
)"},
    {"dyfesm_stress", "perfect", R"(
do ne = 1, nelem
  do k = 1, 8
    xe(k, ne) = xe(k, ne) + dd*fe(k, ne)
  end do
end do
)"},
    {"mdg_pairs", "perfect", R"(
do i = 1, n
  do j = 1, n
    f(i, j) = x(i) - x(j)
    r(i, j) = f(i, j)*f(j, i)
  end do
end do
)"},
    {"ocean_fft_stride", "perfect", R"(
do i = 1, n
  do j = 1, m
    work(i + 2*n*j) = data(i + n*j)
  end do
end do
)"},
    {"spice_sparse", "perfect", R"(
! indirect addressing defeats the tests: nonlinear subscripts
do i = 1, n
  y(idx(i)) = y(idx(i)) + v(i)
end do
)"},
    {"bdna_induction", "perfect", R"(
! auxiliary induction variable, substituted by the analyzer
k = 0
do i = 1, n
  k = k + 2
  c(k) = c(k) + d(i)
end do
)"},

    //===------------------------------------------------------------------===//
    // paper: worked examples from the paper text.
    //===------------------------------------------------------------------===//
    {"paper_strong_siv", "paper", R"(
! classic strong SIV recurrence, distance 1
do i = 1, n
  a(i+1) = a(i) + b(i)
end do
)"},
    {"paper_weak_zero_first", "paper", R"(
! weak-zero SIV at the first iteration: peelable
do i = 1, n
  y(i) = y(1) + w(i)
end do
)"},
    {"paper_weak_crossing", "paper", R"(
! Callahan-Dongarra-Levine loop: all dependences cross (n+1)/2
do i = 1, n
  a(i) = a(n-i+1) + c(i)
end do
)"},
    {"paper_delta_coupled", "paper", R"(
! coupled group where subscript-by-subscript testing is imprecise but
! the Delta test proves independence: constraints i'=i+1 (dim 1) and
! i'=i-1 (dim 2) have an empty intersection
do i = 1, n
  a(i+1, i) = a(i, i+1) + b(i)
end do
)"},
    {"paper_delta_propagate", "paper", R"(
! distance constraint from the first (SIV) subscript reduces the
! second (MIV) subscript, yielding exact distance vectors
do i = 1, n
  do j = 1, n
    a(i+1, i+j) = a(i, i+j) + b(j)
  end do
end do
)"},
    {"paper_skewed_livermore", "paper", R"(
! simplified Livermore kernel from section 5.3: separable strong SIV
! subscripts give distance vectors (1,0) and (0,1)
do j = 1, n
  do i = 1, n
    a(i, j) = a(i-1, j) + a(i, j-1)
  end do
end do
)"},
    {"paper_rdiv_transpose", "paper", R"(
! coupled RDIV pair: distance vectors (d, -d), directions (<,>)/(=,=)
do i = 1, n
  do j = 1, n
    a(i, j) = a(j, i) + b(i, j)
  end do
end do
)"},
    {"paper_gcd_stride", "paper", R"(
! GCD disproves dependence: 2i vs 2i'+1 never meet
do i = 1, n
  a(2*i) = a(2*i+1) + b(i)
end do
)"},
    {"paper_triangular", "paper", R"(
! triangular nest: index ranges come from the outer loop's bound
do i = 1, n
  do j = 1, i
    a(i, j) = a(j, j) + b(i)
  end do
end do
)"},
    {"paper_weak_zero_last", "paper", R"(
! weak-zero SIV at the last iteration (tomcatv-like): peelable
do i = 1, n
  y(i) = y(n) + w(i)
end do
)"},
    {"paper_exact_siv", "paper", R"(
! general exact SIV: 2i vs 4i'+1 has no solution by parity
do i = 1, 100
  a(2*i) = a(4*i+1) + b(i)
end do
)"},
    {"paper_symbolic_ziv", "paper", R"(
! symbolic ZIV: n+1 != n for every n
do i = 1, m
  a(n) = a(n+1) + b(i)
end do
)"},
};

const std::vector<CorpusKernel> &pdt::corpus() {
  static const std::vector<CorpusKernel> Kernels(std::begin(CorpusTable),
                                                 std::end(CorpusTable));
  return Kernels;
}

std::vector<std::string> pdt::suiteNames() {
  std::vector<std::string> Names;
  for (const CorpusKernel &K : corpus())
    if (Names.empty() || Names.back() != K.Suite)
      Names.push_back(K.Suite);
  return Names;
}

std::vector<const CorpusKernel *>
pdt::kernelsInSuite(const std::string &Suite) {
  std::vector<const CorpusKernel *> Result;
  for (const CorpusKernel &K : corpus())
    if (K.Suite == Suite)
      Result.push_back(&K);
  return Result;
}

const CorpusKernel *pdt::findKernel(const std::string &Name) {
  for (const CorpusKernel &K : corpus())
    if (K.Name == Name)
      return &K;
  return nullptr;
}

std::vector<CorpusSweepEntry> pdt::sweepCorpus(const AnalyzerOptions &Options,
                                               unsigned NumThreads) {
  const std::vector<CorpusKernel> &Kernels = corpus();
  std::vector<CorpusSweepEntry> Entries(Kernels.size());
  AnalyzerOptions PerKernel = Options;
  PerKernel.NumThreads = 1;

  unsigned Workers = ThreadPool::resolveThreadCount(NumThreads);
  Workers = std::min<unsigned>(
      Workers, static_cast<unsigned>(std::max<size_t>(Kernels.size(), 1)));
  ThreadPool Pool(Workers);
  JobGraph Graph;
  std::deque<ParseResult> Parsed(Kernels.size());
  for (size_t I = 0; I != Kernels.size(); ++I) {
    Entries[I].Kernel = &Kernels[I];
    JobGraph::JobId ParseJob = Graph.add(
        [&Parsed, &Kernels, I] {
          Parsed[I] = parseProgram(Kernels[I].Source, Kernels[I].Name);
        });
    Graph.add(
        [&Parsed, &Entries, &PerKernel, I] {
          ParseResult &P = Parsed[I];
          if (!P.succeeded()) {
            Entries[I].Result.Diagnostics = std::move(P.Diagnostics);
            return;
          }
          Entries[I].Result = analyzeProgram(std::move(*P.Prog), PerKernel);
        },
        {ParseJob});
  }
  Graph.run(Pool);
  return Entries;
}
