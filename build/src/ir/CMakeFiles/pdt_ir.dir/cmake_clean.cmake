file(REMOVE_RECURSE
  "CMakeFiles/pdt_ir.dir/AST.cpp.o"
  "CMakeFiles/pdt_ir.dir/AST.cpp.o.d"
  "CMakeFiles/pdt_ir.dir/AccessCollector.cpp.o"
  "CMakeFiles/pdt_ir.dir/AccessCollector.cpp.o.d"
  "CMakeFiles/pdt_ir.dir/LinearExpr.cpp.o"
  "CMakeFiles/pdt_ir.dir/LinearExpr.cpp.o.d"
  "CMakeFiles/pdt_ir.dir/PrettyPrinter.cpp.o"
  "CMakeFiles/pdt_ir.dir/PrettyPrinter.cpp.o.d"
  "libpdt_ir.a"
  "libpdt_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdt_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
