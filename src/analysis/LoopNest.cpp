//===- analysis/LoopNest.cpp - Analyzed loop-nest context -----------------===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/LoopNest.h"

#include "ir/AST.h"
#include "support/Failure.h"

#include <cassert>

using namespace pdt;

Interval pdt::evaluateLinear(const LinearExpr &E,
                             const std::map<std::string, Interval> &IndexRanges,
                             const SymbolRangeMap &Symbols) {
  Interval Result = Interval::point(E.getConstant());
  for (const auto &[Name, Coeff] : E.indexTerms()) {
    auto It = IndexRanges.find(Name);
    Interval R = It == IndexRanges.end() ? Interval::full() : It->second;
    Result = Result + R.scale(Coeff);
  }
  for (const auto &[Name, Coeff] : E.symbolTerms()) {
    auto It = Symbols.find(Name);
    Interval R = It == Symbols.end() ? Interval::full() : It->second;
    Result = Result + R.scale(Coeff);
  }
  return Result;
}

LoopNestContext::LoopNestContext(const std::vector<const DoLoop *> &TheLoops,
                                 SymbolRangeMap Symbols)
    : Symbols(std::move(Symbols)) {
  // Outer indices are legal in inner bounds, so accumulate the index
  // set as we walk outside-in.
  std::set<std::string> OuterIndices;
  for (const DoLoop *L : TheLoops) {
    LoopBounds B;
    B.Index = L->getIndexName();
    std::optional<LinearExpr> Lower, Upper, Step;
    try {
      Lower = buildLinearExpr(L->getLower(), OuterIndices);
      Upper = buildLinearExpr(L->getUpper(), OuterIndices);
      Step = buildLinearExpr(L->getStep(), OuterIndices);
    } catch (const AnalysisError &) {
      // Overflow while folding a bound expression: the loop becomes
      // non-affine (an unbounded variable), which every test already
      // handles conservatively.
      Lower.reset();
    }
    if (Lower && Upper && Step && Step->isPureConstant() &&
        Step->getConstant() != 0) {
      B.Lower = *Lower;
      B.Upper = *Upper;
      B.Step = Step->getConstant();
    } else {
      B.Affine = false;
    }
    OuterIndices.insert(B.Index);
    Loops.push_back(std::move(B));
  }
  computeIndexRanges();
}

LoopNestContext::LoopNestContext(std::vector<LoopBounds> TheLoops,
                                 SymbolRangeMap TheSymbols)
    : Loops(std::move(TheLoops)), Symbols(std::move(TheSymbols)) {
  computeIndexRanges();
}

void LoopNestContext::computeIndexRanges() {
  // Paper section 4.3: evaluate the loop bounds from the outermost
  // loop inward, substituting the ranges already computed for outer
  // indices. The result is the maximal range of each index, which is
  // all the SIV tests need even for trapezoidal nests.
  for (const LoopBounds &B : Loops) {
    if (!B.Affine) {
      IndexRanges[B.Index] = Interval::full();
      continue;
    }
    Interval LowerRange = evaluateLinear(B.Lower, IndexRanges, Symbols);
    Interval UpperRange = evaluateLinear(B.Upper, IndexRanges, Symbols);
    Interval Range(LowerRange.lower(), UpperRange.upper());
    if (B.Step < 0) {
      // A downward loop runs from Lower down to Upper in Fortran "do
      // i = L, U, S" notation with S < 0; the value range endpoints
      // swap roles.
      Range = Interval(UpperRange.lower(), LowerRange.upper());
    }
    IndexRanges[B.Index] = Range;
  }
}

std::optional<unsigned>
LoopNestContext::levelOf(const std::string &Name) const {
  for (unsigned I = 0, E = Loops.size(); I != E; ++I)
    if (Loops[I].Index == Name)
      return I;
  return std::nullopt;
}

Interval LoopNestContext::indexRange(const std::string &Name) const {
  auto It = IndexRanges.find(Name);
  return It == IndexRanges.end() ? Interval::full() : It->second;
}

Interval LoopNestContext::distanceRange(const std::string &Name) const {
  Interval R = indexRange(Name);
  if (!R.isFinite())
    return Interval(0, std::nullopt);
  if (R.isEmpty())
    return Interval::empty();
  int64_t Extent = *R.upper() - *R.lower();
  return Interval(0, Extent);
}

Interval LoopNestContext::evaluate(const LinearExpr &E) const {
  return evaluateLinear(E, IndexRanges, Symbols);
}

std::set<std::string> LoopNestContext::indexNameSet() const {
  std::set<std::string> Names;
  for (const LoopBounds &B : Loops)
    Names.insert(B.Index);
  return Names;
}
