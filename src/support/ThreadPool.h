//===- support/ThreadPool.h - Work-stealing thread pool ---------*- C++ -*-===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small work-stealing thread pool for data-parallel loops. The
/// dependence-graph builder fans the all-pairs testing loop out over
/// it. Each worker owns a deque of index chunks; a worker drains its
/// own deque from the front and steals from the back of its siblings
/// when it runs dry, so uneven pair costs (a ZIV pair is orders of
/// magnitude cheaper than a coupled MIV group) balance without a
/// central queue bottleneck.
///
/// The calling thread participates as worker 0, so a pool of size 1
/// spawns no threads at all and parallelFor degenerates to a plain
/// serial loop.
///
//===----------------------------------------------------------------------===//

#ifndef PDT_SUPPORT_THREADPOOL_H
#define PDT_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace pdt {

class ThreadPool {
public:
  /// Creates a pool of \p NumThreads workers (including the caller);
  /// 0 means defaultThreadCount(). Spawns NumThreads - 1 helper
  /// threads.
  explicit ThreadPool(unsigned NumThreads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned numWorkers() const { return NumWorkers; }

  /// Runs Fn(Index, Worker) for every Index in [0, NumItems) and
  /// blocks until all calls return. Worker ids are in
  /// [0, numWorkers()); the calling thread participates as worker 0.
  /// Distinct indices may run concurrently; Fn must only write state
  /// that is private per index or per worker. Not reentrant.
  ///
  /// Exceptions thrown by Fn never escape a helper thread (which would
  /// terminate the process): each item runs under its own handler, the
  /// remaining items still execute, and the first captured exception
  /// is rethrown on the calling thread after the loop drains. The pool
  /// stays usable for subsequent parallelFor calls.
  void parallelFor(size_t NumItems,
                   const std::function<void(size_t, unsigned)> &Fn);

  /// The PDT_THREADS environment variable when set to a positive
  /// integer, otherwise std::thread::hardware_concurrency (minimum 1).
  static unsigned defaultThreadCount();

  /// The single "0 means auto" policy point: \p Requested when
  /// non-zero, otherwise defaultThreadCount(). Every layer that
  /// accepts a NumThreads knob resolves it through here instead of
  /// re-implementing the fallback.
  static unsigned resolveThreadCount(unsigned Requested) {
    return Requested ? Requested : defaultThreadCount();
  }

private:
  /// One worker's chunk deque. Chunks are half-open index ranges.
  struct Shard {
    std::deque<std::pair<size_t, size_t>> Chunks;
    std::mutex M;
  };

  void helperLoop(unsigned Worker);
  /// Drains the worker's own shard, then steals; returns when every
  /// shard scans empty.
  void runWorker(unsigned Worker, const std::function<void(size_t, unsigned)> &Fn);

  unsigned NumWorkers = 1;
  std::vector<std::unique_ptr<Shard>> Shards;
  std::vector<std::thread> Helpers;

  std::mutex M;
  std::condition_variable WorkCV;
  std::condition_variable DoneCV;
  std::function<void(size_t, unsigned)> Job;
  /// First exception a job item threw in the current parallelFor;
  /// rethrown on the caller once the loop drains.
  std::exception_ptr FirstError;
  /// Items not yet completed in the current parallelFor.
  size_t Remaining = 0;
  /// Bumped once per parallelFor so helpers notice new work.
  uint64_t Generation = 0;
  bool Stopping = false;
};

} // namespace pdt

#endif // PDT_SUPPORT_THREADPOOL_H
