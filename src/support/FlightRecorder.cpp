//===- support/FlightRecorder.cpp - Bounded last-N span rings -------------===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/FlightRecorder.h"

#include "support/BuildInfo.h"
#include "support/CrashSafety.h"
#include "support/EventLog.h"
#include "support/Metrics.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>

using namespace pdt;

namespace {

/// Parses the bytes component of a PDT_FLIGHT spec: decimal digits
/// with an optional k/K (KiB) or m/M (MiB) suffix.
bool parseBytes(const std::string &S, size_t &Out) {
  if (S.empty())
    return false;
  size_t Mult = 1;
  std::string Digits = S;
  char Last = Digits.back();
  if (Last == 'k' || Last == 'K')
    Mult = 1024, Digits.pop_back();
  else if (Last == 'm' || Last == 'M')
    Mult = 1024 * 1024, Digits.pop_back();
  if (Digits.empty() || Digits.size() > 12)
    return false;
  size_t Value = 0;
  for (char C : Digits) {
    if (!std::isdigit(static_cast<unsigned char>(C)))
      return false;
    Value = Value * 10 + static_cast<size_t>(C - '0');
  }
  Value *= Mult;
  // At least one slot beyond any sane span, at most 1 GiB per thread.
  if (Value < sizeof(TraceEvent) || Value > (size_t(1) << 30))
    return false;
  Out = Value;
  return true;
}

bool parseSpecImpl(const std::string &Spec, bool &On, size_t &BytesPerThread,
                   std::string &DumpPath) {
  // Split on commas: "on[,bytes[,path]]" or "off".
  std::vector<std::string> Parts;
  size_t Pos = 0;
  while (true) {
    size_t Comma = Spec.find(',', Pos);
    Parts.push_back(Spec.substr(Pos, Comma - Pos));
    if (Comma == std::string::npos)
      break;
    Pos = Comma + 1;
  }
  if (Parts.empty() || Parts.size() > 3)
    return false;
  if (Parts[0] == "off")
    return Parts.size() == 1 ? (On = false, true) : false;
  if (Parts[0] != "on")
    return false;
  size_t Bytes = 0;
  if (Parts.size() >= 2 && !parseBytes(Parts[1], Bytes))
    return false;
  if (Parts.size() == 3 && Parts[2].empty())
    return false;
  On = true;
  if (Bytes)
    BytesPerThread = Bytes;
  if (Parts.size() == 3)
    DumpPath = Parts[2];
  return true;
}

} // namespace

#if PDT_TRACING

namespace {

/// One thread's ring. Single writer (the owning thread): store the
/// slot, then publish Count with release. Count is monotonic and
/// never wrapped — slot index is Count % Slots.size().
struct FlightRing {
  std::vector<TraceEvent> Slots;
  std::atomic<uint64_t> Count{0};
  uint32_t Tid = 0;
};

struct FlightState {
  std::mutex M;
  std::vector<std::shared_ptr<FlightRing>> Rings;
  size_t SlotsPerThread = FlightRecorder::DefaultBytesPerThread /
                          sizeof(TraceEvent);
  std::string DumpPath = "pdt-flight.json";
  std::atomic<bool> Enabled{false};
  // Bumped by start(): retires every thread's cached ring so capacity
  // changes take effect and old events vanish.
  std::atomic<uint64_t> Generation{0};
};

FlightState &state() {
  // Immortal like the trace collector: the crash-dump hook may run
  // after static destruction began.
  static FlightState *S = new FlightState;
  return *S;
}

std::shared_ptr<FlightRing> registerRing() {
  FlightState &S = state();
  auto Ring = std::make_shared<FlightRing>();
  std::lock_guard<std::mutex> Lock(S.M);
  Ring->Slots.resize(S.SlotsPerThread);
  Ring->Tid = static_cast<uint32_t>(S.Rings.size());
  S.Rings.push_back(Ring);
  return Ring;
}

struct ThreadRingRef {
  std::shared_ptr<FlightRing> Ring;
  uint64_t Generation = ~uint64_t(0);
};

ThreadRingRef &threadRing() {
  thread_local ThreadRingRef Ref;
  return Ref;
}

} // namespace

bool FlightRecorder::enabled() {
  return state().Enabled.load(std::memory_order_relaxed);
}

bool FlightRecorder::start(size_t BytesPerThread, std::string DumpPath) {
  FlightState &S = state();
  {
    std::lock_guard<std::mutex> Lock(S.M);
    S.Rings.clear();
    size_t Slots = BytesPerThread / sizeof(TraceEvent);
    S.SlotsPerThread = Slots < 64 ? 64 : Slots;
    if (!DumpPath.empty())
      S.DumpPath = std::move(DumpPath);
  }
  S.Generation.fetch_add(1, std::memory_order_release);
  // Anchor the span clock before the first ring write can observe it.
  Trace::nowNs();
  S.Enabled.store(true, std::memory_order_relaxed);
  Trace::setCaptureBit(Trace::CaptureFlight, true);
  return true;
}

void FlightRecorder::stop() {
  Trace::setCaptureBit(Trace::CaptureFlight, false);
  state().Enabled.store(false, std::memory_order_relaxed);
}

void FlightRecorder::record(const TraceEvent &E) {
  FlightState &S = state();
  if (!S.Enabled.load(std::memory_order_relaxed))
    return;
  ThreadRingRef &Ref = threadRing();
  uint64_t Gen = S.Generation.load(std::memory_order_acquire);
  if (!Ref.Ring || Ref.Generation != Gen) {
    Ref.Ring = registerRing();
    Ref.Generation = Gen;
  }
  FlightRing &Ring = *Ref.Ring;
  uint64_t N = Ring.Count.load(std::memory_order_relaxed);
  TraceEvent Slot = E;
  Slot.Tid = Ring.Tid;
  Ring.Slots[N % Ring.Slots.size()] = Slot;
  Ring.Count.store(N + 1, std::memory_order_release);
}

std::vector<TraceEvent> FlightRecorder::snapshot() {
  FlightState &S = state();
  std::vector<TraceEvent> All;
  std::vector<std::shared_ptr<FlightRing>> Rings;
  {
    std::lock_guard<std::mutex> Lock(S.M);
    Rings = S.Rings;
  }
  for (const std::shared_ptr<FlightRing> &Ring : Rings) {
    const uint64_t Cap = Ring->Slots.size();
    uint64_t End = Ring->Count.load(std::memory_order_acquire);
    uint64_t Begin = End > Cap ? End - Cap : 0;
    std::vector<std::pair<uint64_t, TraceEvent>> Window;
    Window.reserve(End - Begin);
    for (uint64_t I = Begin; I != End; ++I)
      Window.emplace_back(I, Ring->Slots[I % Cap]);
    // Writers kept running during the copy: any slot whose index the
    // writer could have reused — published overwrites up to End2, plus
    // the one unpublished write of index End2 that may be in flight —
    // must be discarded, or we could return a torn event.
    uint64_t End2 = Ring->Count.load(std::memory_order_acquire);
    uint64_t FirstSafe = End2 >= Cap ? End2 - Cap + 1 : 0;
    for (const auto &[Index, Event] : Window)
      if (Index >= FirstSafe)
        All.push_back(Event);
  }
  std::sort(All.begin(), All.end(),
            [](const TraceEvent &A, const TraceEvent &B) {
              if (A.Tid != B.Tid)
                return A.Tid < B.Tid;
              if (A.StartNs != B.StartNs)
                return A.StartNs < B.StartNs;
              return A.DurationNs > B.DurationNs;
            });
  return All;
}

FlightRecorder::Stats FlightRecorder::stats() {
  FlightState &S = state();
  Stats Out;
  std::lock_guard<std::mutex> Lock(S.M);
  Out.SlotsPerThread = static_cast<uint32_t>(S.SlotsPerThread);
  Out.Threads = static_cast<uint32_t>(S.Rings.size());
  for (const std::shared_ptr<FlightRing> &Ring : S.Rings) {
    uint64_t Count = Ring->Count.load(std::memory_order_relaxed);
    uint64_t Cap = Ring->Slots.size();
    Out.Recorded += Count;
    Out.Overwritten += Count > Cap ? Count - Cap : 0;
    Out.BytesInUse += Cap * sizeof(TraceEvent);
  }
  return Out;
}

std::string FlightRecorder::toJson(const char *Reason) {
  std::vector<TraceEvent> Events = snapshot();
  Stats S = stats();
  std::string Out;
  Out.reserve(Events.size() * 96 + 512);
  Out += "{\n\"displayTimeUnit\": \"ns\",\n";
  Out += "\"flightRecorder\": {\"reason\": \"";
  Out += Reason ? Reason : "on-demand";
  Out += "\", \"recorded\": " + std::to_string(S.Recorded);
  Out += ", \"overwritten\": " + std::to_string(S.Overwritten);
  Out += ", \"threads\": " + std::to_string(S.Threads);
  Out += ", \"slots_per_thread\": " + std::to_string(S.SlotsPerThread);
  Out += ", \"bytes_in_use\": " + std::to_string(S.BytesInUse);
  Out += ", \"build\": " + buildInfoJson();
  Out += "},\n\"traceEvents\": [\n";
  Trace::appendEventsJson(Out, Events);
  Out += "\n]\n}\n";
  return Out;
}

bool FlightRecorder::dump(const std::string &Path, const char *Reason) {
  std::ofstream File(Path);
  if (!File)
    return false;
  File << toJson(Reason);
  File.flush();
  if (!File.good())
    return false;
  Metrics::count(Metric::FlightDumps);
  return true;
}

bool FlightRecorder::postmortem(const char *Reason) {
  std::string Path = dumpPath();
  bool Ok = dump(Path, Reason);
  EventLog::event(EventSeverity::Error, "monitor", "flight-dump",
                  std::string(Reason ? Reason : "postmortem") +
                      (Ok ? " -> " + Path : " (write failed)"));
  return Ok;
}

std::string FlightRecorder::dumpPath() {
  FlightState &S = state();
  std::lock_guard<std::mutex> Lock(S.M);
  return S.DumpPath;
}

#endif // PDT_TRACING

bool FlightRecorder::parseSpec(const std::string &Spec, bool &On,
                               size_t &BytesPerThread,
                               std::string &DumpPath) {
  return parseSpecImpl(Spec, On, BytesPerThread, DumpPath);
}

void FlightRecorder::initFromEnvironment() {
  static bool Done = false;
  if (Done)
    return;
  Done = true;
  const char *Spec = std::getenv("PDT_FLIGHT");
  if (!Spec || !*Spec)
    return;
  bool On = false;
  size_t Bytes = DefaultBytesPerThread;
  std::string Path;
  if (!parseSpec(Spec, On, Bytes, Path)) {
    std::fprintf(stderr,
                 "pdt: warning: malformed PDT_FLIGHT value '%s' "
                 "(expected on[,bytes[,path]] or off); flight recorder "
                 "stays disarmed\n",
                 Spec);
    return;
  }
  if (!On)
    return;
  if (!compiledIn()) {
    std::fprintf(stderr, "pdt: warning: PDT_FLIGHT is set but tracing was "
                         "compiled out (PDT_TRACING=OFF); no flight "
                         "recorder available\n");
    return;
  }
#if PDT_TRACING
  FlightRecorder::start(Bytes, std::move(Path));
  // A crashing run is exactly when the black box matters: dump the
  // surviving window before the process dies.
  registerCrashFlush("PDT_FLIGHT", [] {
    if (FlightRecorder::enabled())
      FlightRecorder::postmortem("crash");
  });
#endif
}

namespace {
/// Arms PDT_FLIGHT before main, mirroring Trace/Metrics.
[[maybe_unused]] const bool FlightEnvInitialized =
    (FlightRecorder::initFromEnvironment(), true);
} // namespace
