//===- driver/TableReport.cpp - Paper table regeneration ------------------===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//

#include "driver/TableReport.h"

#include "core/DependenceTester.h"
#include "core/FourierMotzkin.h"
#include "core/SubscriptBySubscript.h"
#include "driver/Analyzer.h"
#include "driver/Corpus.h"
#include "support/Casting.h"
#include "support/ErrorHandling.h"

#include <cstdio>

using namespace pdt;

namespace {

/// Counts non-blank, non-comment lines of a kernel source.
unsigned countLines(const std::string &Source) {
  unsigned Lines = 0;
  size_t Pos = 0;
  while (Pos <= Source.size()) {
    size_t End = Source.find('\n', Pos);
    if (End == std::string::npos)
      End = Source.size();
    size_t First = Source.find_first_not_of(" \t\r", Pos);
    if (First != std::string::npos && First < End && Source[First] != '!')
      ++Lines;
    if (End == Source.size())
      break;
    Pos = End + 1;
  }
  return Lines;
}

unsigned countLoops(const Stmt *S) {
  if (const auto *L = dyn_cast<DoLoop>(S)) {
    unsigned N = 1;
    for (const Stmt *Child : L->getBody())
      N += countLoops(Child);
    return N;
  }
  return 0;
}

/// Runs practical vs baselines over every reference pair of one
/// analyzed program.
void comparePairs(const Program &P, const SymbolRangeMap &Symbols,
                  SuiteReport &Report) {
  std::vector<ArrayAccess> Accesses = collectAccesses(P);
  std::set<std::string> VaryingScalars = collectVaryingScalars(P);
  for (unsigned I = 0, E = Accesses.size(); I != E; ++I) {
    for (unsigned J = I + 1; J != E; ++J) {
      const ArrayAccess &A = Accesses[I];
      const ArrayAccess &B = Accesses[J];
      if (A.Ref->getArrayName() != B.Ref->getArrayName())
        continue;
      if (!A.IsWrite && !B.IsWrite)
        continue;
      std::optional<PreparedPair> Prepared =
          prepareAccessPair(A, B, Symbols, &VaryingScalars);
      if (!Prepared)
        continue;

      DependenceTestResult Practical =
          testDependence(Prepared->Subscripts, Prepared->Ctx, nullptr);
      bool PracticalIndep =
          Practical.isIndependent() && !Prepared->HasNonlinear;
      DependenceTestResult Baseline = subscriptBySubscriptTest(
          Prepared->Subscripts, Prepared->Ctx, nullptr);
      bool BaselineIndep =
          Baseline.isIndependent() && !Prepared->HasNonlinear;
      bool FMIndep =
          !Prepared->HasNonlinear &&
          fourierMotzkinTest(Prepared->Subscripts, Prepared->Ctx, nullptr) ==
              Verdict::Independent;

      Report.PairsIndependentPractical += PracticalIndep;
      Report.PairsIndependentBaseline += BaselineIndep;
      Report.PairsIndependentFM += FMIndep;
      if (Prepared->HasCoupledGroup) {
        ++Report.CoupledPairs;
        Report.CoupledIndependentPractical += PracticalIndep;
        Report.CoupledIndependentBaseline += BaselineIndep;
      }
    }
  }
}

/// Collects symbol assumptions the same way the analyzer does (every
/// symbol at least 1), for the comparison pass.
SymbolRangeMap analyzerSymbols(const Program &P) {
  AnalyzerOptions Options;
  SymbolRangeMap Symbols;
  // Reuse the analyzer by running it without stats; cheaper to just
  // assume the default range for everything on demand: the range map
  // consulted by LoopNestContext treats missing entries as full, so we
  // need explicit entries. Walk the AST for names.
  std::set<std::string> Indices, Names;
  auto WalkExpr = [&Names](auto &&Self, const Expr *E) -> void {
    switch (E->getKind()) {
    case Expr::Kind::IntLiteral:
      return;
    case Expr::Kind::VarRef:
      Names.insert(cast<VarRef>(E)->getName());
      return;
    case Expr::Kind::Unary:
      Self(Self, cast<UnaryExpr>(E)->getOperand());
      return;
    case Expr::Kind::Binary:
      Self(Self, cast<BinaryExpr>(E)->getLHS());
      Self(Self, cast<BinaryExpr>(E)->getRHS());
      return;
    case Expr::Kind::ArrayElement:
      for (const Expr *Sub : cast<ArrayElement>(E)->getSubscripts())
        Self(Self, Sub);
      return;
    }
  };
  auto WalkStmt = [&](auto &&Self, const Stmt *S) -> void {
    if (const auto *A = dyn_cast<AssignStmt>(S)) {
      if (A->isArrayAssign())
        WalkExpr(WalkExpr, A->getArrayTarget());
      WalkExpr(WalkExpr, A->getValue());
      return;
    }
    const auto *L = cast<DoLoop>(S);
    Indices.insert(L->getIndexName());
    WalkExpr(WalkExpr, L->getLower());
    WalkExpr(WalkExpr, L->getUpper());
    WalkExpr(WalkExpr, L->getStep());
    for (const Stmt *Child : L->getBody())
      Self(Self, Child);
  };
  for (const Stmt *S : P.TopLevel)
    WalkStmt(WalkStmt, S);
  for (const std::string &N : Names)
    if (!Indices.count(N))
      Symbols.try_emplace(N, Options.DefaultSymbolRange);
  return Symbols;
}

} // namespace

std::vector<SuiteReport> pdt::analyzeCorpusSuites(bool IncludePaperSuite) {
  std::vector<SuiteReport> Reports;
  for (const std::string &Suite : suiteNames()) {
    if (!IncludePaperSuite && Suite == "paper")
      continue;
    SuiteReport Report;
    Report.Suite = Suite;
    for (const CorpusKernel *K : kernelsInSuite(Suite)) {
      AnalysisResult R = analyzeSource(K->Source, K->Name);
      if (!R.Parsed) {
        // A malformed kernel is a data problem, not a program bug:
        // count and name it in the report, keep analyzing the rest.
        ++Report.ParseFailures;
        Report.FailedKernels.push_back(K->Name);
        continue;
      }
      ++Report.Kernels;
      Report.Lines += countLines(K->Source);
      for (const Stmt *S : R.Prog->TopLevel)
        Report.Loops += countLoops(S);
      Report.Stats += R.Stats;
      comparePairs(*R.Prog, analyzerSymbols(*R.Prog), Report);
    }
    Reports.push_back(std::move(Report));
  }
  return Reports;
}

//===----------------------------------------------------------------------===//
// Formatting
//===----------------------------------------------------------------------===//

namespace {

std::string pad(const std::string &S, unsigned Width, bool Right = true) {
  if (S.size() >= Width)
    return S;
  std::string Pad(Width - S.size(), ' ');
  return Right ? Pad + S : S + Pad;
}

std::string num(uint64_t V) { return std::to_string(V); }

} // namespace

std::string pdt::formatTable1(const std::vector<SuiteReport> &Reports) {
  std::string Out;
  Out += "Table 1: program characteristics and subscript complexity\n";
  Out += pad("suite", 10, false) + pad("kern", 6) + pad("lines", 7) +
         pad("loops", 7) + pad("pairs", 7) + pad("1-dim", 7) +
         pad("2-dim", 7) + pad("3+dim", 7) + pad("separ", 7) +
         pad("coupl", 7) + pad("nonlin", 8) + "\n";
  for (const SuiteReport &R : Reports) {
    const TestStats &S = R.Stats;
    Out += pad(R.Suite, 10, false) + pad(num(R.Kernels), 6) +
           pad(num(R.Lines), 7) + pad(num(R.Loops), 7) +
           pad(num(S.ReferencePairs), 7) +
           pad(num(S.DimensionHistogram[0]), 7) +
           pad(num(S.DimensionHistogram[1]), 7) +
           pad(num(S.DimensionHistogram[2] + S.DimensionHistogram[3]), 7) +
           pad(num(S.SeparableSubscripts), 7) +
           pad(num(S.CoupledSubscripts), 7) +
           pad(num(S.NonlinearSubscripts), 8) + "\n";
  }
  for (const SuiteReport &R : Reports) {
    if (!R.ParseFailures)
      continue;
    Out += "note: " + R.Suite + ": skipped " + num(R.ParseFailures) +
           " unparseable kernel(s):";
    for (const std::string &Name : R.FailedKernels)
      Out += " " + Name;
    Out += "\n";
  }
  return Out;
}

std::string pdt::formatTable2(const std::vector<SuiteReport> &Reports) {
  static const TestKind Columns[] = {
      TestKind::ZIV,          TestKind::SymbolicZIV,
      TestKind::StrongSIV,    TestKind::WeakZeroSIV,
      TestKind::WeakCrossingSIV, TestKind::ExactSIV,
      TestKind::SymbolicSIV,  TestKind::RDIV,
      TestKind::GCD,          TestKind::Banerjee,
      TestKind::Delta,
  };
  static const char *Headers[] = {"ZIV",   "symZIV", "strong", "wzero",
                                  "wcross", "exact",  "symSIV", "RDIV",
                                  "GCD",   "Banrj",  "Delta"};
  std::string Out;
  Out += "Table 2: number of applications of each dependence test\n";
  Out += pad("suite", 10, false);
  for (const char *H : Headers)
    Out += pad(H, 8);
  Out += "\n";
  for (const SuiteReport &R : Reports) {
    Out += pad(R.Suite, 10, false);
    for (TestKind K : Columns)
      Out += pad(num(R.Stats.applications(K)), 8);
    Out += "\n";
  }
  return Out;
}

std::string pdt::formatTable3(const std::vector<SuiteReport> &Reports) {
  static const TestKind Columns[] = {
      TestKind::ZIV,          TestKind::SymbolicZIV,
      TestKind::StrongSIV,    TestKind::WeakZeroSIV,
      TestKind::WeakCrossingSIV, TestKind::ExactSIV,
      TestKind::SymbolicSIV,  TestKind::RDIV,
      TestKind::GCD,          TestKind::Banerjee,
      TestKind::Delta,
  };
  static const char *Headers[] = {"ZIV",   "symZIV", "strong", "wzero",
                                  "wcross", "exact",  "symSIV", "RDIV",
                                  "GCD",   "Banrj",  "Delta"};
  std::string Out;
  Out += "Table 3a: independence proofs credited to each test\n";
  Out += pad("suite", 10, false);
  for (const char *H : Headers)
    Out += pad(H, 8);
  Out += pad("total", 8) + "\n";
  for (const SuiteReport &R : Reports) {
    Out += pad(R.Suite, 10, false);
    for (TestKind K : Columns)
      Out += pad(num(R.Stats.independences(K)), 8);
    Out += pad(num(R.Stats.IndependentPairs), 8) + "\n";
  }

  Out += "\nTable 3b: pairs proven independent, practical suite vs "
         "baselines\n";
  Out += pad("suite", 10, false) + pad("pairs", 7) + pad("pract", 8) +
         pad("s-by-s", 8) + pad("FM", 8) + pad("coupled", 9) +
         pad("practC", 8) + pad("s-by-sC", 9) + "\n";
  for (const SuiteReport &R : Reports) {
    Out += pad(R.Suite, 10, false) + pad(num(R.Stats.ReferencePairs), 7) +
           pad(num(R.PairsIndependentPractical), 8) +
           pad(num(R.PairsIndependentBaseline), 8) +
           pad(num(R.PairsIndependentFM), 8) + pad(num(R.CoupledPairs), 9) +
           pad(num(R.CoupledIndependentPractical), 8) +
           pad(num(R.CoupledIndependentBaseline), 9) + "\n";
  }
  return Out;
}
