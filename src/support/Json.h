//===- support/Json.h - Minimal JSON value model and parser -----*- C++ -*-===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small JSON reader for the tooling side of the observability stack:
/// depprof loads AnalysisReport files and BENCH_HISTORY.jsonl lines,
/// and the schema-stability tests round-trip reports through it. The
/// writers in this repository emit JSON by hand (each producer controls
/// its own canonical key order); this module only needs to *read* that
/// output back, so it favors simplicity over speed:
///
///   * objects preserve member order (a vector of pairs, not a map), so
///     parse -> serialize round-trips are byte-stable;
///   * numbers remember whether the source text was an integer, so
///     uint64 counters survive the trip without double rounding;
///   * errors carry a byte offset and a one-line description.
///
//===----------------------------------------------------------------------===//

#ifndef PDT_SUPPORT_JSON_H
#define PDT_SUPPORT_JSON_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pdt {
namespace json {

class Value;

using Member = std::pair<std::string, Value>;

/// One JSON value. Kept deliberately closed: the analysis layers never
/// build these; only the report tooling does.
class Value {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Value() : TheKind(Kind::Null) {}
  explicit Value(bool B) : TheKind(Kind::Bool), BoolValue(B) {}
  explicit Value(double D)
      : TheKind(Kind::Number), NumValue(D), IntValue(static_cast<int64_t>(D)),
        IsInt(false) {}
  explicit Value(int64_t I)
      : TheKind(Kind::Number), NumValue(static_cast<double>(I)), IntValue(I),
        IsInt(true) {}
  explicit Value(uint64_t U)
      : TheKind(Kind::Number), NumValue(static_cast<double>(U)),
        IntValue(static_cast<int64_t>(U)), IsInt(true) {}
  explicit Value(std::string S)
      : TheKind(Kind::String), StrValue(std::move(S)) {}
  explicit Value(std::vector<Value> A)
      : TheKind(Kind::Array), Elements(std::move(A)) {}
  explicit Value(std::vector<Member> O)
      : TheKind(Kind::Object), Members(std::move(O)) {}

  Kind kind() const { return TheKind; }
  bool isNull() const { return TheKind == Kind::Null; }
  bool isBool() const { return TheKind == Kind::Bool; }
  bool isNumber() const { return TheKind == Kind::Number; }
  bool isString() const { return TheKind == Kind::String; }
  bool isArray() const { return TheKind == Kind::Array; }
  bool isObject() const { return TheKind == Kind::Object; }

  bool asBool() const { return BoolValue; }
  double asDouble() const { return NumValue; }
  /// The integer value; exact when the source text was an integer
  /// literal, otherwise a truncation of the double.
  int64_t asInt() const { return IsInt ? IntValue : static_cast<int64_t>(NumValue); }
  uint64_t asUInt() const { return static_cast<uint64_t>(asInt()); }
  const std::string &asString() const { return StrValue; }
  const std::vector<Value> &asArray() const { return Elements; }
  const std::vector<Member> &asObject() const { return Members; }

  /// Object member lookup (first match); nullptr when absent or when
  /// this value is not an object.
  const Value *find(std::string_view Key) const;

  /// Convenience typed lookups for report parsing: nullopt when the
  /// member is absent or has the wrong kind.
  std::optional<double> numberAt(std::string_view Key) const;
  std::optional<uint64_t> uintAt(std::string_view Key) const;
  std::optional<bool> boolAt(std::string_view Key) const;
  std::optional<std::string> stringAt(std::string_view Key) const;

private:
  Kind TheKind;
  bool BoolValue = false;
  double NumValue = 0.0;
  int64_t IntValue = 0;
  bool IsInt = false;
  std::string StrValue;
  std::vector<Value> Elements;
  std::vector<Member> Members;
};

/// Parses one JSON document (trailing whitespace allowed, anything
/// else after the value is an error). On failure returns nullopt and,
/// when \p Error is non-null, fills it with "offset N: why".
std::optional<Value> parse(std::string_view Text, std::string *Error = nullptr);

/// Serializes \p V compactly (no added whitespace). Used by tests and
/// the history tooling; the report writers keep their own pretty,
/// canonical formatting.
std::string dump(const Value &V);

/// Escapes \p S for inclusion inside a JSON string literal (quotes not
/// included). Shared by every hand-rolled writer in the repo.
std::string escape(std::string_view S);

} // namespace json
} // namespace pdt

#endif // PDT_SUPPORT_JSON_H
