//===- bench/bench_x7_profile.cpp ------------------------------------------===//
//
// Experiment X7: attribution-profile fidelity and the self-regression
// gate. The observability stack claims that span attribution accounts
// for where analysis time goes; this bench holds it to that claim on
// the X3 workload and then turns the run-report machinery on itself:
//
//   1. Reconciliation — with tracing armed, the profile's attributed
//      time (sum of root-span inclusive time == sum of all span self
//      time, an exact invariant) must agree with the wall clock
//      around the serial graph build within 5% (25% under --smoke,
//      where the workload is sub-millisecond and fixed costs bite).
//
//   2. Partition invariants — per-kind self time (and per-layer self
//      time) must partition the attributed total exactly; the
//      tagged dependence-test kinds must actually appear.
//
//   3. Self-regression gate — two identical runs produce two
//      AnalysisReports (BENCH_profile_run1.json / _run2.json); the
//      report differ must find zero regressions between them under
//      the default (wall-clock-excluded) tolerances, and the "stats"
//      section must be byte-for-byte identical. The depprof binary
//      replays the same diff from ctest (depprof_selfdiff).
//
// In the full (non-smoke) run the result is also appended to the
// BENCH_HISTORY.jsonl perf ledger and scanned against prior entries.
// Writes BENCH_profile.json (and the two run reports) under
// PDT_BENCH_DIR when set.
//
//===----------------------------------------------------------------------===//

#include "BenchMeta.h"

#include "core/DependenceGraph.h"
#include "core/DependenceTypes.h"
#include "driver/Analyzer.h"
#include "driver/ReportDiff.h"
#include "driver/RunReport.h"
#include "driver/WorkloadGenerator.h"
#include "support/Json.h"
#include "support/Metrics.h"
#include "support/Profile.h"
#include "support/Trace.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <random>
#include <string>

using namespace pdt;

namespace {

const char *kindTagName(int Tag) {
  if (Tag < 0 || Tag >= static_cast<int>(NumTestKinds))
    return nullptr;
  return testKindName(static_cast<TestKind>(Tag));
}

struct RunResult {
  int64_t WallNs = 0;
  Profile Prof;
  std::string Report;
  uint64_t Edges = 0;
};

/// One fully instrumented serial build over \p Prog: arm metrics and
/// tracing, build, render the consolidated report. Both runs execute
/// exactly this.
RunResult instrumentedRun(const Program &Prog, const SymbolRangeMap &Symbols,
                          unsigned NumNests) {
  RunResult R;
  Metrics::enable();
  Trace::start("");

  TestStats Stats;
  auto T0 = std::chrono::steady_clock::now();
  DependenceGraph G = DependenceGraph::build(Prog, Symbols, &Stats,
                                             /*IncludeInputDeps=*/false,
                                             /*NumThreads=*/1);
  R.WallNs = std::chrono::duration_cast<std::chrono::nanoseconds>(
                 std::chrono::steady_clock::now() - T0)
                 .count();
  R.Edges = G.dependences().size();

  // Disarm without writing (paths are empty); the buffered events and
  // shards stay readable for the profile and the report.
  Trace::stop();
  Metrics::stop();

  R.Prof = Profile::fromTrace(kindTagName);
  RunReport::reset();
  RunReport::noteTool("bench_x7_profile");
  RunReport::noteWorkload("workload", "x3");
  RunReport::noteWorkload("nests", static_cast<uint64_t>(NumNests));
  RunReport::noteWorkload("seed", "0xBADC0FFEE");
  RunReport::noteStats(Stats);
  RunReport::noteWallNs(R.WallNs);
  R.Report = RunReport::render();
  return R;
}

bool writeArtifact(const std::string &Path, const std::string &Contents) {
  std::ofstream File(Path);
  File << Contents;
  return File.good();
}

int64_t selfOf(const std::vector<ProfileEntry> &Rows) {
  int64_t Sum = 0;
  for (const ProfileEntry &E : Rows)
    Sum += E.SelfNs;
  return Sum;
}

bool hasKey(const std::vector<ProfileEntry> &Rows, const char *Key) {
  for (const ProfileEntry &E : Rows)
    if (E.Key == Key)
      return true;
  return false;
}

} // namespace

int main(int argc, char **argv) {
  bool Smoke = false;
  unsigned NumNests = 64;
  for (int I = 1; I != argc; ++I) {
    if (!std::strcmp(argv[I], "--smoke"))
      Smoke = true;
    else if (!std::strcmp(argv[I], "--nests") && I + 1 != argc)
      NumNests = std::strtoul(argv[++I], nullptr, 10);
    else {
      std::cerr << "usage: " << argv[0] << " [--smoke] [--nests N]\n";
      return 2;
    }
  }
  if (Smoke)
    NumNests = 4;
  double ReconcileTol = Smoke ? 0.25 : 0.05;

  if (!Trace::compiledIn()) {
    std::printf("x7 profile: tracing compiled out (PDT_TRACING=OFF); "
                "nothing to attribute\n");
    // Still emit the self-diff artifact pair so the depprof_selfdiff
    // ctest stays green in tracing-off builds (same convention as
    // bench_x8's compiled-out path): two renders of the same minimal
    // report diff clean by construction.
    RunReport::reset();
    RunReport::noteTool("bench_x7_profile");
    RunReport::noteWorkload("workload", "x3");
    RunReport::noteWorkload("config", "tracing-compiled-out");
    std::string Minimal = RunReport::render();
    if (!writeArtifact(benchOutputPath("BENCH_profile_run1.json"), Minimal) ||
        !writeArtifact(benchOutputPath("BENCH_profile_run2.json"), Minimal)) {
      std::cerr << "FAIL: cannot write run reports\n";
      return 1;
    }
    return 0;
  }

  // The X3 workload, verbatim: same generator, same seed.
  std::mt19937_64 Rng(0xBADC0FFEE);
  std::string Source = generateRandomProgramSource(Rng, NumNests,
                                                   /*MaxDepth=*/3,
                                                   /*StmtsPerNest=*/3);
  AnalyzerOptions Opt;
  Opt.NumThreads = 1;
  AnalysisResult Base = analyzeSource(Source, "x7-workload", Opt);
  if (!Base.Parsed) {
    std::cerr << "workload failed to parse\n";
    return 1;
  }
  const Program &Prog = *Base.Prog;
  SymbolRangeMap Symbols;
  Symbols.try_emplace("n", Interval(1, std::nullopt));

  RunResult Run1 = instrumentedRun(Prog, Symbols, NumNests);
  RunResult Run2 = instrumentedRun(Prog, Symbols, NumNests);

  // --- 1. Reconciliation against the wall clock -----------------------
  const Profile &P = Run1.Prof;
  double Reconcile =
      Run1.WallNs
          ? std::fabs(static_cast<double>(P.RootInclusiveNs - Run1.WallNs)) /
                static_cast<double>(Run1.WallNs)
          : 1.0;
  std::printf("x7 profile: %llu spans over %llu edges\n",
              static_cast<unsigned long long>(P.NumEvents),
              static_cast<unsigned long long>(Run1.Edges));
  std::printf("  wall %"
              ".3f ms, attributed %.3f ms (|delta| %.2f%%, tolerance %.0f%%)\n",
              Run1.WallNs / 1e6, P.RootInclusiveNs / 1e6, Reconcile * 100,
              ReconcileTol * 100);
  if (P.NumEvents == 0) {
    std::cerr << "FAIL: no spans recorded with tracing armed\n";
    return 1;
  }
  if (Reconcile > ReconcileTol) {
    std::cerr << "FAIL: attributed time diverges from wall clock beyond "
                 "tolerance\n";
    return 1;
  }

  // --- 2. Exact partition invariants ----------------------------------
  if (P.TotalSelfNs != P.RootInclusiveNs) {
    std::cerr << "FAIL: total self " << P.TotalSelfNs
              << " != root inclusive " << P.RootInclusiveNs << "\n";
    return 1;
  }
  if (selfOf(P.ByKind) != P.TotalSelfNs || selfOf(P.ByLayer) != P.TotalSelfNs) {
    std::cerr << "FAIL: per-kind/per-layer self time does not partition the "
                 "total\n";
    return 1;
  }
  if (!hasKey(P.ByLayer, "graph") || !hasKey(P.ByLayer, "siv")) {
    std::cerr << "FAIL: expected layers missing from the profile\n";
    return 1;
  }
  unsigned TaggedKinds = 0;
  for (const ProfileEntry &E : P.ByKind)
    TaggedKinds += E.Key != "other";
  if (TaggedKinds == 0) {
    std::cerr << "FAIL: no TestKind-tagged spans in the profile\n";
    return 1;
  }
  std::printf("  partition exact: %zu kinds (%u tagged), %zu layers, "
              "%zu sites\n",
              P.ByKind.size(), TaggedKinds, P.ByLayer.size(),
              P.BySite.size());

  // --- 3. Self-regression gate ----------------------------------------
  std::string Run1Path = benchOutputPath("BENCH_profile_run1.json");
  std::string Run2Path = benchOutputPath("BENCH_profile_run2.json");
  if (!writeArtifact(Run1Path, Run1.Report) ||
      !writeArtifact(Run2Path, Run2.Report)) {
    std::cerr << "FAIL: cannot write run reports\n";
    return 1;
  }
  std::string Error;
  std::optional<json::Value> R1 = json::parse(Run1.Report, &Error);
  std::optional<json::Value> R2 = json::parse(Run2.Report, &Error);
  if (!R1 || !R2) {
    std::cerr << "FAIL: report does not parse as JSON: " << Error << "\n";
    return 1;
  }
  DiffResult Diff = diffReports(*R1, *R2); // Default: wall clock excluded.
  for (const DiffEntry &E : Diff.Changed)
    if (E.Regression)
      std::cerr << "REGRESSION " << E.Key << ": " << E.Before << " -> "
                << E.After << "\n";
  if (Diff.Regressions) {
    std::cerr << "FAIL: " << Diff.Regressions
              << " regression(s) between identical runs\n";
    return 1;
  }
  for (const DiffEntry &E : Diff.Changed)
    if (classifyKey(E.Key) == KeyClass::Stat) {
      std::cerr << "FAIL: stats key changed between identical runs: " << E.Key
                << "\n";
      return 1;
    }
  std::printf("  self-diff: %zu wall-clock keys moved, 0 regressions\n",
              Diff.Changed.size());

  // --- Artifacts -------------------------------------------------------
  std::ofstream Json(benchOutputPath("BENCH_profile.json"));
  Json << "{\n"
       << benchMetaJson("x7_profile") << ",\n"
       << "  \"workload\": {\"nests\": " << NumNests
       << ", \"smoke\": " << (Smoke ? "true" : "false") << "},\n"
       << "  \"wall_ns\": " << Run1.WallNs << ",\n"
       << "  \"attributed_ns\": " << P.RootInclusiveNs << ",\n"
       << "  \"reconcile_error\": " << Reconcile << ",\n"
       << "  \"reconcile_tolerance\": " << ReconcileTol << ",\n"
       << "  \"spans\": " << P.NumEvents << ",\n"
       << "  \"tagged_kinds\": " << TaggedKinds << ",\n"
       << "  \"self_diff_changed\": " << Diff.Changed.size() << ",\n"
       << "  \"self_diff_regressions\": " << Diff.Regressions << ",\n"
       << "  \"partition_exact\": true\n"
       << "}\n";

  // --- Perf ledger (full runs only: smoke timings are all noise) ------
  if (!Smoke) {
    std::string LedgerPath = benchOutputPath("BENCH_HISTORY.jsonl");
    std::string Timestamp = "unknown";
    if (const json::Value *Meta = R1->find("meta"))
      Timestamp = Meta->stringAt("timestamp").value_or("unknown");
    HistoryLine Line = historyLineFromReport(
        "bench_x7_profile", PDT_BENCH_BUILD_TYPE, Timestamp, *R1);
    if (!appendHistoryLine(LedgerPath, Line)) {
      std::cerr << "FAIL: cannot append to " << LedgerPath << "\n";
      return 1;
    }
    HistoryLoad Load = loadHistory(LedgerPath);
    HistoryScan Scan =
        scanHistory(Load.Lines, "bench_x7_profile", PDT_BENCH_BUILD_TYPE);
    for (const HistoryFlag &F : Scan.Flags)
      std::printf("  HISTORY REGRESSION %s: %.6g vs median %.6g (band "
                  "%.6g)\n",
                  F.Key.c_str(), F.Latest, F.Median, F.Band);
    std::printf("  ledger: %zu line(s), %u comparable, %zu flagged\n",
                Load.Lines.size(), Scan.Considered, Scan.Flags.size());
  }
  return 0;
}
