file(REMOVE_RECURSE
  "libpdt_analysis.a"
)
