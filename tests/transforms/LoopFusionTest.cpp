//===- tests/transforms/LoopFusionTest.cpp -----------------------------------===//
//
// Loop fusion tests: legality by dependence analysis, chained fusion,
// conformability requirements, and dynamic semantic preservation.
//
//===----------------------------------------------------------------------===//

#include "transforms/LoopFusion.h"

#include "../TestHelpers.h"
#include "driver/Interpreter.h"
#include "driver/WorkloadGenerator.h"
#include "ir/PrettyPrinter.h"

#include <gtest/gtest.h>

using namespace pdt;
using namespace pdt::test;

namespace {

struct FusedResult {
  Program Original;
  Program Result;
  FusionStats Stats;
};

FusedResult fuse(const char *Source,
                 const std::map<std::string, int64_t> &Symbols = {}) {
  FusedResult F;
  F.Original = parseOrDie(Source);
  SymbolRangeMap Ranges;
  for (const auto &[Name, Value] : Symbols)
    Ranges[Name] = Interval::point(Value);
  F.Result = fuseLoops(F.Original, Ranges, &F.Stats);

  InterpreterOptions Exec;
  Exec.Symbols = Symbols;
  ExecutionTrace Before = interpret(F.Original, Exec);
  ExecutionTrace After = interpret(F.Result, Exec);
  EXPECT_TRUE(Before.OK && After.OK);
  EXPECT_EQ(Before.Memory, After.Memory)
      << "fusion changed semantics:\n" << programToString(F.Result);
  return F;
}

} // namespace

TEST(LoopFusion, IndependentLoopsFuse) {
  FusedResult F = fuse(R"(
do i = 1, 20
  a(i) = i
end do
do i = 1, 20
  b(i) = 2*i
end do
)");
  EXPECT_EQ(F.Stats.Fused, 1u);
  ASSERT_EQ(F.Result.TopLevel.size(), 1u);
  EXPECT_EQ(cast<DoLoop>(F.Result.TopLevel[0])->getBody().size(), 2u);
}

TEST(LoopFusion, ProducerConsumerSameIterationFuses) {
  // b(i) = a(i): after fusion the read still follows the write of the
  // same iteration. Legal.
  FusedResult F = fuse(R"(
do i = 1, 20
  a(i) = i
end do
do i = 1, 20
  b(i) = a(i) + 1
end do
)");
  EXPECT_EQ(F.Stats.Fused, 1u);
}

TEST(LoopFusion, ForwardShiftFuses) {
  // Consumer reads a(i-1): fused, the value was written one iteration
  // earlier. Legal (the dependence stays forward).
  FusedResult F = fuse(R"(
do i = 2, 20
  a(i) = i
end do
do i = 2, 20
  b(i) = a(i-1)
end do
)");
  EXPECT_EQ(F.Stats.Fused, 1u);
}

TEST(LoopFusion, FusionPreventingFlowBlocked) {
  // The first loop reads a(i-1); the second writes a(i). In the
  // original, every read sees the *old* a; fused, iteration i's read
  // would see the value written at iteration i-1. The flow dependence
  // from the second piece into the first must block the merge.
  FusedResult F = fuse(R"(
c(5) = 7
do i = 2, 20
  b(i) = a(i-1)
end do
do i = 2, 20
  a(i) = c(i)
end do
)");
  EXPECT_EQ(F.Stats.Fused, 0u);
  EXPECT_EQ(F.Stats.BlockedByDependence, 1u);
  EXPECT_EQ(F.Result.TopLevel.size(), 3u);
}

TEST(LoopFusion, ReadAheadStaysLegal) {
  // The first loop reads a(i+1), the second writes a(i): fused, the
  // write of a(i+1) still happens after the read (iteration i+1 vs
  // i), so the anti ordering is preserved and fusion is legal.
  FusedResult F = fuse(R"(
c(5) = 7
do i = 1, 19
  b(i) = a(i+1)
end do
do i = 1, 19
  a(i) = c(i)
end do
)");
  EXPECT_EQ(F.Stats.Fused, 1u);
}

TEST(LoopFusion, WriteThenEarlierReadBlocked) {
  // First loop reads a(i), second loop writes a(i-1): fused, the
  // write a(i-1) at iteration i lands before the read a(i)... check
  // the dependence machinery gets the direction right: iteration i
  // writes a(i-1), iteration i-1 already read a(i-1) earlier in the
  // original; fused order keeps read(i-1) before write(i): still the
  // anti direction, so this one is actually LEGAL.
  FusedResult F = fuse(R"(
do i = 2, 20
  b(i) = a(i)
end do
do i = 2, 20
  a(i-1) = c(i)
end do
)");
  // Anti dependence source (read) in the first piece: no back edge.
  EXPECT_EQ(F.Stats.Fused, 1u);
}

TEST(LoopFusion, ChainsAcrossThreeLoops) {
  FusedResult F = fuse(R"(
do i = 1, 10
  a(i) = i
end do
do i = 1, 10
  b(i) = a(i)
end do
do i = 1, 10
  c(i) = b(i)
end do
)");
  EXPECT_EQ(F.Stats.Fused, 2u);
  EXPECT_EQ(F.Result.TopLevel.size(), 1u);
}

TEST(LoopFusion, NonConformableBoundsStaySplit) {
  FusedResult F = fuse(R"(
do i = 1, 20
  a(i) = i
end do
do i = 1, 21
  b(i) = i
end do
)");
  EXPECT_EQ(F.Stats.CandidatesConsidered, 0u);
  EXPECT_EQ(F.Result.TopLevel.size(), 2u);
}

TEST(LoopFusion, DifferentIndexNamesStaySplit) {
  FusedResult F = fuse(R"(
do i = 1, 20
  a(i) = i
end do
do j = 1, 20
  b(j) = j
end do
)");
  EXPECT_EQ(F.Stats.Fused, 0u);
}

TEST(LoopFusion, InnerLoopsOfNestFuse) {
  FusedResult F = fuse(R"(
do i = 1, 5
  do j = 1, 5
    a(i, j) = i + j
  end do
  do j = 1, 5
    b(i, j) = a(i, j)
  end do
end do
)");
  EXPECT_EQ(F.Stats.Fused, 1u);
  const auto *Outer = cast<DoLoop>(F.Result.TopLevel[0]);
  ASSERT_EQ(Outer->getBody().size(), 1u);
  EXPECT_EQ(cast<DoLoop>(Outer->getBody()[0])->getBody().size(), 2u);
}

TEST(LoopFusion, SymbolicBoundsFuseConservatively) {
  // Same symbolic bounds are conformable; the candidate analysis runs
  // with the provided assumptions.
  FusedResult F = fuse(R"(
do i = 1, n
  a(i) = i
end do
do i = 1, n
  b(i) = a(i)
end do
)", {{"n", 12}});
  EXPECT_EQ(F.Stats.Fused, 1u);
}

TEST(LoopFusion, FusionUndoesDistribution) {
  // Distribution-then-fusion round trip on an independent pair.
  FusedResult F = fuse(R"(
do i = 1, 15
  a(i) = i
end do
do i = 1, 15
  b(i) = 2*i
end do
)");
  ASSERT_EQ(F.Result.TopLevel.size(), 1u);
  std::string S = programToString(F.Result);
  EXPECT_EQ(S,
            "do i = 1, 15\n"
            "  a(i) = i\n"
            "  b(i) = 2*i\n"
            "end do\n");
}

TEST(LoopFusion, RandomProgramsPreserveSemantics) {
  std::mt19937_64 Rng(909090);
  for (unsigned N = 0; N != 25; ++N) {
    std::string Source = generateRandomProgramSource(Rng, 3, 1, 2);
    fuse(Source.c_str(), {{"n", 6}});
    if (::testing::Test::HasFailure()) {
      ADD_FAILURE() << "failing source:\n" << Source;
      return;
    }
  }
}
