//===- tests/support/CrashSafetyTest.cpp - Crash-flush registry tests -----===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//
//
// The telemetry dumps are exactly the artifacts one needs when a run
// dies, so the crash-flush registry is verified on the real death
// paths: registered hooks run (once) on abort and on terminate, and
// the env-armed sinks (PDT_TRACE, PDT_METRICS, PDT_REPORT) leave a
// parseable file behind after an abort — including with fault
// injection armed, the configuration where crashes are provoked on
// purpose.
//
// The death tests use the "threadsafe" style: the child re-executes
// the test binary, so its static initializers see the PDT_* variables
// set by the parent and arm the real env wiring end to end.
//
//===----------------------------------------------------------------------===//

#include "support/CrashSafety.h"

#include "driver/Analyzer.h"
#include "driver/RunReport.h"
#include "support/Json.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>

using namespace pdt;

namespace {

int FirstHookRuns = 0;
int SecondHookRuns = 0;
void firstHook() { ++FirstHookRuns; }
void secondHook() { ++SecondHookRuns; }

std::string slurp(const char *Path) {
  std::ifstream File(Path);
  std::ostringstream Buffer;
  Buffer << File.rdbuf();
  return Buffer.str();
}

} // namespace

TEST(CrashSafety, HooksRunAtMostOncePerProcess) {
  registerCrashFlush("TEST_FIRST", firstHook);
  registerCrashFlush("TEST_FIRST", firstHook); // duplicate: ignored
  registerCrashFlush("TEST_SECOND", secondHook);
  runCrashFlushHooks();
  EXPECT_EQ(FirstHookRuns, 1);
  EXPECT_EQ(SecondHookRuns, 1);
  runCrashFlushHooks(); // idempotent: every hook already ran
  EXPECT_EQ(FirstHookRuns, 1);
  EXPECT_EQ(SecondHookRuns, 1);
}

TEST(CrashSafetyDeath, AbortRunsRegisteredHooks) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  const char *Sentinel = "crash_sentinel_abort.txt";
  std::remove(Sentinel);
  registerCrashFlush("TEST_ABORT", [] {
    std::ofstream("crash_sentinel_abort.txt") << "flushed";
  });
  EXPECT_DEATH(std::abort(), "crash-flushing TEST_ABORT");
  EXPECT_EQ(slurp(Sentinel), "flushed");
  std::remove(Sentinel);
}

TEST(CrashSafetyDeath, TerminateRunsRegisteredHooks) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  registerCrashFlush("TEST_TERMINATE", [] {});
  EXPECT_DEATH(std::terminate(), "crash-flushing TEST_TERMINATE");
}

TEST(CrashSafetyDeath, AbortFlushesEnvArmedTrace) {
  if (!Trace::compiledIn())
    GTEST_SKIP() << "tracing compiled out";
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  const char *Path = "crash_trace_dump.json";
  std::remove(Path);
  setenv("PDT_TRACE", Path, 1);
  EXPECT_DEATH(
      {
        { Span S("CrashSafetyTest::span", "test"); }
        std::abort();
      },
      "crash-flushing PDT_TRACE");
  unsetenv("PDT_TRACE");
  std::string Dump = slurp(Path);
  EXPECT_NE(Dump.find("CrashSafetyTest::span"), std::string::npos)
      << "trace dump missing the span recorded before the abort";
  std::remove(Path);
}

TEST(CrashSafetyDeath, AbortFlushesEnvArmedMetrics) {
  if (!Metrics::compiledIn())
    GTEST_SKIP() << "metrics compiled out";
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  const char *Path = "crash_metrics_dump.json";
  std::remove(Path);
  setenv("PDT_METRICS", Path, 1);
  EXPECT_DEATH(
      {
        Metrics::count(Metric::PairsTested, 42);
        std::abort();
      },
      "crash-flushing PDT_METRICS");
  unsetenv("PDT_METRICS");
  std::string Error;
  std::optional<json::Value> V = json::parse(slurp(Path), &Error);
  ASSERT_TRUE(V) << "metrics dump is not valid JSON: " << Error;
  const json::Value *Counters = V->find("counters");
  ASSERT_TRUE(Counters);
  EXPECT_EQ(Counters->uintAt("graph.pairs.tested").value_or(0), 42u);
  std::remove(Path);
}

TEST(CrashSafetyDeath, AbortFlushesReportUnderFaultInjection) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  const char *Path = "crash_report_dump.json";
  std::remove(Path);
  // Fault injection armed: the analysis degrades (contained) and the
  // process then dies; the report must still land on disk with the
  // degradation visible in it.
  setenv("PDT_REPORT", Path, 1);
  // Site numbers are process-global checkpoint ordinals: on this
  // kernel the first three land in access lowering (degraded without
  // a per-pair stats row); site 4 is the first one inside the pair
  // tester, where degradation is counted into TestStats.
  setenv("PDT_FAULT_INJECT", "internal@4", 1);
  EXPECT_DEATH(
      {
        AnalyzerOptions Opt;
        Opt.NumThreads = 1;
        AnalysisResult R = analyzeSource("do i = 1, 8\n"
                                         "  a(i) = a(i-1)\n"
                                         "end do\n",
                                         "crash-workload", Opt);
        if (R.Parsed)
          RunReport::noteStats(R.Stats);
        std::abort();
      },
      "crash-flushing PDT_REPORT");
  unsetenv("PDT_REPORT");
  unsetenv("PDT_FAULT_INJECT");
  std::string Error;
  std::optional<json::Value> V = json::parse(slurp(Path), &Error);
  ASSERT_TRUE(V) << "report dump is not valid JSON: " << Error;
  EXPECT_EQ(V->stringAt("schema").value_or(""), "pdt-report-v1");
  const json::Value *Stats = V->find("stats");
  ASSERT_TRUE(Stats);
  EXPECT_GE(Stats->uintAt("degraded_results").value_or(0), 1u)
      << "injected fault did not surface in the crash-flushed report";
  std::remove(Path);
}
