//===- parser/Parser.cpp - Recursive-descent parser -----------------------===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//

#include "parser/Parser.h"

#include "parser/Lexer.h"
#include "support/Casting.h"

#include <cassert>

using namespace pdt;

namespace {

class Parser {
public:
  Parser(std::vector<Token> Tokens, std::string Name)
      : Tokens(std::move(Tokens)) {
    Result.Prog.emplace();
    Result.Prog->Name = std::move(Name);
  }

  ParseResult run() {
    std::vector<const Stmt *> TopLevel = parseStmtList(/*InLoop=*/false);
    if (!Result.Diagnostics.empty())
      Result.Prog.reset();
    else
      Result.Prog->TopLevel = std::move(TopLevel);
    return std::move(Result);
  }

private:
  std::vector<Token> Tokens;
  size_t Pos = 0;
  ParseResult Result;

  ASTContext &ctx() { return *Result.Prog->Context; }

  const Token &peek() const { return Tokens[Pos]; }
  const Token &advance() {
    const Token &T = Tokens[Pos];
    if (!T.is(Token::Kind::EndOfFile))
      ++Pos;
    return T;
  }

  bool check(Token::Kind K) const { return peek().is(K); }

  bool consumeIf(Token::Kind K) {
    if (!check(K))
      return false;
    advance();
    return true;
  }

  void error(const std::string &Message) {
    Result.Diagnostics.push_back({peek().Loc, Message});
  }

  /// Skips to the next statement boundary after an error.
  void recover() {
    while (!check(Token::Kind::EndOfFile) && !check(Token::Kind::Newline))
      advance();
    consumeIf(Token::Kind::Newline);
  }

  bool expect(Token::Kind K, const char *What) {
    if (consumeIf(K))
      return true;
    error(std::string("expected ") + What + ", found " +
          tokenKindName(peek().TheKind));
    return false;
  }

  /// Consumes the end of a statement (newline or EOF).
  void expectStmtEnd() {
    if (check(Token::Kind::EndOfFile))
      return;
    if (!expect(Token::Kind::Newline, "end of line"))
      recover();
  }

  /// True when the upcoming tokens are `end do` / `enddo`.
  bool atLoopEnd() const {
    if (peek().isKeyword("enddo"))
      return true;
    if (!peek().isKeyword("end"))
      return false;
    return Pos + 1 < Tokens.size() && Tokens[Pos + 1].isKeyword("do");
  }

  std::vector<const Stmt *> parseStmtList(bool InLoop) {
    std::vector<const Stmt *> Stmts;
    while (true) {
      if (consumeIf(Token::Kind::Newline))
        continue;
      if (check(Token::Kind::EndOfFile)) {
        if (InLoop)
          error("missing 'end do'");
        return Stmts;
      }
      if (InLoop && atLoopEnd())
        return Stmts;
      if (const Stmt *S = parseStmt())
        Stmts.push_back(S);
    }
  }

  const Stmt *parseStmt() {
    if (peek().isKeyword("do"))
      return parseDoLoop();
    if (peek().isKeyword("end") || peek().isKeyword("enddo")) {
      error("'end do' without matching 'do'");
      recover();
      return nullptr;
    }
    return parseAssign();
  }

  const Stmt *parseDoLoop() {
    assert(peek().isKeyword("do"));
    advance();
    Token IndexTok = peek();
    if (!expect(Token::Kind::Identifier, "loop index variable")) {
      recover();
      return nullptr;
    }
    if (!expect(Token::Kind::Equal, "'='")) {
      recover();
      return nullptr;
    }
    const Expr *Lower = parseExpr();
    if (!Lower || !expect(Token::Kind::Comma, "','")) {
      recover();
      return nullptr;
    }
    const Expr *Upper = parseExpr();
    if (!Upper) {
      recover();
      return nullptr;
    }
    const Expr *Step = nullptr;
    if (consumeIf(Token::Kind::Comma)) {
      Step = parseExpr();
      if (!Step) {
        recover();
        return nullptr;
      }
    } else {
      Step = ctx().getInt(1);
    }
    expectStmtEnd();

    std::vector<const Stmt *> Body = parseStmtList(/*InLoop=*/true);

    // Consume `end do` or `enddo`.
    if (peek().isKeyword("enddo")) {
      advance();
    } else if (peek().isKeyword("end")) {
      advance();
      expect(Token::Kind::Identifier, "'do' after 'end'");
    }
    expectStmtEnd();

    return ctx().createDoLoop(IndexTok.Spelling, Lower, Upper, Step,
                              std::move(Body));
  }

  const Stmt *parseAssign() {
    Token NameTok = peek();
    if (!expect(Token::Kind::Identifier, "statement")) {
      recover();
      return nullptr;
    }
    const ArrayElement *Target = nullptr;
    if (check(Token::Kind::LParen)) {
      std::optional<std::vector<const Expr *>> Subs = parseSubscripts();
      if (!Subs) {
        recover();
        return nullptr;
      }
      Target = ctx().getArrayElement(NameTok.Spelling, std::move(*Subs));
    }
    if (!expect(Token::Kind::Equal, "'='")) {
      recover();
      return nullptr;
    }
    const Expr *Value = parseExpr();
    if (!Value) {
      recover();
      return nullptr;
    }
    expectStmtEnd();
    if (Target)
      return ctx().createArrayAssign(Target, Value);
    return ctx().createScalarAssign(NameTok.Spelling, Value);
  }

  std::optional<std::vector<const Expr *>> parseSubscripts() {
    assert(check(Token::Kind::LParen));
    advance();
    std::vector<const Expr *> Subs;
    do {
      const Expr *E = parseExpr();
      if (!E)
        return std::nullopt;
      Subs.push_back(E);
    } while (consumeIf(Token::Kind::Comma));
    if (!expect(Token::Kind::RParen, "')'"))
      return std::nullopt;
    return Subs;
  }

  //===--------------------------------------------------------------------===//
  // Expressions
  //===--------------------------------------------------------------------===//

  const Expr *parseExpr() {
    const Expr *LHS = parseTerm();
    if (!LHS)
      return nullptr;
    while (check(Token::Kind::Plus) || check(Token::Kind::Minus)) {
      BinaryExpr::Opcode Op = check(Token::Kind::Plus)
                                  ? BinaryExpr::Opcode::Add
                                  : BinaryExpr::Opcode::Sub;
      advance();
      const Expr *RHS = parseTerm();
      if (!RHS)
        return nullptr;
      LHS = ctx().getBinary(Op, LHS, RHS);
    }
    return LHS;
  }

  const Expr *parseTerm() {
    const Expr *LHS = parseFactor();
    if (!LHS)
      return nullptr;
    while (check(Token::Kind::Star) || check(Token::Kind::Slash)) {
      BinaryExpr::Opcode Op = check(Token::Kind::Star)
                                  ? BinaryExpr::Opcode::Mul
                                  : BinaryExpr::Opcode::Div;
      advance();
      const Expr *RHS = parseFactor();
      if (!RHS)
        return nullptr;
      LHS = ctx().getBinary(Op, LHS, RHS);
    }
    return LHS;
  }

  const Expr *parseFactor() {
    if (consumeIf(Token::Kind::Minus)) {
      const Expr *Operand = parseFactor();
      if (!Operand)
        return nullptr;
      return ctx().getNeg(Operand);
    }
    if (consumeIf(Token::Kind::Plus))
      return parseFactor();
    if (check(Token::Kind::Number)) {
      int64_t Value = advance().Value;
      return ctx().getInt(Value);
    }
    if (check(Token::Kind::LParen)) {
      advance();
      const Expr *Inner = parseExpr();
      if (!Inner || !expect(Token::Kind::RParen, "')'"))
        return nullptr;
      return Inner;
    }
    if (check(Token::Kind::Identifier)) {
      Token NameTok = advance();
      if (check(Token::Kind::LParen)) {
        std::optional<std::vector<const Expr *>> Subs = parseSubscripts();
        if (!Subs)
          return nullptr;
        return ctx().getArrayElement(NameTok.Spelling, std::move(*Subs));
      }
      return ctx().getVar(NameTok.Spelling);
    }
    error(std::string("expected expression, found ") +
          tokenKindName(peek().TheKind));
    return nullptr;
  }
};

} // namespace

ParseResult pdt::parseProgram(const std::string &Source,
                              const std::string &Name) {
  Lexer L(Source);
  Parser P(L.lexAll(), Name);
  return P.run();
}
