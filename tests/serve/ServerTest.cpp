//===- tests/serve/ServerTest.cpp - Socket-layer daemon contract ----------===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//
//
// The daemon over real loopback sockets: keep-alive, concurrent-client
// determinism, deterministic 429 backpressure, graceful SIGTERM drain,
// idle/mid-request timeouts, malformed-stream robustness, and serving
// through a fault-injected (degraded) result store. Each test stands
// up its own server on an ephemeral port.
//
//===----------------------------------------------------------------------===//

#include "serve/Client.h"
#include "serve/Server.h"
#include "serve/Service.h"
#include "support/FaultInjector.h"
#include "support/Metrics.h"

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <thread>

using namespace pdt;
using namespace pdt::serve;

namespace {

ServerConfig testConfig() {
  ServerConfig C;
  C.Port = 0; // ephemeral
  C.Threads = 2;
  C.QueueCapacity = 8;
  C.IdleTimeoutMs = 2000;
  return C;
}

/// Server + service with scoped teardown so a failing assertion cannot
/// leak a listening socket into the next test.
struct TestDaemon {
  Service Svc;
  Server Daemon;

  explicit TestDaemon(ServerConfig C = testConfig(),
                      ServiceLimits L = ServiceLimits())
      : Svc(L), Daemon(C, Svc) {
    std::string Error;
    Ok = Daemon.start(&Error);
    EXPECT_TRUE(Ok) << Error;
  }
  ~TestDaemon() {
    Daemon.requestDrain();
    Daemon.waitDrained();
  }
  uint16_t port() const { return Daemon.port(); }
  bool Ok = false;
};

TEST(Server, BindsEphemeralPortAndServes) {
  TestDaemon D;
  ASSERT_TRUE(D.Ok);
  ASSERT_NE(D.port(), 0);

  Client C;
  std::string Error;
  ASSERT_TRUE(C.connectTo(D.port(), &Error)) << Error;
  ClientResponse R;
  ASSERT_TRUE(C.get("/healthz", R, &Error)) << Error;
  EXPECT_EQ(R.Status, 200);
  ASSERT_NE(R.header("Content-Type"), nullptr);
  EXPECT_EQ(*R.header("Content-Type"), "application/json");
}

TEST(Server, KeepAliveServesManyRequestsOnOneConnection) {
  TestDaemon D;
  Client C;
  std::string Error;
  ASSERT_TRUE(C.connectTo(D.port(), &Error)) << Error;
  for (int I = 0; I != 5; ++I) {
    ClientResponse R;
    ASSERT_TRUE(C.post("/v1/analyze", "{\"corpus\":\"daxpy\"}", R, &Error))
        << Error << " at request " << I;
    EXPECT_EQ(R.Status, 200);
  }
  ServerStats S = D.Daemon.stats();
  EXPECT_EQ(S.Accepted, 1u); // one connection carried all five
  EXPECT_EQ(S.Requests, 5u);
}

TEST(Server, ConcurrentClientsGetByteIdenticalPayloads) {
  TestDaemon D;
  const std::string Body = "{\"corpus\":\"dgefa_update\",\"explain\":true}";

  Client Reference;
  std::string Error;
  ASSERT_TRUE(Reference.connectTo(D.port(), &Error)) << Error;
  ClientResponse Expected;
  ASSERT_TRUE(Reference.post("/v1/analyze", Body, Expected, &Error)) << Error;
  ASSERT_EQ(Expected.Status, 200);

  constexpr int NumClients = 4, PerClient = 6;
  std::vector<std::string> Failures(NumClients);
  std::vector<std::vector<std::string>> Bodies(NumClients);
  std::vector<std::thread> Threads;
  for (int T = 0; T != NumClients; ++T)
    Threads.emplace_back([&, T] {
      Client C;
      std::string E;
      if (!C.connectTo(D.port(), &E)) {
        Failures[T] = E;
        return;
      }
      for (int I = 0; I != PerClient; ++I) {
        ClientResponse R;
        if (!C.post("/v1/analyze", Body, R, &E)) {
          Failures[T] = E;
          return;
        }
        Bodies[T].push_back(R.Body);
      }
    });
  for (std::thread &T : Threads)
    T.join();
  for (int T = 0; T != NumClients; ++T) {
    EXPECT_TRUE(Failures[T].empty()) << Failures[T];
    ASSERT_EQ(Bodies[T].size(), static_cast<size_t>(PerClient));
    for (const std::string &B : Bodies[T])
      EXPECT_EQ(B, Expected.Body) << "thread " << T;
  }
}

TEST(Server, SaturationAnswers429WithRetryAfter) {
  // One worker, zero queue: a single idle keep-alive connection pins
  // the worker, so the next connection is deterministically rejected.
  ServerConfig C = testConfig();
  C.Threads = 1;
  C.QueueCapacity = 0;
  TestDaemon D(C);

  Client Pin;
  std::string Error;
  ASSERT_TRUE(Pin.connectTo(D.port(), &Error)) << Error;
  // Prove the worker owns the connection (and stays on it after the
  // response: keep-alive).
  ClientResponse First;
  ASSERT_TRUE(Pin.get("/healthz", First, &Error)) << Error;
  ASSERT_EQ(First.Status, 200);

  // The 429 is written by the accept loop without waiting for a
  // request, so connect-then-read suffices.
  Client Rejected;
  ASSERT_TRUE(Rejected.connectTo(D.port(), &Error)) << Error;
  ClientResponse R;
  ASSERT_TRUE(Rejected.readResponse(R, &Error)) << Error;
  EXPECT_EQ(R.Status, 429);
  ASSERT_NE(R.header("Retry-After"), nullptr);
  EXPECT_EQ(*R.header("Retry-After"), "1");

  EXPECT_GE(D.Daemon.stats().Rejected429, 1u);

  // Releasing the pinned connection restores service.
  Pin.close();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  Client Again;
  ASSERT_TRUE(Again.connectTo(D.port(), &Error)) << Error;
  ClientResponse R2;
  ASSERT_TRUE(Again.get("/healthz", R2, &Error)) << Error;
  EXPECT_EQ(R2.Status, 200);
}

TEST(Server, SigtermDrainsGracefully) {
  auto D = std::make_unique<TestDaemon>();
  uint16_t Port = D->port();

  // An open keep-alive connection must not wedge the drain.
  Client Idle;
  std::string Error;
  ASSERT_TRUE(Idle.connectTo(Port, &Error)) << Error;
  ClientResponse R;
  ASSERT_TRUE(Idle.get("/healthz", R, &Error)) << Error;
  ASSERT_EQ(R.Status, 200);

  Server::installSignalHandlers(&D->Daemon);
  std::raise(SIGTERM); // the real signal path, in-process
  Server::installSignalHandlers(nullptr);

  EXPECT_TRUE(D->Daemon.draining());
  D->Daemon.waitDrained(); // must return: listener closed, workers joined

  // New connections are refused after the drain.
  Client After;
  EXPECT_FALSE(After.connectTo(Port, &Error));
  D.reset();
}

TEST(Server, MidRequestStallAnswers408) {
  ServerConfig C = testConfig();
  C.IdleTimeoutMs = 200;
  TestDaemon D(C);

  Client Stalled;
  std::string Error;
  ASSERT_TRUE(Stalled.connectTo(D.port(), &Error)) << Error;
  ASSERT_TRUE(Stalled.sendRaw("POST /v1/analyze HTTP/1.1\r\n"
                              "Content-Length: 100\r\n\r\n{\"cor",
                              &Error))
      << Error;
  ClientResponse R;
  ASSERT_TRUE(Stalled.readResponse(R, &Error)) << Error;
  EXPECT_EQ(R.Status, 408);
  EXPECT_GE(D.Daemon.stats().IdleTimeouts, 1u);
}

TEST(Server, SilentIdleConnectionIsReapedWithoutAResponse) {
  ServerConfig C = testConfig();
  C.IdleTimeoutMs = 150;
  TestDaemon D(C);

  Client Idle;
  std::string Error;
  ASSERT_TRUE(Idle.connectTo(D.port(), &Error)) << Error;
  ClientResponse R;
  EXPECT_FALSE(Idle.readResponse(R, &Error)); // closed, no bytes
}

TEST(Server, MalformedStreamIsClassifiedNotFatal) {
  TestDaemon D;
  std::string Error;

  struct Case {
    const char *Wire;
    int Status;
  } Cases[] = {
      {"GARBAGE NOISE\r\n\r\n", 400},
      {"GET /x HTTP/3.0\r\n\r\n", 505},
      {"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 501},
  };
  for (const Case &K : Cases) {
    Client C;
    ASSERT_TRUE(C.connectTo(D.port(), &Error)) << Error;
    ASSERT_TRUE(C.sendRaw(K.Wire, &Error)) << Error;
    ClientResponse R;
    ASSERT_TRUE(C.readResponse(R, &Error)) << K.Wire << ": " << Error;
    EXPECT_EQ(R.Status, K.Status) << K.Wire;
  }
  EXPECT_GE(D.Daemon.stats().ParseFailures, 3u);

  // The daemon is still healthy afterwards.
  Client C;
  ASSERT_TRUE(C.connectTo(D.port(), &Error)) << Error;
  ClientResponse R;
  ASSERT_TRUE(C.get("/healthz", R, &Error)) << Error;
  EXPECT_EQ(R.Status, 200);
}

TEST(Server, OversizedDeclaredBodyIs413BeforeTheBodyArrives) {
  ServerConfig C = testConfig();
  C.MaxBodyBytes = 2048;
  TestDaemon D(C);

  Client Big;
  std::string Error;
  ASSERT_TRUE(Big.connectTo(D.port(), &Error)) << Error;
  ASSERT_TRUE(Big.sendRaw("POST /v1/analyze HTTP/1.1\r\n"
                          "Content-Length: 1048576\r\n\r\n",
                          &Error))
      << Error;
  ClientResponse R;
  ASSERT_TRUE(Big.readResponse(R, &Error)) << Error;
  EXPECT_EQ(R.Status, 413);
}

TEST(Server, OversizedHeaderBlockIs431) {
  ServerConfig C = testConfig();
  C.MaxHeaderBytes = 512;
  TestDaemon D(C);

  std::string Wire = "GET /healthz HTTP/1.1\r\n";
  for (int I = 0; I != 64; ++I)
    Wire += "X-Padding-" + std::to_string(I) + ": aaaaaaaaaaaaaaaaaaaa\r\n";
  Wire += "\r\n";

  Client C2;
  std::string Error;
  ASSERT_TRUE(C2.connectTo(D.port(), &Error)) << Error;
  ASSERT_TRUE(C2.sendRaw(Wire, &Error)) << Error;
  ClientResponse R;
  ASSERT_TRUE(C2.readResponse(R, &Error)) << Error;
  EXPECT_EQ(R.Status, 431);
}

TEST(Server, TruncatedRequestThenDisconnectLeavesServerHealthy) {
  TestDaemon D;
  std::string Error;
  {
    Client Truncated;
    ASSERT_TRUE(Truncated.connectTo(D.port(), &Error)) << Error;
    ASSERT_TRUE(
        Truncated.sendRaw("POST /v1/analyze HTTP/1.1\r\nContent-", &Error));
  } // destructor closes mid-header

  Client C;
  ASSERT_TRUE(C.connectTo(D.port(), &Error)) << Error;
  ClientResponse R;
  ASSERT_TRUE(C.post("/v1/analyze", "{\"corpus\":\"daxpy\"}", R, &Error))
      << Error;
  EXPECT_EQ(R.Status, 200);
}

TEST(Server, Expect100ContinueGetsAnInterimResponse) {
  TestDaemon D;
  Client C;
  std::string Error;
  ASSERT_TRUE(C.connectTo(D.port(), &Error)) << Error;
  const std::string Body = "{\"corpus\":\"daxpy\"}";
  ASSERT_TRUE(C.sendRaw("POST /v1/analyze HTTP/1.1\r\n"
                        "Expect: 100-continue\r\n"
                        "Content-Length: " +
                            std::to_string(Body.size()) + "\r\n\r\n",
                        &Error))
      << Error;
  ClientResponse Interim;
  ASSERT_TRUE(C.readResponse(Interim, &Error)) << Error;
  ASSERT_EQ(Interim.Status, 100);
  ASSERT_TRUE(C.sendRaw(Body, &Error)) << Error;
  ClientResponse Final;
  ASSERT_TRUE(C.readResponse(Final, &Error)) << Error;
  EXPECT_EQ(Final.Status, 200);
}

TEST(Server, RequestLatencyLandsInTheServeHistogram) {
  Metrics::reset();
  ASSERT_TRUE(Metrics::enable());
  {
    TestDaemon D;
    Client C;
    std::string Error;
    ASSERT_TRUE(C.connectTo(D.port(), &Error)) << Error;
    ClientResponse R;
    ASSERT_TRUE(C.post("/v1/analyze", "{\"corpus\":\"daxpy\"}", R, &Error))
        << Error;
    ASSERT_EQ(R.Status, 200);
  }
  MetricsSnapshot S = Metrics::snapshot();
  Metrics::stop();
  EXPECT_GE(S.histogram(Histo::ServeRequestNs).Count, 1u);
  EXPECT_GE(S.counter(Metric::ServeRequests), 1u);
  EXPECT_GE(S.counter(Metric::ServeConnections), 1u);
  EXPECT_GE(S.counter(Metric::ServeAnalyses), 1u);
}

TEST(Server, ServesIdenticallyWhileTheStoreIsDegraded) {
  // Arm the store through the environment, break its writes with the
  // I/O fault injector, and require byte-identical analysis responses:
  // persistence degrades to memory, serving must not notice.
  namespace fs = std::filesystem;
  fs::path Dir =
      fs::temp_directory_path() / "pdt_serve_store_degraded_test";
  fs::remove_all(Dir);
  fs::create_directories(Dir);

  TestDaemon D;
  Client C;
  std::string Error;
  ASSERT_TRUE(C.connectTo(D.port(), &Error)) << Error;
  const std::string Body = "{\"corpus\":\"dgefa_update\"}";
  ClientResponse Healthy;
  ASSERT_TRUE(C.post("/v1/analyze", Body, Healthy, &Error)) << Error;
  ASSERT_EQ(Healthy.Status, 200);

  ::setenv("PDT_STORE", "on", 1);
  ::setenv("PDT_STORE_DIR", Dir.string().c_str(), 1);
  FaultInjector::armIo(IoFaultKind::Write, 1);
  ClientResponse Degraded;
  bool SendOk = C.post("/v1/analyze", Body, Degraded, &Error);
  FaultInjector::disarm();
  ::unsetenv("PDT_STORE");
  ::unsetenv("PDT_STORE_DIR");
  fs::remove_all(Dir);

  ASSERT_TRUE(SendOk) << Error;
  EXPECT_EQ(Degraded.Status, 200);
  EXPECT_EQ(Degraded.Body, Healthy.Body);
}

} // namespace
