
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transforms/Interchange.cpp" "src/transforms/CMakeFiles/pdt_transforms.dir/Interchange.cpp.o" "gcc" "src/transforms/CMakeFiles/pdt_transforms.dir/Interchange.cpp.o.d"
  "/root/repo/src/transforms/LocalityAdvisor.cpp" "src/transforms/CMakeFiles/pdt_transforms.dir/LocalityAdvisor.cpp.o" "gcc" "src/transforms/CMakeFiles/pdt_transforms.dir/LocalityAdvisor.cpp.o.d"
  "/root/repo/src/transforms/LoopDistribution.cpp" "src/transforms/CMakeFiles/pdt_transforms.dir/LoopDistribution.cpp.o" "gcc" "src/transforms/CMakeFiles/pdt_transforms.dir/LoopDistribution.cpp.o.d"
  "/root/repo/src/transforms/LoopFusion.cpp" "src/transforms/CMakeFiles/pdt_transforms.dir/LoopFusion.cpp.o" "gcc" "src/transforms/CMakeFiles/pdt_transforms.dir/LoopFusion.cpp.o.d"
  "/root/repo/src/transforms/LoopRestructuring.cpp" "src/transforms/CMakeFiles/pdt_transforms.dir/LoopRestructuring.cpp.o" "gcc" "src/transforms/CMakeFiles/pdt_transforms.dir/LoopRestructuring.cpp.o.d"
  "/root/repo/src/transforms/Parallelizer.cpp" "src/transforms/CMakeFiles/pdt_transforms.dir/Parallelizer.cpp.o" "gcc" "src/transforms/CMakeFiles/pdt_transforms.dir/Parallelizer.cpp.o.d"
  "/root/repo/src/transforms/ScalarReplacement.cpp" "src/transforms/CMakeFiles/pdt_transforms.dir/ScalarReplacement.cpp.o" "gcc" "src/transforms/CMakeFiles/pdt_transforms.dir/ScalarReplacement.cpp.o.d"
  "/root/repo/src/transforms/Vectorizer.cpp" "src/transforms/CMakeFiles/pdt_transforms.dir/Vectorizer.cpp.o" "gcc" "src/transforms/CMakeFiles/pdt_transforms.dir/Vectorizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pdt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/pdt_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/pdt_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pdt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
