//===- tests/core/OracleTest.cpp ---------------------------------------------===//
//
// Unit tests for the brute-force enumeration oracle.
//
//===----------------------------------------------------------------------===//

#include "core/Oracle.h"

#include "../TestHelpers.h"

#include <gtest/gtest.h>

using namespace pdt;
using namespace pdt::test;

namespace {

LinearExpr idx(const char *N, int64_t C = 1) {
  return LinearExpr::index(N, C);
}

} // namespace

TEST(Oracle, SimpleRecurrence) {
  // <i+1, i> over [1, 5]: pairs (i, i+1) for i in [1, 4].
  LoopNestContext Ctx = singleLoop("i", 1, 5);
  std::vector<SubscriptPair> Subs = {
      SubscriptPair(idx("i") + LinearExpr(1), idx("i"), 0)};
  std::optional<OracleResult> R = enumerateDependences(Subs, Ctx);
  ASSERT_TRUE(R.has_value());
  EXPECT_TRUE(R->Dependent);
  EXPECT_EQ(R->PairCount, 4u);
  EXPECT_EQ(R->DirectionTuples.size(), 1u);
  EXPECT_TRUE(R->DirectionTuples.count({-1})); // '<'
  EXPECT_TRUE(R->DistanceVectors.count({1}));
}

TEST(Oracle, IndependentParity) {
  LoopNestContext Ctx = singleLoop("i", 1, 8);
  std::vector<SubscriptPair> Subs = {
      SubscriptPair(idx("i", 2), idx("i", 2) + LinearExpr(1), 0)};
  std::optional<OracleResult> R = enumerateDependences(Subs, Ctx);
  ASSERT_TRUE(R.has_value());
  EXPECT_FALSE(R->Dependent);
}

TEST(Oracle, MultiDimSimultaneity) {
  // A(i+1, i) vs A(i, i+1): each dimension alone has solutions, the
  // conjunction has none. The oracle sees the simultaneity.
  LoopNestContext Ctx = singleLoop("i", 1, 6);
  std::vector<SubscriptPair> Subs = {
      SubscriptPair(idx("i") + LinearExpr(1), idx("i"), 0),
      SubscriptPair(idx("i"), idx("i") + LinearExpr(1), 1)};
  std::optional<OracleResult> R = enumerateDependences(Subs, Ctx);
  ASSERT_TRUE(R.has_value());
  EXPECT_FALSE(R->Dependent);
}

TEST(Oracle, TriangularNestEnumeratesExactly) {
  // do i = 1, 4 / do j = 1, i: iteration count = 10, pairs = 100.
  LoopBounds I, J;
  I.Index = "i";
  I.Lower = LinearExpr(1);
  I.Upper = LinearExpr(4);
  J.Index = "j";
  J.Lower = LinearExpr(1);
  J.Upper = LinearExpr::index("i");
  LoopNestContext Ctx({I, J}, SymbolRangeMap());
  // <j, j>: every iteration pair with equal j.
  std::vector<SubscriptPair> Subs = {SubscriptPair(idx("j"), idx("j"), 0)};
  std::optional<OracleResult> R = enumerateDependences(Subs, Ctx);
  ASSERT_TRUE(R.has_value());
  EXPECT_TRUE(R->Dependent);
  // j ranges 1..i: pairs with j == j': sum over j of count(i >= j)^2 =
  // 4^2 + 3^2 + 2^2 + 1^2 = 30.
  EXPECT_EQ(R->PairCount, 30u);
}

TEST(Oracle, CrossingDirections) {
  // <i, -i + 7> over [1, 6]: i + i' = 7, distances odd: directions
  // both '<' and '>' but never '='.
  LoopNestContext Ctx = singleLoop("i", 1, 6);
  std::vector<SubscriptPair> Subs = {
      SubscriptPair(idx("i"), idx("i", -1) + LinearExpr(7), 0)};
  std::optional<OracleResult> R = enumerateDependences(Subs, Ctx);
  ASSERT_TRUE(R.has_value());
  EXPECT_TRUE(R->DirectionTuples.count({-1}));
  EXPECT_TRUE(R->DirectionTuples.count({1}));
  EXPECT_FALSE(R->DirectionTuples.count({0}));
}

TEST(Oracle, RejectsSymbolicCases) {
  LoopNestContext Ctx = singleLoop("i", 1, 5);
  std::vector<SubscriptPair> Subs = {
      SubscriptPair(idx("i") + LinearExpr::symbol("n"), idx("i"), 0)};
  EXPECT_FALSE(enumerateDependences(Subs, Ctx).has_value());
}

TEST(Oracle, RejectsUnboundedNests) {
  LoopNestContext Ctx = symbolicLoop("i");
  std::vector<SubscriptPair> Subs = {SubscriptPair(idx("i"), idx("i"), 0)};
  EXPECT_FALSE(enumerateDependences(Subs, Ctx).has_value());
}

TEST(Oracle, BudgetCap) {
  LoopNestContext Ctx = singleLoop("i", 1, 100);
  std::vector<SubscriptPair> Subs = {SubscriptPair(idx("i"), idx("i"), 0)};
  EXPECT_FALSE(enumerateDependences(Subs, Ctx, /*MaxPairs=*/50).has_value());
}

TEST(Oracle, VectorsAdmitTuple) {
  DependenceVector V(2);
  V.Directions = {DirLT, DirEQ | DirGT};
  std::vector<DependenceVector> Set = {V};
  EXPECT_TRUE(vectorsAdmitTuple(Set, {-1, 0}));
  EXPECT_TRUE(vectorsAdmitTuple(Set, {-1, 1}));
  EXPECT_FALSE(vectorsAdmitTuple(Set, {0, 0}));
  EXPECT_FALSE(vectorsAdmitTuple(Set, {-1, -1}));
}
