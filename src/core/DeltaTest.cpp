//===- core/DeltaTest.cpp - The Delta test for coupled groups -------------===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/DeltaTest.h"

#include "core/MIVTests.h"
#include "core/SIVTests.h"
#include "support/MathExtras.h"

#include <cassert>

using namespace pdt;

namespace {

/// Per-equation working state.
struct EqState {
  LinearExpr Eq;
  bool Resolved = false;
  /// Existence already verified for the current form (avoids
  /// re-counting RDIV applications across passes).
  bool TestedCurrentForm = false;
};

/// Accumulated per-index direction knowledge.
struct IndexInfo {
  DirectionSet Dirs = DirAll;
  std::optional<int64_t> Distance;
};

/// Does the constraint's point survive the index's iteration range?
bool pointMayBeInRange(const Constraint &C, const Interval &Range) {
  assert(C.kind() == Constraint::Kind::Point);
  auto Out = [&Range](int64_t V) {
    return (Range.lower() && V < *Range.lower()) ||
           (Range.upper() && V > *Range.upper());
  };
  return !Out(C.pointX()) && !Out(C.pointY());
}

/// Rewrites \p Eq under the current constraint map: distance
/// constraints replace the sink occurrence i' by i + d, point
/// constraints pin both occurrences, and axis-parallel lines pin one
/// side. This is the paper's constraint propagation (section 5.3),
/// restricted to the forms PFC propagates.
LinearExpr propagateInto(const LinearExpr &Eq,
                         const std::map<std::string, Constraint> &Cons) {
  LinearExpr New = Eq;
  for (const auto &[Index, C] : Cons) {
    std::string Sink = sinkName(Index);
    switch (C.kind()) {
    case Constraint::Kind::Distance:
      if (New.usesIndex(Sink))
        New = New.substituteIndex(
            Sink, LinearExpr::index(Index) + LinearExpr(C.getDistance()));
      break;
    case Constraint::Kind::Point:
      if (New.usesIndex(Index))
        New = New.substituteIndex(Index, LinearExpr(C.pointX()));
      if (New.usesIndex(Sink))
        New = New.substituteIndex(Sink, LinearExpr(C.pointY()));
      break;
    case Constraint::Kind::Line: {
      // Axis-parallel lines pin one occurrence: a*i = c or b*i' = c.
      int64_t A = C.lineA(), B = C.lineB(), CC = C.lineC();
      if (B == 0 && A != 0 && dividesExactly(CC, A) && New.usesIndex(Index))
        New = New.substituteIndex(Index, LinearExpr(CC / A));
      else if (A == 0 && B != 0 && dividesExactly(CC, B) &&
               New.usesIndex(Sink))
        New = New.substituteIndex(Sink, LinearExpr(CC / B));
      break;
    }
    case Constraint::Kind::Any:
    case Constraint::Kind::Empty:
      break;
    }
  }
  return New;
}

/// A "distance-form" RDIV equation p - q' = K (source index p, sink
/// index q).
struct RDIVRelation {
  std::string SrcIndex;
  std::string SinkIndex;
  int64_t Offset; ///< p - q' = Offset.
  unsigned EqPos;
};

/// Matches ca*p + cb*q' + C = 0 with cb == -ca and ca | C, where p is
/// untagged and q' is tagged (distinct bases guaranteed by shape).
std::optional<RDIVRelation> matchRDIVRelation(const LinearExpr &Eq,
                                              unsigned Pos) {
  const auto &Terms = Eq.indexTerms();
  if (Terms.size() != 2)
    return std::nullopt;
  auto It = Terms.begin();
  const auto &[VarA, CoeffA] = *It;
  ++It;
  const auto &[VarB, CoeffB] = *It;
  // Need exactly one source-tagged and one sink-tagged variable.
  const std::string *Src = nullptr, *Snk = nullptr;
  int64_t CSrc = 0, CSnk = 0;
  if (!isSinkName(VarA) && isSinkName(VarB)) {
    Src = &VarA;
    Snk = &VarB;
    CSrc = CoeffA;
    CSnk = CoeffB;
  } else if (isSinkName(VarA) && !isSinkName(VarB)) {
    Src = &VarB;
    Snk = &VarA;
    CSrc = CoeffB;
    CSnk = CoeffA;
  } else {
    return std::nullopt;
  }
  if (CSrc == INT64_MIN || Eq.getConstant() == INT64_MIN)
    return std::nullopt; // Negations below would overflow (UB).
  if (CSnk != -CSrc)
    return std::nullopt;
  // Symbolic invariant parts are not propagated.
  if (!Eq.symbolTerms().empty())
    return std::nullopt;
  if (!dividesExactly(Eq.getConstant(), CSrc))
    return std::nullopt;
  // CSrc*p - CSrc*q' + C = 0  =>  p - q' = -C / CSrc.
  RDIVRelation R;
  R.SrcIndex = *Src;
  R.SinkIndex = baseName(*Snk);
  R.Offset = -Eq.getConstant() / CSrc;
  R.EqPos = Pos;
  return R;
}

/// Direction for a distance sign (+ -> '<').
DirectionSet dirOfSign(int Sign) {
  if (Sign > 0)
    return DirLT;
  if (Sign < 0)
    return DirGT;
  return DirEQ;
}

} // namespace

DeltaResult pdt::runDeltaTest(const std::vector<SubscriptPair> &Group,
                              const LoopNestContext &Ctx, TestStats *Stats,
                              std::string *Trace) {
  DeltaResult Result;
  if (Stats) {
    Stats->noteApplication(TestKind::Delta);
    ++Stats->CoupledGroups;
  }
  auto Log = [Trace](const std::string &S) {
    if (Trace) {
      *Trace += S;
      *Trace += "\n";
    }
  };

  std::vector<EqState> Eqs;
  Eqs.reserve(Group.size());
  for (const SubscriptPair &P : Group) {
    Eqs.push_back({P.equation(), false, false});
    Log("subscript " + P.str() + "  =>  " + Eqs.back().Eq.str() + " = 0");
  }

  std::map<std::string, Constraint> &Cons = Result.Constraints;
  std::map<std::string, IndexInfo> Info;
  bool AllExact = true;

  auto Independent = [&](TestKind By) {
    Result.TheVerdict = Verdict::Independent;
    Result.DecidedBy = By;
    Result.Exact = true;
    Result.Vectors.clear();
    if (Stats)
      Stats->noteIndependence(By);
    Log(std::string("independent (") + testKindName(By) + ")");
    return Result;
  };

  const unsigned MaxPasses = 8;
  bool Changed = true;
  while (Changed && Result.Passes < MaxPasses) {
    Changed = false;
    ++Result.Passes;
    Log("-- pass " + std::to_string(Result.Passes));

    // Phase 1: exact single-subscript tests on everything testable.
    for (EqState &S : Eqs) {
      if (S.Resolved || S.TestedCurrentForm)
        continue;
      SubscriptShape Shape = shapeOfEquation(S.Eq);
      if (Shape == SubscriptShape::GeneralMIV)
        continue;
      S.TestedCurrentForm = true;

      if (Shape == SubscriptShape::RDIV) {
        SIVResult R = testRDIV(S.Eq, Ctx, Stats);
        Log("  RDIV " + S.Eq.str() + ": verdict " +
            (R.TheVerdict == Verdict::Independent ? "independent" : "maybe"));
        if (R.TheVerdict == Verdict::Independent)
          return Independent(R.Test);
        // Left unresolved: constraint propagation or the RDIV pair
        // logic below may still reduce it.
        continue;
      }

      SIVResult R = Shape == SubscriptShape::ZIV ? testZIV(S.Eq, Ctx, Stats)
                                                 : testSIV(S.Eq, Ctx, Stats);
      Log(std::string("  ") + testKindName(R.Test) + " on " + S.Eq.str() +
          " = 0");
      if (R.TheVerdict == Verdict::Independent)
        return Independent(R.Test);
      S.Resolved = true;
      if (!R.Exact)
        AllExact = false;
      if (R.Index.empty())
        continue; // ZIV: no index information.

      // Merge direction knowledge.
      IndexInfo &II = Info[R.Index];
      II.Dirs &= R.Directions;
      if (R.Distance) {
        if (II.Distance && *II.Distance != *R.Distance)
          return Independent(TestKind::Delta);
        II.Distance = R.Distance;
      }
      if (II.Dirs == DirNone)
        return Independent(TestKind::Delta);

      // Intersect the constraint lattice.
      Constraint &Slot =
          Cons.try_emplace(R.Index, Constraint::any()).first->second;
      Constraint Met = Slot.intersect(R.IndexConstraint);
      if (Met != Slot) {
        Log("    constraint on " + R.Index + ": " + Slot.str() + "  ^  " +
            R.IndexConstraint.str() + "  =  " + Met.str());
        Slot = Met;
        Changed = true;
      }
      if (Slot.isEmpty())
        return Independent(TestKind::Delta);
      if (Slot.kind() == Constraint::Kind::Point &&
          !pointMayBeInRange(Slot, Ctx.indexRange(R.Index)))
        return Independent(TestKind::Delta);
    }

    if (!Changed)
      break;

    // Phase 2: propagate constraints into the unresolved subscripts;
    // any rewrite re-arms testing of the (possibly simpler) form.
    for (EqState &S : Eqs) {
      if (S.Resolved)
        continue;
      LinearExpr New = propagateInto(S.Eq, Cons);
      if (New != S.Eq) {
        Log("  propagate: " + S.Eq.str() + "  ->  " + New.str());
        S.Eq = New;
        S.TestedCurrentForm = false;
      }
    }
  }

  // Phase 3: coupled RDIV pairs (section 5.3.2). Two crossed
  // distance-form relations p - q' = k1 and q - p' = k2 force
  // d_p + d_q = -(k1 + k2), which correlates the two levels.
  std::vector<std::vector<DependenceVector>> CorrelatedSets;
  {
    std::vector<RDIVRelation> Relations;
    for (unsigned I = 0; I != Eqs.size(); ++I) {
      if (Eqs[I].Resolved)
        continue;
      if (shapeOfEquation(Eqs[I].Eq) != SubscriptShape::RDIV)
        continue;
      if (std::optional<RDIVRelation> Rel = matchRDIVRelation(Eqs[I].Eq, I))
        Relations.push_back(*Rel);
    }
    for (unsigned A = 0; A != Relations.size(); ++A) {
      for (unsigned B = A + 1; B != Relations.size(); ++B) {
        const RDIVRelation &R1 = Relations[A];
        const RDIVRelation &R2 = Relations[B];
        if (R1.SrcIndex != R2.SinkIndex || R1.SinkIndex != R2.SrcIndex)
          continue;
        std::optional<unsigned> LP = Ctx.levelOf(R1.SrcIndex);
        std::optional<unsigned> LQ = Ctx.levelOf(R1.SinkIndex);
        if (!LP || !LQ)
          continue;
        int64_t K = -(R1.Offset + R2.Offset);
        Log("  RDIV pair on (" + R1.SrcIndex + ", " + R1.SinkIndex +
            "): d_" + R1.SrcIndex + " + d_" + R1.SinkIndex + " = " +
            std::to_string(K));
        // Enumerate sign pairs (s1, s2) compatible with d1 + d2 = K.
        std::vector<DependenceVector> Set;
        for (int S1 : {1, 0, -1}) {
          for (int S2 : {1, 0, -1}) {
            // Feasible iff some integers with these signs sum to K.
            bool Feasible;
            if (S1 == 0 && S2 == 0)
              Feasible = K == 0;
            else if (S1 == 0)
              Feasible = signOf(K) == S2;
            else if (S2 == 0)
              Feasible = signOf(K) == S1;
            else if (S1 == S2)
              Feasible = (S1 > 0) ? K >= 2 : K <= -2;
            else
              Feasible = true; // Opposite signs reach any sum.
            if (!Feasible)
              continue;
            DependenceVector V(Ctx.depth());
            V.Directions[*LP] = dirOfSign(S1);
            V.Directions[*LQ] = dirOfSign(S2);
            if (S1 == 0 && S2 != 0)
              V.Distances[*LQ] = K;
            if (S2 == 0 && S1 != 0)
              V.Distances[*LP] = K;
            if (S1 == 0)
              V.Distances[*LP] = 0;
            if (S2 == 0)
              V.Distances[*LQ] = 0;
            Set.push_back(std::move(V));
          }
        }
        if (Set.empty())
          return Independent(TestKind::Delta);
        CorrelatedSets.push_back(std::move(Set));
        Eqs[R1.EqPos].Resolved = true;
        Eqs[R2.EqPos].Resolved = true;
        // Directions are correlated but the distances are not pinned.
        AllExact = false;
      }
    }
  }

  // Phase 4: MIV fallback for whatever survived propagation.
  std::vector<std::vector<DependenceVector>> MIVSets;
  for (EqState &S : Eqs) {
    if (S.Resolved)
      continue;
    if (shapeOfEquation(S.Eq) == SubscriptShape::ZIV) {
      // Propagation emptied it without a retest pass; test now.
      SIVResult R = testZIV(S.Eq, Ctx, Stats);
      if (R.TheVerdict == Verdict::Independent)
        return Independent(R.Test);
      if (!R.Exact)
        AllExact = false;
      continue;
    }
    Result.ResidualMIV = true;
    AllExact = false;
    MIVResult M = testMIV(S.Eq, Ctx, Stats);
    if (M.TheVerdict == Verdict::Independent)
      return Independent(M.Test);
    if (!M.Vectors.empty())
      MIVSets.push_back(std::move(M.Vectors));
  }
  if (Stats && Result.ResidualMIV)
    ++Stats->GroupsWithResidualMIV;

  // Assemble the surviving dependence vectors.
  std::vector<DependenceVector> Vectors{DependenceVector(Ctx.depth())};
  for (const auto &[Index, II] : Info) {
    std::optional<unsigned> Level = Ctx.levelOf(Index);
    if (!Level)
      continue;
    DependenceVector Filter(Ctx.depth());
    Filter.Directions[*Level] = II.Dirs;
    Filter.Distances[*Level] = II.Distance;
    Vectors = intersectVectorSet(Vectors, Filter);
  }
  for (const auto &[Index, C] : Cons) {
    std::optional<unsigned> Level = Ctx.levelOf(Index);
    if (!Level)
      continue;
    DependenceVector Filter(Ctx.depth());
    if (C.kind() == Constraint::Kind::Distance) {
      Filter.Distances[*Level] = C.getDistance();
      Filter.Directions[*Level] = directionForDistance(C.getDistance());
    } else if (C.kind() == Constraint::Kind::Point) {
      int64_t D = C.pointY() - C.pointX();
      Filter.Distances[*Level] = D;
      Filter.Directions[*Level] = directionForDistance(D);
    } else {
      continue;
    }
    Vectors = intersectVectorSet(Vectors, Filter);
  }
  auto ApplySet = [&Vectors](const std::vector<DependenceVector> &Set) {
    std::vector<DependenceVector> Out;
    for (const DependenceVector &V : Vectors) {
      for (const DependenceVector &F : Set) {
        DependenceVector Combined = V.intersectWith(F);
        if (!Combined.isEmpty())
          Out.push_back(std::move(Combined));
      }
    }
    Vectors = std::move(Out);
  };
  for (const auto &Set : CorrelatedSets)
    ApplySet(Set);
  for (const auto &Set : MIVSets)
    ApplySet(Set);

  if (Vectors.empty())
    return Independent(TestKind::Delta);

  Result.Vectors = std::move(Vectors);
  Result.Exact = AllExact;
  Result.TheVerdict = AllExact ? Verdict::Dependent : Verdict::Maybe;
  if (Trace) {
    std::string VS;
    for (const DependenceVector &V : Result.Vectors) {
      if (!VS.empty())
        VS += " ";
      VS += V.str();
    }
    Log("result: " + VS);
  }
  return Result;
}
