//===- driver/Interpreter.h - Reference interpreter -------------*- C++ -*-===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A reference interpreter for the input language. It exists to close
/// the loop on two guarantees no static test can give:
///
///  * semantic preservation: loop normalization, induction-variable
///    substitution, peeling, and splitting must leave the sequence of
///    array writes (and the final memory) unchanged;
///  * end-to-end dependence soundness: every pair of dynamic accesses
///    that actually touch the same element (with at least one write)
///    must be covered by an edge of the dependence graph, with the
///    observed per-level direction admitted by the edge's vector.
///
/// Semantics: integers are int64; uninitialized scalars take their
/// symbol value (if provided) or 0; uninitialized array elements read
/// 0; loops evaluate bounds and step once on entry, Fortran-style.
/// Every array access is recorded in an execution trace whose per-
/// statement order matches AccessCollector's order exactly, so trace
/// entries carry the same access indices the dependence graph uses.
///
//===----------------------------------------------------------------------===//

#ifndef PDT_DRIVER_INTERPRETER_H
#define PDT_DRIVER_INTERPRETER_H

#include "ir/AST.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pdt {

/// Interpreter configuration.
struct InterpreterOptions {
  /// Values for symbolic constants (e.g. {"n", 10}).
  std::map<std::string, int64_t> Symbols;
  /// Abort after this many recorded accesses (runaway guard).
  uint64_t MaxAccesses = 1'000'000;
};

/// One dynamic array access.
struct RecordedAccess {
  /// Index into collectAccesses(program) — the same identity the
  /// dependence graph's edges use.
  unsigned AccessIndex = 0;
  /// Array accessed.
  std::string Array;
  /// Concrete subscript values.
  std::vector<int64_t> Indices;
  /// Values of the access's enclosing loop indices, outermost first.
  std::vector<int64_t> Iteration;
  bool IsWrite = false;
  /// Value written (writes only).
  int64_t Value = 0;
};

/// Result of one execution.
struct ExecutionTrace {
  bool OK = false;
  std::string Error;
  /// Every array access in execution order.
  std::vector<RecordedAccess> Accesses;
  /// Final array memory.
  std::map<std::string, std::map<std::vector<int64_t>, int64_t>> Memory;
  /// Final scalar values (loop indices excluded).
  std::map<std::string, int64_t> Scalars;

  /// The subsequence of array writes as (array, indices, value) —
  /// the transform-invariant observable.
  std::vector<std::tuple<std::string, std::vector<int64_t>, int64_t>>
  writeSequence() const;
};

/// Executes \p P under \p Options.
ExecutionTrace interpret(const Program &P,
                         const InterpreterOptions &Options = {});

} // namespace pdt

#endif // PDT_DRIVER_INTERPRETER_H
