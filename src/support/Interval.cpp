//===- support/Interval.cpp - Possibly-unbounded integer intervals --------===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Interval.h"

#include "support/MathExtras.h"

#include <algorithm>
#include <cassert>

using namespace pdt;

/// Adds two finite bounds, saturating at the int64 range. Saturation
/// keeps interval arithmetic conservative: a saturated bound can only
/// widen an interval, never shrink it.
static int64_t saturatingAdd(int64_t A, int64_t B) {
  if (std::optional<int64_t> R = checkedAdd(A, B))
    return *R;
  return (A > 0) ? INT64_MAX : INT64_MIN;
}

static int64_t saturatingMul(int64_t A, int64_t B) {
  if (std::optional<int64_t> R = checkedMul(A, B))
    return *R;
  return (signOf(A) * signOf(B) > 0) ? INT64_MAX : INT64_MIN;
}

/// Negates a finite bound, saturating at INT64_MAX for INT64_MIN
/// (plain negation would be UB). Saturation only widens the interval,
/// which keeps downstream tests conservative.
static int64_t saturatingNeg(int64_t A) {
  return A == INT64_MIN ? INT64_MAX : -A;
}

std::optional<int64_t> Interval::size() const {
  if (!isFinite())
    return std::nullopt;
  if (isEmpty())
    return 0;
  return saturatingAdd(saturatingAdd(*Hi, -*Lo), 1);
}

Interval Interval::operator+(const Interval &RHS) const {
  if (isEmpty() || RHS.isEmpty())
    return empty();
  Bound NewLo, NewHi;
  if (Lo && RHS.Lo)
    NewLo = saturatingAdd(*Lo, *RHS.Lo);
  if (Hi && RHS.Hi)
    NewHi = saturatingAdd(*Hi, *RHS.Hi);
  return Interval(NewLo, NewHi);
}

Interval Interval::operator-(const Interval &RHS) const {
  return *this + RHS.negate();
}

Interval Interval::negate() const {
  if (isEmpty())
    return empty();
  Bound NewLo, NewHi;
  if (Hi)
    NewLo = saturatingNeg(*Hi);
  if (Lo)
    NewHi = saturatingNeg(*Lo);
  return Interval(NewLo, NewHi);
}

Interval Interval::scale(int64_t Factor) const {
  if (isEmpty())
    return empty();
  if (Factor == 0)
    return point(0);
  Bound A, B;
  if (Lo)
    A = saturatingMul(*Lo, Factor);
  if (Hi)
    B = saturatingMul(*Hi, Factor);
  if (Factor > 0)
    return Interval(A, B);
  // Negative factor swaps the roles of the endpoints; an infinite
  // endpoint stays infinite on the opposite side.
  return Interval(B, A);
}

Interval Interval::intersect(const Interval &RHS) const {
  if (isEmpty() || RHS.isEmpty())
    return empty();
  Bound NewLo = Lo;
  if (RHS.Lo && (!NewLo || *RHS.Lo > *NewLo))
    NewLo = RHS.Lo;
  Bound NewHi = Hi;
  if (RHS.Hi && (!NewHi || *RHS.Hi < *NewHi))
    NewHi = RHS.Hi;
  return Interval(NewLo, NewHi);
}

Interval Interval::hull(const Interval &RHS) const {
  if (isEmpty())
    return RHS;
  if (RHS.isEmpty())
    return *this;
  Bound NewLo;
  if (Lo && RHS.Lo)
    NewLo = std::min(*Lo, *RHS.Lo);
  Bound NewHi;
  if (Hi && RHS.Hi)
    NewHi = std::max(*Hi, *RHS.Hi);
  return Interval(NewLo, NewHi);
}

std::string Interval::str() const {
  if (isEmpty())
    return "[empty]";
  std::string S = "[";
  S += Lo ? std::to_string(*Lo) : "-inf";
  S += ", ";
  S += Hi ? std::to_string(*Hi) : "+inf";
  S += "]";
  return S;
}
