//===- fuzz/Shrinker.h - Delta-debugging kernel reducer ---------*- C++ -*-===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Greedy delta debugging over the kernel structure: repeatedly try
/// every one-step reduction (drop a statement, drop a loop, drop a
/// dimension, concretize a symbol, zero or simplify a coefficient,
/// halve a constant, tighten a bound) and accept the first one on
/// which the caller's predicate still reproduces, until no single
/// reduction reproduces. The result is locally minimal with respect to
/// the reduction set: shrinking it one more step loses the failure.
///
/// The predicate sees complete, well-formed kernels only — every
/// reduction keeps the rank uniform, at least one loop, at least one
/// statement, and the symbol table consistent with the structure.
///
//===----------------------------------------------------------------------===//

#ifndef PDT_FUZZ_SHRINKER_H
#define PDT_FUZZ_SHRINKER_H

#include "fuzz/FuzzKernel.h"

#include <functional>

namespace pdt {

/// Returns true when the kernel still exhibits the failure being
/// chased. Must be deterministic for the shrink to terminate at a
/// local minimum.
using FuzzPredicate = std::function<bool(const FuzzKernel &)>;

/// Every one-step reduction of \p K, each a complete well-formed
/// kernel strictly smaller than \p K. Exposed so the minimality test
/// can verify that no candidate of a shrunk kernel reproduces.
std::vector<FuzzKernel> fuzzReductionCandidates(const FuzzKernel &K);

struct FuzzShrinkResult {
  FuzzKernel Kernel;       ///< The locally minimal kernel.
  unsigned StepsTried = 0; ///< Predicate evaluations spent.
  unsigned Reductions = 0; ///< Accepted reduction steps.
  /// False when MaxSteps ran out before reaching a local minimum (the
  /// kernel is still the smallest reproducer found).
  bool Minimal = true;
};

/// Shrinks \p K while \p StillFails holds. \p K itself must satisfy
/// the predicate (asserted). \p MaxSteps bounds predicate evaluations,
/// keeping the shrink budget-aware.
FuzzShrinkResult shrinkFuzzKernel(FuzzKernel K, const FuzzPredicate &StillFails,
                                  unsigned MaxSteps = 5000);

} // namespace pdt

#endif // PDT_FUZZ_SHRINKER_H
