//===- parser/Lexer.cpp - Lexer for the input language --------------------===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//

#include "parser/Lexer.h"

#include <cctype>
#include <stdexcept>

using namespace pdt;

const char *pdt::tokenKindName(Token::Kind K) {
  switch (K) {
  case Token::Kind::EndOfFile:
    return "end of file";
  case Token::Kind::Newline:
    return "end of line";
  case Token::Kind::Identifier:
    return "identifier";
  case Token::Kind::Number:
    return "number";
  case Token::Kind::Plus:
    return "'+'";
  case Token::Kind::Minus:
    return "'-'";
  case Token::Kind::Star:
    return "'*'";
  case Token::Kind::Slash:
    return "'/'";
  case Token::Kind::LParen:
    return "'('";
  case Token::Kind::RParen:
    return "')'";
  case Token::Kind::Comma:
    return "','";
  case Token::Kind::Equal:
    return "'='";
  case Token::Kind::Unknown:
    return "unknown character";
  }
  return "token";
}

Lexer::Lexer(std::string Source) : Source(std::move(Source)) {}

char Lexer::advance() {
  char C = Source[Pos++];
  if (C == '\n') {
    ++Line;
    Column = 1;
  } else {
    ++Column;
  }
  return C;
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  while (true) {
    Token T = lexToken();
    bool Done = T.is(Token::Kind::EndOfFile);
    // Collapse runs of newlines and drop a leading newline; the parser
    // only cares that statements are separated.
    if (T.is(Token::Kind::Newline) &&
        (Tokens.empty() || Tokens.back().is(Token::Kind::Newline))) {
      if (Done)
        break;
      continue;
    }
    Tokens.push_back(std::move(T));
    if (Done)
      break;
  }
  return Tokens;
}

Token Lexer::lexToken() {
  // Skip horizontal whitespace and comments.
  while (Pos < Source.size()) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r') {
      advance();
      continue;
    }
    if (C == '!') {
      while (Pos < Source.size() && peek() != '\n')
        advance();
      continue;
    }
    break;
  }

  Token T;
  T.Loc = here();
  if (Pos >= Source.size()) {
    T.TheKind = Token::Kind::EndOfFile;
    return T;
  }

  char C = advance();
  switch (C) {
  case '\n':
    T.TheKind = Token::Kind::Newline;
    return T;
  case '+':
    T.TheKind = Token::Kind::Plus;
    return T;
  case '-':
    T.TheKind = Token::Kind::Minus;
    return T;
  case '*':
    T.TheKind = Token::Kind::Star;
    return T;
  case '/':
    T.TheKind = Token::Kind::Slash;
    return T;
  case '(':
    T.TheKind = Token::Kind::LParen;
    return T;
  case ')':
    T.TheKind = Token::Kind::RParen;
    return T;
  case ',':
    T.TheKind = Token::Kind::Comma;
    return T;
  case '=':
    T.TheKind = Token::Kind::Equal;
    return T;
  default:
    break;
  }

  if (std::isdigit(static_cast<unsigned char>(C))) {
    T.TheKind = Token::Kind::Number;
    T.Spelling.push_back(C);
    while (Pos < Source.size() &&
           std::isdigit(static_cast<unsigned char>(peek())))
      T.Spelling.push_back(advance());
    try {
      T.Value = std::stoll(T.Spelling);
    } catch (const std::out_of_range &) {
      // A literal beyond int64 becomes an unknown token: the parser
      // diagnoses it in place instead of the lexer throwing out of
      // parseProgram.
      T.TheKind = Token::Kind::Unknown;
    }
    return T;
  }

  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
    T.TheKind = Token::Kind::Identifier;
    T.Spelling.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(C))));
    while (Pos < Source.size()) {
      char N = peek();
      if (!std::isalnum(static_cast<unsigned char>(N)) && N != '_')
        break;
      T.Spelling.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(N))));
      advance();
    }
    return T;
  }

  T.TheKind = Token::Kind::Unknown;
  T.Spelling.push_back(C);
  return T;
}
