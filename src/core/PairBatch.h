//===- core/PairBatch.h - Batched SoA pair-testing plan ---------*- C++ -*-===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The batched fast path for the tests that decide the overwhelming
/// majority of subscript pairs (paper Tables 1-3): ZIV and strong SIV
/// with pure-constant additive parts. After lowering, the planner
/// classifies each pair's subscripts; pairs whose every dimension is a
/// constant-difference ZIV or a separable strong SIV are packed into
/// one structure-of-arrays buffer (coefficient, constant difference,
/// distance-range span as contiguous int64_t arrays) and decided
/// thousands at a time by a tight branch-free kernel (BatchedSIV.h).
/// Everything else — symbolic terms, weak/general SIV, MIV, coupled
/// groups, overflow-risk coefficients, mismatched dimensionality —
/// falls back to the scalar testZIV/testSIV path, so the batched and
/// scalar verdicts are bit-identical by construction (the differential
/// suite and the fuzzer cross-check this).
///
/// Batching is controlled by PDT_BATCH (on/off/auto, default auto), a
/// thread-local programmatic override for tests and the fuzzer's
/// cross-check, and the PDT_BATCHING compile option (the batched-off
/// CMake preset forces the scalar path for the whole build).
///
//===----------------------------------------------------------------------===//

#ifndef PDT_CORE_PAIRBATCH_H
#define PDT_CORE_PAIRBATCH_H

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace pdt {

/// How the graph builder routes eligible pairs.
enum class BatchMode {
  Auto, ///< Batch when the pair population is large enough to pay off.
  On,   ///< Batch every eligible pair (tests force coverage this way).
  Off,  ///< Scalar path only.
};

/// The effective mode: the thread-local override when set, else the
/// PDT_BATCH environment variable (on/off/auto, hardened parsing),
/// else Auto. Read once per graph build.
BatchMode batchMode();

/// Sets (or clears, with nullopt) the calling thread's mode override.
/// Thread-local so fuzz campaigns can cross-check batched-vs-scalar on
/// worker threads without racing each other.
void setBatchModeOverride(std::optional<BatchMode> Mode);

/// False when the build compiled the fast path out (PDT_BATCHING=OFF);
/// the graph builder then always takes the scalar path regardless of
/// mode.
bool batchingCompiledIn();

/// The structure-of-arrays batch for one decide pass. Entries are
/// subscript dimensions; a pair owns the contiguous run
/// [PairRecord::First, First + Count). A ZIV dimension with constant
/// difference C is encoded as the degenerate strong-SIV entry
/// {Coeff=1, Const=C, Span=0}: the shared kernel then yields
/// independent iff C != 0, exactly the scalar ZIV verdict.
struct PairBatchPlan {
  // Inputs, packed by the planner.
  std::vector<int64_t> Coeff; ///< Strong-SIV coefficient a (never 0).
  std::vector<int64_t> Const; ///< Constant difference C (never INT64_MIN).
  /// Upper bound of the iteration-distance range [0, U-L]; INT64_MAX
  /// when the range is unbounded above (the bounds check then never
  /// rejects, matching the scalar test).
  std::vector<int64_t> Span;
  std::vector<uint32_t> Level;     ///< Loop level of the SIV index.
  std::vector<uint8_t> IsSIV;      ///< 1 = strong SIV, 0 = ZIV.
  std::vector<uint8_t> ExactEntry; ///< Distance range is finite.

  // Outputs, filled by decidePairBatch.
  std::vector<uint8_t> Indep; ///< Entry proves independence.
  std::vector<int64_t> Dist;  ///< Dependence distance C / a.

  /// One planned pair: its slot in the builder's per-pair result array
  /// and its entry run.
  struct PairRecord {
    size_t PairIdx;
    unsigned I, J;
    uint32_t First;
    uint32_t Count;
    uint32_t Depth; ///< Common-nest depth, for the dependence vector.
  };
  std::vector<PairRecord> Pairs;

  size_t numEntries() const { return Coeff.size(); }
};

} // namespace pdt

#endif // PDT_CORE_PAIRBATCH_H
