//===- fuzz/Repro.cpp - Self-contained repro files ------------------------===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Repro.h"

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace pdt;

std::string
pdt::renderFuzzRepro(const FuzzKernel &K,
                     const std::vector<FuzzDiscrepancy> &Findings) {
  std::ostringstream OS;
  for (const FuzzDiscrepancy &F : Findings) {
    OS << "! pdt-fuzz-finding kind=" << fuzzDiscrepancyKindName(F.Kind);
    if (F.SrcAccess != ~0u)
      OS << " pair=" << F.SrcAccess << "->" << F.SnkAccess;
    OS << "\n!   " << F.Detail << "\n";
  }
  OS << "! replay: depfuzz --replay " << fuzzReproFileName(K) << "\n";
  OS << fuzzKernelToSource(K);
  return OS.str();
}

bool pdt::writeFuzzReproFile(const std::string &Path, const FuzzKernel &K,
                             const std::vector<FuzzDiscrepancy> &Findings) {
  std::filesystem::path Parent = std::filesystem::path(Path).parent_path();
  if (!Parent.empty()) {
    std::error_code EC;
    std::filesystem::create_directories(Parent, EC);
  }
  std::ofstream OS(Path);
  if (!OS)
    return false;
  OS << renderFuzzRepro(K, Findings);
  return static_cast<bool>(OS);
}

std::optional<FuzzKernel> pdt::loadFuzzReproFile(const std::string &Path) {
  std::ifstream IS(Path);
  if (!IS)
    return std::nullopt;
  std::ostringstream Buffer;
  Buffer << IS.rdbuf();
  return parseFuzzKernelSource(Buffer.str());
}

std::string pdt::fuzzReproFileName(const FuzzKernel &K) {
  return "fuzz-repro-" + std::to_string(K.Seed) + "-" +
         std::to_string(K.Index) + ".pdt";
}
