# Empty dependencies file for pdt_tests.
# This may be replaced when dependencies are built.
