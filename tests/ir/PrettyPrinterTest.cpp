//===- tests/ir/PrettyPrinterTest.cpp ------------------------------------------===//
//
// Unit tests for expression/statement rendering and the constant
// expression evaluator.
//
//===----------------------------------------------------------------------===//

#include "ir/PrettyPrinter.h"

#include "ir/AST.h"

#include <gtest/gtest.h>

using namespace pdt;

class PrinterTest : public ::testing::Test {
protected:
  ASTContext Ctx;
};

TEST_F(PrinterTest, Atoms) {
  EXPECT_EQ(exprToString(Ctx.getInt(42)), "42");
  EXPECT_EQ(exprToString(Ctx.getInt(-3)), "-3");
  EXPECT_EQ(exprToString(Ctx.getVar("n")), "n");
}

TEST_F(PrinterTest, PrecedenceParens) {
  // (1 + 2) * 3 needs parens; 1 + 2*3 does not.
  const Expr *Sum = Ctx.getAdd(Ctx.getInt(1), Ctx.getInt(2));
  EXPECT_EQ(exprToString(Ctx.getMul(Sum, Ctx.getInt(3))), "(1 + 2)*3");
  const Expr *Prod = Ctx.getMul(Ctx.getInt(2), Ctx.getInt(3));
  EXPECT_EQ(exprToString(Ctx.getAdd(Ctx.getInt(1), Prod)), "1 + 2*3");
}

TEST_F(PrinterTest, RightAssociativeSubtraction) {
  // 1 - (2 - 3) must keep its parens; (1 - 2) - 3 flattens.
  const Expr *Inner = Ctx.getSub(Ctx.getInt(2), Ctx.getInt(3));
  EXPECT_EQ(exprToString(Ctx.getSub(Ctx.getInt(1), Inner)), "1 - (2 - 3)");
  const Expr *Left = Ctx.getSub(Ctx.getSub(Ctx.getInt(1), Ctx.getInt(2)),
                                Ctx.getInt(3));
  EXPECT_EQ(exprToString(Left), "1 - 2 - 3");
}

TEST_F(PrinterTest, UnaryMinus) {
  EXPECT_EQ(exprToString(Ctx.getNeg(Ctx.getVar("i"))), "-i");
  EXPECT_EQ(exprToString(Ctx.getNeg(Ctx.getAdd(Ctx.getVar("i"),
                                               Ctx.getInt(1)))),
            "-(i + 1)");
}

TEST_F(PrinterTest, ArrayElements) {
  const Expr *E = Ctx.getArrayElement(
      "a", {Ctx.getAdd(Ctx.getVar("i"), Ctx.getInt(1)), Ctx.getVar("j")});
  EXPECT_EQ(exprToString(E), "a(i + 1, j)");
}

TEST_F(PrinterTest, StatementForms) {
  const auto *Target = Ctx.getArrayElement("a", {Ctx.getVar("i")});
  const Stmt *S = Ctx.createArrayAssign(Target, Ctx.getInt(0));
  EXPECT_EQ(stmtToString(S), "a(i) = 0\n");
  EXPECT_EQ(stmtToString(S, 2), "    a(i) = 0\n");
  const Stmt *Scalar = Ctx.createScalarAssign("t", Ctx.getVar("n"));
  EXPECT_EQ(stmtToString(Scalar), "t = n\n");
}

TEST_F(PrinterTest, LoopSuppressesUnitStep) {
  const Stmt *Body = Ctx.createScalarAssign("t", Ctx.getInt(0));
  const Stmt *Unit = Ctx.createDoLoop("i", Ctx.getInt(1), Ctx.getVar("n"),
                                      Ctx.getInt(1), {Body});
  EXPECT_EQ(stmtToString(Unit), "do i = 1, n\n  t = 0\nend do\n");
  const Stmt *Strided = Ctx.createDoLoop("i", Ctx.getInt(1), Ctx.getVar("n"),
                                         Ctx.getInt(2), {});
  EXPECT_EQ(stmtToString(Strided), "do i = 1, n, 2\nend do\n");
}

//===----------------------------------------------------------------------===//
// evaluateConstantExpr
//===----------------------------------------------------------------------===//

TEST_F(PrinterTest, ConstantEvaluation) {
  EXPECT_EQ(evaluateConstantExpr(Ctx.getInt(7)), std::optional<int64_t>(7));
  EXPECT_EQ(evaluateConstantExpr(Ctx.getNeg(Ctx.getInt(7))),
            std::optional<int64_t>(-7));
  EXPECT_EQ(evaluateConstantExpr(
                Ctx.getMul(Ctx.getAdd(Ctx.getInt(1), Ctx.getInt(2)),
                           Ctx.getInt(4))),
            std::optional<int64_t>(12));
  EXPECT_EQ(evaluateConstantExpr(Ctx.getVar("n")), std::nullopt);
  EXPECT_EQ(evaluateConstantExpr(
                Ctx.getAdd(Ctx.getVar("n"), Ctx.getInt(1))),
            std::nullopt);
}

TEST_F(PrinterTest, ConstantDivision) {
  EXPECT_EQ(evaluateConstantExpr(Ctx.getBinary(
                BinaryExpr::Opcode::Div, Ctx.getInt(6), Ctx.getInt(3))),
            std::optional<int64_t>(2));
  // Division truncates toward zero, as at run time.
  EXPECT_EQ(evaluateConstantExpr(Ctx.getBinary(
                BinaryExpr::Opcode::Div, Ctx.getInt(7), Ctx.getInt(3))),
            std::optional<int64_t>(2));
  EXPECT_EQ(evaluateConstantExpr(Ctx.getBinary(
                BinaryExpr::Opcode::Div, Ctx.getInt(7), Ctx.getInt(0))),
            std::nullopt);
}

TEST_F(PrinterTest, ConstantOverflow) {
  const Expr *Big = Ctx.getInt(INT64_MAX);
  EXPECT_EQ(evaluateConstantExpr(Ctx.getAdd(Big, Ctx.getInt(1))),
            std::nullopt);
}
