//===- bench/bench_x11_reqobs.cpp -----------------------------------------===//
//
// Experiment X11: the per-request observability contract under load.
// An in-process depserved serves the identical keep-alive workload
// twice — access log disarmed, then armed — and the bench gates on:
//
//   * byte identity: every armed response body must be byte-identical
//     to its disarmed twin (the request ID travels in the header, so
//     arming observability cannot perturb a single body byte);
//   * identity echo: every response must echo the client-supplied
//     X-PDT-Request-Id;
//   * exact accounting: armed, the pdt-access-v1 log must hold exactly
//     one line per answered request — cross-checked against the
//     client's count, the service's counters, and each line's ID;
//   * saturation accounting: on a one-worker zero-queue server whose
//     worker is pinned, every accept-time 429 must land in the log
//     too (lines with status 429 == the server's own Rejected429
//     counter — the accounting survives load shedding);
//   * overhead: armed per-request wall time must stay within 5% of
//     disarmed. Measured over alternating single-client disarmed/armed
//     leg pairs on a heavy kernel mix; per-request wall times are
//     pooled across legs per config and compared at the 10th
//     percentile, so scheduler preemption and writeback stalls on
//     small machines cannot masquerade as logging cost (asserted in
//     the full, non-smoke invocation only; timing is reported in
//     both).
//
// Writes BENCH_reqobs.json plus two pdt-report-v1 companions
// (BENCH_reqobs_disarmed.json / BENCH_reqobs_armed.json) over the
// identical workload: the depprof_reqobs_diff ctest replays the pair
// through the report differ (deterministic keys must match exactly;
// the *_ns keys ride the noise band), and depprof_reqobs_history
// appends the armed report to the perf ledger. Run with --smoke for
// the sub-second workload.
//
//===----------------------------------------------------------------------===//

#include "BenchMeta.h"

#include "driver/RunReport.h"
#include "serve/AccessLog.h"
#include "serve/Client.h"
#include "serve/Server.h"
#include "serve/Service.h"
#include "support/Json.h"
#include "support/Metrics.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

using namespace pdt;
using namespace pdt::serve;

namespace {

uint64_t nowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Client-side latency histogram with the Metrics::observeImpl
/// bucketing, so quantileNs() applies.
void record(MetricsSnapshot::Histogram &H, uint64_t Ns) {
  H.Count += 1;
  H.SumNs += Ns;
  H.MaxNs = std::max(H.MaxNs, Ns);
  unsigned Bucket = std::bit_width(Ns);
  if (Bucket >= HistoBuckets)
    Bucket = HistoBuckets - 1;
  H.Buckets[Bucket] += 1;
}

const std::vector<std::string> &corpusMix() {
  static const std::vector<std::string> Mix = {"daxpy", "daxpy_stride",
                                               "dscal", "ddot"};
  return Mix;
}

/// The overhead legs serve heavier, realistic analyses: the access
/// line is a fixed per-request cost, so gating its relative overhead
/// against the cheapest kernels in the corpus would measure the
/// workload, not the log.
const std::vector<std::string> &heavyMix() {
  static const std::vector<std::string> Mix = {"reduc_chol", "hqr2_backsub",
                                               "hqr_row", "tred2_sym"};
  return Mix;
}

std::string analyzeBody(const std::string &Kernel) {
  return "{\"corpus\":\"" + Kernel + "\"}";
}

/// The deterministic per-request ID both phases send, so the two wire
/// streams are byte-identical and the overhead delta isolates the
/// access log itself.
std::string requestId(unsigned Thread, unsigned Index) {
  return "x11-t" + std::to_string(Thread) + "-r" + std::to_string(Index);
}

struct PhaseOutcome {
  MetricsSnapshot::Histogram Latency;
  std::vector<uint64_t> SampleNs; ///< Exact per-request wall times.
  uint64_t Ok = 0;
  uint64_t BadStatus = 0;
  uint64_t EchoMisses = 0;  ///< Responses not echoing the sent ID.
  uint64_t Mismatches = 0;  ///< Bodies differing from the oracle.
  uint64_t TransportErrors = 0;
  uint64_t WallNs = 0;
  TestStats Accumulated;
  ServiceCounters Counters;
};

struct AccessLine {
  std::string Id;
  std::string Route;
  uint64_t Status = 0;
  uint64_t ReferencePairs = 0;
};

/// The body lines of a pdt-access-v1 file (header skipped; malformed
/// lines counted so the caller can gate on zero).
std::vector<AccessLine> loadAccessLines(const std::string &Path,
                                        uint64_t &Malformed) {
  std::vector<AccessLine> Out;
  std::ifstream File(Path);
  std::string Line;
  bool First = true;
  while (std::getline(File, Line)) {
    if (Line.empty())
      continue;
    std::optional<json::Value> V = json::parse(Line);
    if (!V) {
      ++Malformed;
      continue;
    }
    if (First) {
      First = false;
      if (V->stringAt("schema").value_or("") != "pdt-access-v1")
        ++Malformed;
      continue;
    }
    AccessLine L;
    L.Id = V->stringAt("id").value_or("");
    L.Route = V->stringAt("route").value_or("");
    L.Status = V->uintAt("status").value_or(0);
    if (const json::Value *Stats = V->find("stats"))
      L.ReferencePairs = Stats->uintAt("reference_pairs").value_or(0);
    Out.push_back(std::move(L));
  }
  return Out;
}

/// One full load phase against a fresh server: \p Clients threads,
/// \p PerClient requests each over keep-alive connections, every
/// request carrying a deterministic X-PDT-Request-Id. Bodies are
/// checked against \p Oracle (filled on the first phase).
PhaseOutcome runLoadPhase(unsigned Clients, unsigned PerClient,
                          std::map<std::string, std::string> &Oracle,
                          bool FillOracle, std::string *FatalError,
                          const std::vector<std::string> &Mix = corpusMix(),
                          bool Healthz = true) {
  PhaseOutcome Out;
  ServerConfig Cfg;
  Cfg.Port = 0;
  Cfg.Threads = Clients;
  Cfg.QueueCapacity = 16;
  Service Svc;
  Server Daemon(Cfg, Svc);
  std::string Error;
  if (!Daemon.start(&Error)) {
    *FatalError = "cannot start server: " + Error;
    return Out;
  }

  // Warmup primes the analyzer and (on the first phase) captures the
  // oracle bytes — outside the timed window and outside the armed
  // accounting (the access log is armed by the caller after warmup
  // would complete... it is armed for the whole server lifetime, so
  // warmup lines are accounted for via the service counters instead).
  {
    Client Warm;
    if (!Warm.connectTo(Daemon.port(), &Error)) {
      *FatalError = "warmup connect failed: " + Error;
      return Out;
    }
    for (const std::string &Kernel : Mix) {
      ClientResponse R;
      if (!Warm.post("/v1/analyze", analyzeBody(Kernel), R, &Error) ||
          R.Status != 200) {
        *FatalError = "warmup request for " + Kernel + " failed";
        return Out;
      }
      if (FillOracle)
        Oracle[Kernel] = R.Body;
      else if (R.Body != Oracle[Kernel])
        ++Out.Mismatches;
    }
  }

  std::vector<PhaseOutcome> PerThread(Clients);
  uint64_t T0 = nowNs();
  {
    std::vector<std::thread> Threads;
    Threads.reserve(Clients);
    for (unsigned T = 0; T != Clients; ++T)
      Threads.emplace_back([&, T] {
        PhaseOutcome &Mine = PerThread[T];
        Client C;
        if (!C.connectTo(Daemon.port())) {
          Mine.TransportErrors += PerClient;
          return;
        }
        for (unsigned I = 0; I != PerClient; ++I) {
          bool Health = Healthz && I % 8 == 7;
          const std::string &Kernel =
              Mix[(T + I) % Mix.size()];
          std::string Id = requestId(T, I);
          ClientResponse R;
          uint64_t S0 = nowNs();
          bool Sent =
              Health
                  ? C.request("GET", "/healthz", "", R, nullptr,
                              {{"X-PDT-Request-Id", Id}})
                  : C.request("POST", "/v1/analyze", analyzeBody(Kernel), R,
                              nullptr, {{"X-PDT-Request-Id", Id}});
          uint64_t S1 = nowNs();
          if (!Sent) {
            ++Mine.TransportErrors;
            if (!C.connectTo(Daemon.port()))
              return;
            continue;
          }
          record(Mine.Latency, S1 - S0);
          Mine.SampleNs.push_back(S1 - S0);
          if (R.Status != 200) {
            ++Mine.BadStatus;
            continue;
          }
          ++Mine.Ok;
          if (R.RequestId != Id)
            ++Mine.EchoMisses;
          if (!Health && R.Body != Oracle[Kernel])
            ++Mine.Mismatches;
        }
      });
    for (std::thread &T : Threads)
      T.join();
  }
  Out.WallNs = nowNs() - T0;
  for (const PhaseOutcome &M : PerThread) {
    Out.Latency.merge(M.Latency);
    Out.SampleNs.insert(Out.SampleNs.end(), M.SampleNs.begin(),
                        M.SampleNs.end());
    Out.Ok += M.Ok;
    Out.BadStatus += M.BadStatus;
    Out.EchoMisses += M.EchoMisses;
    Out.Mismatches += M.Mismatches;
    Out.TransportErrors += M.TransportErrors;
  }
  Out.Accumulated = Svc.accumulatedStats();
  Out.Counters = Svc.counters();
  Daemon.requestDrain();
  Daemon.waitDrained();
  return Out;
}

void writePhaseReport(const char *Path, const PhaseOutcome &P,
                      unsigned Clients, bool Smoke, unsigned &Failures) {
  RunReport::reset();
  RunReport::noteTool("bench_x11_reqobs");
  RunReport::noteWorkload("mode", "reqobs");
  RunReport::noteWorkload("config", Smoke ? "smoke" : "full");
  RunReport::noteWorkload("clients", static_cast<uint64_t>(Clients));
  RunReport::noteWorkload("requests", P.Ok);
  RunReport::noteWorkload("p50_wall_ns",
                          static_cast<uint64_t>(P.Latency.quantileNs(0.5)));
  RunReport::noteWorkload("p99_wall_ns",
                          static_cast<uint64_t>(P.Latency.quantileNs(0.99)));
  RunReport::noteWorkload("max_wall_ns", P.Latency.MaxNs);
  RunReport::noteStats(P.Accumulated);
  RunReport::noteWallNs(static_cast<int64_t>(P.WallNs));
  if (!RunReport::writeTo(benchOutputPath(Path))) {
    ++Failures;
    std::cerr << "FAIL: cannot write " << Path << "\n";
  }
}

} // namespace

int main(int argc, char **argv) {
  bool Smoke = false;
  unsigned Clients = 4;
  unsigned PerClient = 250;
  for (int I = 1; I != argc; ++I) {
    if (!std::strcmp(argv[I], "--smoke"))
      Smoke = true;
    else if (!std::strcmp(argv[I], "--clients") && I + 1 != argc)
      Clients = std::strtoul(argv[++I], nullptr, 10);
    else if (!std::strcmp(argv[I], "--requests") && I + 1 != argc)
      PerClient = std::strtoul(argv[++I], nullptr, 10);
    else {
      std::cerr << "usage: " << argv[0]
                << " [--smoke] [--clients N] [--requests N]\n";
      return 2;
    }
  }
  if (Smoke) {
    Clients = 2;
    PerClient = 25;
  }
  unsigned Failures = 0;
  auto Fail = [&](const std::string &Why) {
    ++Failures;
    std::cerr << "FAIL: " << Why << "\n";
  };

  const uint64_t WantRequests = uint64_t(Clients) * PerClient;
  std::map<std::string, std::string> Oracle;
  std::string FatalError;

  //===--------------------------------------------------------------------===//
  // Phase 1: disarmed baseline (fills the oracle).
  //===--------------------------------------------------------------------===//

  AccessLog::stop(); // a PDT_ACCESS_LOG in the environment must not skew this
  PhaseOutcome Disarmed =
      runLoadPhase(Clients, PerClient, Oracle, /*FillOracle=*/true,
                   &FatalError);
  if (!FatalError.empty()) {
    std::cerr << FatalError << "\n";
    return 1;
  }
  if (Disarmed.Ok != WantRequests || Disarmed.BadStatus ||
      Disarmed.TransportErrors)
    Fail("disarmed phase: " + std::to_string(Disarmed.Ok) + "/" +
         std::to_string(WantRequests) + " ok, " +
         std::to_string(Disarmed.BadStatus) + " bad status, " +
         std::to_string(Disarmed.TransportErrors) + " transport errors");
  if (Disarmed.EchoMisses)
    Fail(std::to_string(Disarmed.EchoMisses) +
         " responses did not echo X-PDT-Request-Id (disarmed)");
  if (Disarmed.Mismatches)
    Fail("disarmed responses were not deterministic");

  //===--------------------------------------------------------------------===//
  // Phase 2: armed — identical wire traffic, plus the access log.
  //===--------------------------------------------------------------------===//

  const std::string LoadLogPath = benchOutputPath("BENCH_reqobs_access.jsonl");
  if (!AccessLog::start(LoadLogPath)) {
    std::cerr << "cannot open " << LoadLogPath << "\n";
    return 1;
  }
  PhaseOutcome Armed = runLoadPhase(Clients, PerClient, Oracle,
                                    /*FillOracle=*/false, &FatalError);
  uint64_t ArmedLines = AccessLog::linesWritten();
  AccessLog::stop();
  if (!FatalError.empty()) {
    std::cerr << FatalError << "\n";
    return 1;
  }
  if (Armed.Ok != WantRequests || Armed.BadStatus || Armed.TransportErrors)
    Fail("armed phase: " + std::to_string(Armed.Ok) + "/" +
         std::to_string(WantRequests) + " ok, " +
         std::to_string(Armed.BadStatus) + " bad status, " +
         std::to_string(Armed.TransportErrors) + " transport errors");
  if (Armed.EchoMisses)
    Fail(std::to_string(Armed.EchoMisses) +
         " responses did not echo X-PDT-Request-Id (armed)");
  if (Armed.Mismatches)
    Fail(std::to_string(Armed.Mismatches) +
         " armed responses differed from the disarmed oracle (arming the "
         "access log perturbed a response body)");

  // Exact accounting: one line per answered request — the warmup pass
  // plus the load, which is exactly what the service routed.
  uint64_t Malformed = 0;
  std::vector<AccessLine> Lines = loadAccessLines(LoadLogPath, Malformed);
  if (Malformed)
    Fail(std::to_string(Malformed) + " malformed access-log lines");
  if (ArmedLines != Armed.Counters.Requests)
    Fail("access log wrote " + std::to_string(ArmedLines) + " lines for " +
         std::to_string(Armed.Counters.Requests) + " routed requests");
  if (Lines.size() != ArmedLines)
    Fail("access file holds " + std::to_string(Lines.size()) +
         " lines but linesWritten() says " + std::to_string(ArmedLines));
  // Every load-phase ID appears exactly once, with the right route.
  std::map<std::string, uint64_t> Seen;
  for (const AccessLine &L : Lines)
    ++Seen[L.Id];
  uint64_t IdMisses = 0;
  for (unsigned T = 0; T != Clients && IdMisses < 8; ++T)
    for (unsigned I = 0; I != PerClient; ++I)
      if (Seen[requestId(T, I)] != 1)
        ++IdMisses;
  if (IdMisses)
    Fail("client request IDs missing or duplicated in the access log");
  // The per-line stats are true deltas: summed over every line they
  // must reproduce the service's accumulated total exactly (some
  // kernels in the mix legitimately contribute zero pairs).
  uint64_t LinePairs = 0, AnalyzeLines = 0;
  for (const AccessLine &L : Lines) {
    AnalyzeLines += L.Route == "POST /v1/analyze";
    LinePairs += L.ReferencePairs;
  }
  if (AnalyzeLines == 0)
    Fail("no analysis lines in the access log");
  if (LinePairs != Armed.Accumulated.ReferencePairs)
    Fail("access-line stats deltas sum to " + std::to_string(LinePairs) +
         " reference pairs but the service accumulated " +
         std::to_string(Armed.Accumulated.ReferencePairs));

  //===--------------------------------------------------------------------===//
  // Phase 3: saturation accounting — the 429s are logged too.
  //===--------------------------------------------------------------------===//

  const std::string SatLogPath =
      benchOutputPath("BENCH_reqobs_access_sat.jsonl");
  uint64_t Seen429 = 0, SatRejected = 0, SatRouted = 0;
  {
    if (!AccessLog::start(SatLogPath)) {
      std::cerr << "cannot open " << SatLogPath << "\n";
      return 1;
    }
    ServerConfig Tiny;
    Tiny.Port = 0;
    Tiny.Threads = 1;
    Tiny.QueueCapacity = 0;
    Service TinySvc;
    Server TinyDaemon(Tiny, TinySvc);
    std::string Error;
    if (!TinyDaemon.start(&Error)) {
      std::cerr << "cannot start saturation server: " << Error << "\n";
      return 1;
    }
    Client Pin;
    ClientResponse R;
    if (!Pin.connectTo(TinyDaemon.port()) || !Pin.get("/healthz", R) ||
        R.Status != 200)
      Fail("saturation pin connection did not get its first 200");
    unsigned Attempts = Smoke ? 8 : 32;
    for (unsigned I = 0; I != Attempts; ++I) {
      Client Rejected;
      ClientResponse RR;
      if (!Rejected.connectTo(TinyDaemon.port()) ||
          !Rejected.readResponse(RR))
        continue;
      if (RR.Status == 429) {
        ++Seen429;
        if (RR.RequestId.empty())
          Fail("a 429 response was missing its X-PDT-Request-Id");
      }
    }
    Pin.close();
    TinyDaemon.requestDrain();
    TinyDaemon.waitDrained();
    SatRejected = TinyDaemon.stats().Rejected429;
    SatRouted = TinySvc.counters().Requests;
  }
  AccessLog::stop();
  if (Seen429 == 0)
    Fail("saturated server never answered 429");
  uint64_t SatMalformed = 0;
  std::vector<AccessLine> SatLines = loadAccessLines(SatLogPath, SatMalformed);
  if (SatMalformed)
    Fail("malformed saturation access lines");
  uint64_t Lines429 = 0;
  std::set<std::string> Ids429;
  for (const AccessLine &L : SatLines)
    if (L.Status == 429) {
      ++Lines429;
      Ids429.insert(L.Id);
      if (L.Route != "-")
        Fail("a 429 access line carried a route (never parsed one)");
    }
  // Accounting is exact against the server's own counters — immune to
  // client-side connect/read races.
  if (Lines429 != SatRejected)
    Fail("access log holds " + std::to_string(Lines429) +
         " 429 lines but the server rejected " +
         std::to_string(SatRejected));
  if (Ids429.size() != Lines429)
    Fail("minted 429 request IDs were not unique");
  if (SatLines.size() != SatRejected + SatRouted)
    Fail("saturation log holds " + std::to_string(SatLines.size()) +
         " lines for " + std::to_string(SatRejected + SatRouted) +
         " answered requests");

  //===--------------------------------------------------------------------===//
  // Overhead gate + report.
  //===--------------------------------------------------------------------===//

  double DisarmedMean =
      Disarmed.Ok ? double(Disarmed.WallNs) / double(Disarmed.Ok) : 0.0;
  double ArmedMean = Armed.Ok ? double(Armed.WallNs) / double(Armed.Ok) : 0.0;
  // One ~15 ms phase pair cannot resolve a 5% delta on a shared
  // machine — frequency scaling and scheduler noise alone swing the
  // pair-to-pair means by more than that, and even per-leg medians
  // drift by +-20% when the scheduler preempts mid-leg. The accounting
  // phases above stand, but the gate pools every per-request wall time
  // across alternating disarmed/armed legs and compares a LOW QUANTILE
  // (p10) of the two pooled distributions: the fastest decile is the
  // requests that ran clean — no preemption, no writeback stall — and
  // a constant logging cost shifts that quantile by its full amount
  // while the noise (which only ever adds time, and lands on either
  // config at random) is excluded wholesale. Alternation plus
  // per-pair order swap de-biases slow drift.
  // The gated measurement additionally drops to one client: the
  // multi-client phases oversubscribe small machines (this may be a
  // single-core box), where any extra syscall shows up multiplied by
  // mutex-convoy and context-switch effects that have nothing to do
  // with the per-request cost being budgeted. One sequential client
  // measures exactly "what does arming add to a request".
  unsigned Reps = Smoke ? 0 : 8;
  const unsigned OverheadPerClient = PerClient * 2;
  const unsigned OverheadWant = OverheadPerClient;
  const std::string RepLogPath =
      benchOutputPath("BENCH_reqobs_access_rep.jsonl");
  std::vector<uint64_t> DisarmedNs, ArmedNs;
  std::map<std::string, std::string> HeavyOracle;
  for (unsigned Rep = 0; Rep != Reps && FatalError.empty(); ++Rep) {
    // Swap which config goes first each rep: within a pair the second
    // phase runs on a slightly cooler machine, and that penalty must
    // not always land on the armed side.
    for (unsigned Leg = 0; Leg != 2; ++Leg) {
      bool ArmLeg = (Leg ^ (Rep & 1)) != 0;
      // Drain pending writeback outside the timed window: on a small
      // machine the kernel flusher competes with the server for the
      // CPU, and the accounting phases above left ~1 MB of dirty log
      // pages that would otherwise bill their flush to whichever leg
      // runs first.
      ::sync();
      if (ArmLeg && !AccessLog::start(RepLogPath)) {
        FatalError = "cannot open " + RepLogPath;
        break;
      }
      // One client, the heaviest corpus kernels, and no healthz
      // interleave: the access line is a fixed per-request cost, so
      // the honest relative-overhead question is against real analysis
      // requests, not against requests that do nearly nothing.
      PhaseOutcome P =
          runLoadPhase(/*Clients=*/1, OverheadPerClient, HeavyOracle,
                       /*FillOracle=*/HeavyOracle.empty(), &FatalError,
                       heavyMix(), /*Healthz=*/false);
      if (ArmLeg)
        AccessLog::stop();
      if (!FatalError.empty())
        break;
      if (P.Ok != OverheadWant || P.Mismatches ||
          P.SampleNs.size() != OverheadWant)
        continue;
      if (std::getenv("PDT_X11_DEBUG")) {
        std::vector<uint64_t> Leg = P.SampleNs;
        std::nth_element(Leg.begin(), Leg.begin() + Leg.size() / 10,
                         Leg.end());
        std::fprintf(stderr, "  rep %u %s: p10 %.2f us/req\n", Rep,
                     ArmLeg ? "armed   " : "disarmed",
                     double(Leg[Leg.size() / 10]) / 1e3);
      }
      std::vector<uint64_t> &Pool = ArmLeg ? ArmedNs : DisarmedNs;
      Pool.insert(Pool.end(), P.SampleNs.begin(), P.SampleNs.end());
    }
  }
  if (!FatalError.empty()) {
    std::cerr << FatalError << "\n";
    return 1;
  }
  auto P10 = [](std::vector<uint64_t> &Pool) {
    std::nth_element(Pool.begin(), Pool.begin() + Pool.size() / 10,
                     Pool.end());
    return double(Pool[Pool.size() / 10]);
  };
  if (Reps) {
    if (DisarmedNs.empty() || ArmedNs.empty())
      Fail("no clean rep survived for the overhead measurement");
    DisarmedMean = DisarmedNs.empty() ? 0.0 : P10(DisarmedNs);
    ArmedMean = ArmedNs.empty() ? 0.0 : P10(ArmedNs);
  }
  double Overhead = DisarmedMean > 0
                        ? (ArmedMean - DisarmedMean) / DisarmedMean
                        : 0.0;
  // The 5% gate needs the full workload to sit above timer and
  // scheduler noise; the smoke run reports the number without
  // asserting it.
  if (!Smoke && Overhead > 0.05)
    Fail("armed access log costs " + std::to_string(Overhead * 100) +
         "% per-request wall (budget: 5%)");

  std::printf("x11 reqobs: %llu requests x2 phases on %u clients, "
              "disarmed %.1f us/req, armed %.1f us/req (%+.2f%%), "
              "%llu access lines, %llu x 429 all logged — %s\n",
              static_cast<unsigned long long>(WantRequests), Clients,
              DisarmedMean / 1e3, ArmedMean / 1e3, Overhead * 100,
              static_cast<unsigned long long>(ArmedLines),
              static_cast<unsigned long long>(Lines429),
              Failures ? "FAILURES" : "all checks passed");

  std::ofstream Json(benchOutputPath("BENCH_reqobs.json"));
  Json << "{\n"
       << benchMetaJson("x11_reqobs") << ",\n"
       << "  \"workload\": {\"clients\": " << Clients
       << ", \"requests_per_client\": " << PerClient
       << ", \"smoke\": " << (Smoke ? "true" : "false") << "},\n"
       << "  \"identity\": {\"echo_misses\": "
       << Disarmed.EchoMisses + Armed.EchoMisses
       << ", \"body_mismatches\": " << Armed.Mismatches << "},\n"
       << "  \"accounting\": {\"access_lines\": " << ArmedLines
       << ", \"routed_requests\": " << Armed.Counters.Requests
       << ", \"saturation_lines\": " << SatLines.size()
       << ", \"saturation_429\": " << Lines429
       << ", \"malformed_lines\": " << Malformed + SatMalformed << "},\n"
       << "  \"overhead\": {\"disarmed_ns\": " << DisarmedMean
       << ", \"armed_ns\": " << ArmedMean
       << ", \"metric\": \"" << (Smoke ? "phase_mean" : "pooled_p10")
       << "\", \"fraction\": " << Overhead
       << ", \"gated\": " << (Smoke ? "false" : "true") << "},\n"
       << "  \"failures\": " << Failures << "\n"
       << "}\n";

  // The pdt-report-v1 pair over the identical workload: the ctest
  // chain diffs them (deterministic keys must match; *_ns keys ride
  // the noise band) and appends the armed one to the perf ledger.
  writePhaseReport("BENCH_reqobs_disarmed.json", Disarmed, Clients, Smoke,
                   Failures);
  writePhaseReport("BENCH_reqobs_armed.json", Armed, Clients, Smoke,
                   Failures);

  return Failures ? 1 : 0;
}
