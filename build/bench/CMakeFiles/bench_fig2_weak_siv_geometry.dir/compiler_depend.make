# Empty compiler generated dependencies file for bench_fig2_weak_siv_geometry.
# This may be replaced when dependencies are built.
