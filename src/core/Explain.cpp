//===- core/Explain.cpp - Per-pair decision explanations ------------------===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Explain.h"

#include "ir/AccessCollector.h"
#include "ir/PrettyPrinter.h"
#include "support/Failure.h"

#include <algorithm>
#include <map>

using namespace pdt;

std::string PairExplanation::str() const {
  std::string Out;
  Out += SrcRef + " -> " + SnkRef;
  Out += "  [common nest:";
  if (LoopIndices.empty())
    Out += " none";
  for (const std::string &Index : LoopIndices)
    Out += " " + Index;
  Out += "]\n";

  if (DimMismatch) {
    Out += "  references have mismatched dimensionality; nothing is "
           "testable\n";
    Out += "  verdict: assumed dependent in all directions (conservative)\n";
    return Out;
  }
  if (HasNonlinear)
    Out += "  note: some dimension is nonlinear and contributes no "
           "information; the verdict stays conservative\n";

  for (unsigned I = 0, E = Steps.size(); I != E; ++I) {
    const ExplainStep &S = Steps[I];
    Out += "  partition " + std::to_string(I + 1) + " (";
    Out += S.Coupled ? "coupled group" : "separable";
    Out += ", dim";
    for (unsigned Dim : S.Dims)
      Out += " " + std::to_string(Dim + 1);
    Out += "):";
    for (const std::string &Sub : S.Subscripts)
      Out += " " + Sub;
    Out += "\n";
    if (!S.Coupled)
      Out += "    shape: " + std::string(subscriptShapeName(S.Shape)) + "\n";
    Out += "    test applied: " + std::string(testKindName(S.Applied)) + "\n";
    if (!S.Constraints.empty())
      Out += "    constraints: " + S.Constraints + "\n";
    if (!S.Detail.empty()) {
      // Indent every line of the detail block (the Delta log is
      // multi-line).
      Out += "    ";
      for (char C : S.Detail) {
        Out += C;
        if (C == '\n')
          Out += "    ";
      }
      Out += "\n";
    }
    Out += "    partition verdict: ";
    switch (S.StepVerdict) {
    case Verdict::Independent:
      Out += "independent (ends the algorithm)";
      break;
    case Verdict::Dependent:
      Out += S.Exact ? "dependent (exact)" : "dependent";
      break;
    case Verdict::Maybe:
      Out += S.Exact ? "undecided" : "undecided (conservative)";
      break;
    }
    Out += "\n";
  }

  Out += "  verdict: ";
  if (Degraded) {
    Out += "degraded";
    if (Failure)
      Out += " (" + Failure->str() + ")";
    Out += " — assumed dependent in all directions; a contained failure "
           "only ever widens the answer\n";
  } else if (FinalVerdict == Verdict::Independent) {
    Out += "independent — proven by the " +
           std::string(testKindName(DecidedBy)) + " test\n";
  } else {
    Out += FinalVerdict == Verdict::Dependent
               ? "dependent (exact — every partition resolved exactly)"
               : "assumed dependent (conservative)";
    Out += ", merged vectors:";
    for (const std::string &V : Vectors)
      Out += " " + V;
    Out += "\n";
  }
  return Out;
}

PairExplanation
pdt::explainAccessPair(const ArrayAccess &A, const ArrayAccess &B,
                       const SymbolRangeMap &Symbols,
                       const std::set<std::string> *VaryingScalars) {
  PairExplanation Ex;
  Ex.SrcRef = exprToString(A.Ref);
  Ex.SnkRef = exprToString(B.Ref);
  for (const DoLoop *Loop : commonLoops(A, B))
    Ex.LoopIndices.push_back(Loop->getIndexName());

  // Mirror testAccessPair's containment: a failure while lowering
  // degrades the pair, and the report says so.
  std::optional<PreparedPair> Prepared;
  try {
    Prepared = prepareAccessPair(A, B, Symbols, VaryingScalars);
  } catch (const AnalysisError &E) {
    Ex.Degraded = true;
    Ex.Failure = E.failure();
    Ex.FinalVerdict = Verdict::Maybe;
    Ex.Vectors.push_back(DependenceVector(Ex.LoopIndices.size()).str());
    return Ex;
  }
  if (!Prepared) {
    Ex.DimMismatch = true;
    Ex.FinalVerdict = Verdict::Maybe;
    Ex.Vectors.push_back(DependenceVector(Ex.LoopIndices.size()).str());
    return Ex;
  }
  Ex.HasNonlinear = Prepared->HasNonlinear;

  // Run the tester with the recorder attached. This bypasses the memo
  // cache on purpose: explanations must re-derive the decision, not
  // replay a cached verdict.
  DependenceTestResult Result =
      testDependence(Prepared->Subscripts, Prepared->Ctx, nullptr, &Ex);
  if (Prepared->HasNonlinear && Result.TheVerdict == Verdict::Dependent)
    Result.TheVerdict = Verdict::Maybe;
  if (Prepared->HasNonlinear)
    Result.Exact = false;

  Ex.FinalVerdict = Result.TheVerdict;
  Ex.DecidedBy = Result.DecidedBy;
  Ex.Exact = Result.Exact;
  Ex.Degraded = Result.Degraded;
  Ex.Failure = Result.Failure;
  for (const DependenceVector &V : Result.Vectors)
    Ex.Vectors.push_back(V.str());
  return Ex;
}

std::string pdt::explainProgram(const Program &P,
                                const SymbolRangeMap &Symbols,
                                bool IncludeInput) {
  std::vector<ArrayAccess> Accesses = collectAccesses(P);
  std::set<std::string> VaryingScalars = collectVaryingScalars(P);

  // The same enumeration the graph builder uses: same-array pairs, in
  // (I, J) order, skipping read-read pairs unless IncludeInput and
  // read self-pairs always.
  std::map<std::string, std::vector<unsigned>> Buckets;
  for (unsigned I = 0, E = Accesses.size(); I != E; ++I)
    Buckets[Accesses[I].Ref->getArrayName()].push_back(I);

  std::vector<std::pair<unsigned, unsigned>> Pairs;
  for (const auto &[Name, Members] : Buckets) {
    for (unsigned A = 0, E = Members.size(); A != E; ++A) {
      for (unsigned B = A; B != E; ++B) {
        unsigned I = Members[A], J = Members[B];
        if (I == J && !Accesses[I].IsWrite)
          continue;
        if (!IncludeInput && !Accesses[I].IsWrite && !Accesses[J].IsWrite)
          continue;
        Pairs.emplace_back(I, J);
      }
    }
  }
  std::sort(Pairs.begin(), Pairs.end());

  std::string Out;
  unsigned N = 0;
  for (auto [I, J] : Pairs) {
    Out += "pair " + std::to_string(++N) + ": ";
    Out +=
        explainAccessPair(Accesses[I], Accesses[J], Symbols, &VaryingScalars)
            .str();
    Out += "\n";
  }
  if (Pairs.empty())
    Out += "no testable access pairs\n";
  return Out;
}
