//===- tests/driver/GoldenTest.cpp ------------------------------------------===//
//
// Golden regression tests: the exact dependence-graph report for the
// paper-example kernels. Any change to classification, the exact
// tests, the Delta test, orientation, or reporting shows up here as a
// diff against a known-good snapshot.
//
//===----------------------------------------------------------------------===//

#include "driver/Analyzer.h"
#include "driver/Corpus.h"

#include <gtest/gtest.h>

using namespace pdt;

namespace {

std::string graphReport(const char *Kernel) {
  const CorpusKernel *K = findKernel(Kernel);
  EXPECT_NE(K, nullptr) << Kernel;
  if (!K)
    return "";
  AnalysisResult R = analyzeSource(K->Source, K->Name);
  EXPECT_TRUE(R.Parsed) << Kernel;
  return R.Graph.str();
}

} // namespace

TEST(Golden, PaperStrongSIV) {
  EXPECT_EQ(graphReport("paper_strong_siv"),
            "flow dependence: a(i + 1) -> a(i)  vector (1)  "
            "carried by loop i  (assumed)\n");
}

TEST(Golden, PaperDeltaCoupled) {
  // The Delta flagship disproves everything: empty graph.
  EXPECT_EQ(graphReport("paper_delta_coupled"), "");
}

TEST(Golden, PaperGCDStride) {
  EXPECT_EQ(graphReport("paper_gcd_stride"), "");
}

TEST(Golden, PaperSymbolicZIV) {
  // The self output dependence on a(n) is exact: the symbolic ZIV
  // difference cancels to zero, so no "(assumed)" qualifier.
  EXPECT_EQ(graphReport("paper_symbolic_ziv"),
            "output dependence: a(n) -> a(n)  vector (<)  "
            "carried by loop i\n");
}

TEST(Golden, PaperDeltaPropagate) {
  EXPECT_EQ(graphReport("paper_delta_propagate"),
            "flow dependence: a(i + 1, i + j) -> a(i, i + j)  "
            "vector (1, -1)  carried by loop i  (assumed)\n");
}

TEST(Golden, PaperSkewedLivermore) {
  EXPECT_EQ(graphReport("paper_skewed_livermore"),
            "flow dependence: a(i, j) -> a(i - 1, j)  vector (0, 1)  "
            "carried by loop i  (assumed)\n"
            "flow dependence: a(i, j) -> a(i, j - 1)  vector (1, 0)  "
            "carried by loop j  (assumed)\n");
}

TEST(Golden, PaperWeakZeroFirst) {
  // Carried flow from the first iteration's write to later reads,
  // plus the same-iteration anti at i = 1.
  EXPECT_EQ(graphReport("paper_weak_zero_first"),
            "flow dependence: y(i) -> y(1)  vector (<)  "
            "carried by loop i  (assumed)\n"
            "anti dependence: y(1) -> y(i)  vector (0)  "
            "loop-independent  (assumed)\n");
}

TEST(Golden, PaperWeakZeroLast) {
  // Reads of y(n) precede the final iteration's write (anti carried),
  // plus the same-iteration anti at i = n.
  EXPECT_EQ(graphReport("paper_weak_zero_last"),
            "anti dependence: y(n) -> y(i)  vector (<)  "
            "carried by loop i  (assumed)\n"
            "anti dependence: y(n) -> y(i)  vector (0)  "
            "loop-independent  (assumed)\n");
}

TEST(Golden, PaperExactSIV) {
  EXPECT_EQ(graphReport("paper_exact_siv"), "");
}

TEST(Golden, PaperRDIVTranspose) {
  EXPECT_EQ(graphReport("paper_rdiv_transpose"),
            "flow dependence: a(i, j) -> a(j, i)  vector (<, >)  "
            "carried by loop i  (assumed)\n"
            "anti dependence: a(j, i) -> a(i, j)  vector (0, 0)  "
            "loop-independent  (assumed)\n"
            "anti dependence: a(j, i) -> a(i, j)  vector (<, >)  "
            "carried by loop i  (assumed)\n");
}

TEST(Golden, Lfk5Tridiag) {
  // Normalization shifts the loop (do i = 2, n), so the printed
  // references carry the i + 1 substitution.
  EXPECT_EQ(graphReport("lfk5_tridiag"),
            "flow dependence: x(i + 1) -> x(i + 1 - 1)  vector (1)  "
            "carried by loop i  (assumed)\n");
}

TEST(Golden, Daxpy) {
  // y reads and writes the same element per iteration: a
  // loop-independent anti dependence only.
  EXPECT_EQ(graphReport("daxpy"),
            "anti dependence: dy(i) -> dy(i)  vector (0)  "
            "loop-independent  (assumed)\n");
}

TEST(Golden, PaperWeakCrossing) {
  // Crossing dependences in both kinds, plus the possible '='
  // instance at the (parity-unknown) crossing iteration.
  EXPECT_EQ(graphReport("paper_weak_crossing"),
            "anti dependence: a(n - i + 1) -> a(i)  vector (<)  "
            "carried by loop i  (assumed)\n"
            "flow dependence: a(i) -> a(n - i + 1)  vector (<)  "
            "carried by loop i  (assumed)\n"
            "anti dependence: a(n - i + 1) -> a(i)  vector (0)  "
            "loop-independent  (assumed)\n");
}

TEST(Golden, PaperTriangular) {
  // a(i, j) = a(j, j): the Delta test pins d_j = 0; the i level keeps
  // both orientations around the diagonal.
  EXPECT_EQ(graphReport("paper_triangular"),
            "anti dependence: a(j, j) -> a(i, j)  vector (<, 0)  "
            "carried by loop i  (assumed)\n"
            "anti dependence: a(j, j) -> a(i, j)  vector (0, 0)  "
            "loop-independent  (assumed)\n"
            "flow dependence: a(i, j) -> a(j, j)  vector (<, 0)  "
            "carried by loop i  (assumed)\n");
}
