//===- fuzz/Shrinker.cpp - Delta-debugging kernel reducer -----------------===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Shrinker.h"

#include "support/MathExtras.h"
#include "support/Metrics.h"

#include <cassert>

using namespace pdt;

namespace {

/// Rebuilds the symbol table to exactly the symbols the structure
/// still mentions, so reductions never leave dangling sampled values.
void pruneSymbols(FuzzKernel &K) {
  std::map<std::string, int64_t> Used;
  for (const FuzzLoop &L : K.Loops)
    if (!L.UpperSymbol.empty())
      Used.insert({L.UpperSymbol, K.SymbolValues.at(L.UpperSymbol)});
  for (const FuzzStmt &S : K.Stmts)
    for (const std::vector<LinearExpr> *Side : {&S.Write, &S.Read})
      for (const LinearExpr &E : *Side)
        for (const auto &[Name, Coeff] : E.symbolTerms()) {
          (void)Coeff;
          Used.insert({Name, K.SymbolValues.at(Name)});
        }
  K.SymbolValues = std::move(Used);
}

/// Applies \p Fn to the subscript expression at (statement, side,
/// dimension) and returns the mutated kernel.
template <typename FnT>
FuzzKernel mutateExpr(const FuzzKernel &K, unsigned Stmt, bool WriteSide,
                      unsigned Dim, FnT &&Fn) {
  FuzzKernel Out = K;
  std::vector<LinearExpr> &Side =
      WriteSide ? Out.Stmts[Stmt].Write : Out.Stmts[Stmt].Read;
  Side[Dim] = Fn(Side[Dim]);
  pruneSymbols(Out);
  return Out;
}

/// Visits every subscript expression of the kernel.
template <typename FnT> void forEachExpr(const FuzzKernel &K, FnT &&Fn) {
  for (unsigned S = 0; S != K.Stmts.size(); ++S)
    for (bool WriteSide : {true, false}) {
      const std::vector<LinearExpr> &Side =
          WriteSide ? K.Stmts[S].Write : K.Stmts[S].Read;
      for (unsigned D = 0; D != Side.size(); ++D)
        Fn(S, WriteSide, D, Side[D]);
    }
}

} // namespace

std::vector<FuzzKernel> pdt::fuzzReductionCandidates(const FuzzKernel &K) {
  std::vector<FuzzKernel> Out;

  // Drop a statement.
  if (K.Stmts.size() > 1)
    for (unsigned S = 0; S != K.Stmts.size(); ++S) {
      FuzzKernel C = K;
      C.Stmts.erase(C.Stmts.begin() + S);
      pruneSymbols(C);
      Out.push_back(std::move(C));
    }

  // Drop a loop level (its index terms vanish from every subscript).
  if (K.Loops.size() > 1)
    for (unsigned L = 0; L != K.Loops.size(); ++L) {
      FuzzKernel C = K;
      std::string Index = C.Loops[L].Index;
      C.Loops.erase(C.Loops.begin() + L);
      for (FuzzStmt &S : C.Stmts) {
        for (LinearExpr &E : S.Write)
          E = E.withoutIndex(Index);
        for (LinearExpr &E : S.Read)
          E = E.withoutIndex(Index);
      }
      pruneSymbols(C);
      Out.push_back(std::move(C));
    }

  // Drop an array dimension.
  if (K.rank() > 1)
    for (unsigned D = 0; D != K.rank(); ++D) {
      FuzzKernel C = K;
      for (FuzzStmt &S : C.Stmts) {
        S.Write.erase(S.Write.begin() + D);
        S.Read.erase(S.Read.begin() + D);
      }
      pruneSymbols(C);
      Out.push_back(std::move(C));
    }

  // Concretize a symbolic bound to its sampled value.
  for (unsigned L = 0; L != K.Loops.size(); ++L)
    if (!K.Loops[L].UpperSymbol.empty()) {
      FuzzKernel C = K;
      C.Loops[L].UpperSymbol.clear();
      pruneSymbols(C);
      Out.push_back(std::move(C));
    }

  // Drop a symbol term from a subscript.
  forEachExpr(K, [&](unsigned S, bool W, unsigned D, const LinearExpr &E) {
    for (const auto &[Name, Coeff] : E.symbolTerms())
      Out.push_back(mutateExpr(K, S, W, D, [&](const LinearExpr &X) {
        return X - LinearExpr::symbol(Name, Coeff);
      }));
  });

  // Zero an index coefficient.
  forEachExpr(K, [&](unsigned S, bool W, unsigned D, const LinearExpr &E) {
    for (const auto &[Name, Coeff] : E.indexTerms()) {
      (void)Coeff;
      Out.push_back(mutateExpr(
          K, S, W, D,
          [&](const LinearExpr &X) { return X.withoutIndex(Name); }));
    }
  });

  // Simplify a coefficient to +-1.
  forEachExpr(K, [&](unsigned S, bool W, unsigned D, const LinearExpr &E) {
    for (const auto &[Name, Coeff] : E.indexTerms())
      if (Coeff > 1 || Coeff < -1) {
        int64_t Sign = Coeff > 0 ? 1 : -1;
        Out.push_back(mutateExpr(K, S, W, D, [&](const LinearExpr &X) {
          return X - LinearExpr::index(Name, Coeff) +
                 LinearExpr::index(Name, Sign);
        }));
      }
  });

  // Move an additive constant toward zero (all the way, then halves:
  // one step usually suffices, the halving ladder handles the cases
  // where the magnitude matters).
  forEachExpr(K, [&](unsigned S, bool W, unsigned D, const LinearExpr &E) {
    int64_t C = E.getConstant();
    if (C == 0)
      return;
    Out.push_back(mutateExpr(K, S, W, D, [&](const LinearExpr &X) {
      return X - LinearExpr(X.getConstant());
    }));
    if (C != C / 2)
      Out.push_back(mutateExpr(K, S, W, D, [&](const LinearExpr &X) {
        return X - LinearExpr(X.getConstant()) + LinearExpr(X.getConstant() / 2);
      }));
  });

  // Tighten a constant upper bound: single trip, then halve the span.
  for (unsigned L = 0; L != K.Loops.size(); ++L) {
    const FuzzLoop &Loop = K.Loops[L];
    if (!Loop.UpperSymbol.empty() || Loop.Upper <= Loop.Lower)
      continue;
    FuzzKernel C = K;
    C.Loops[L].Upper = Loop.Lower;
    Out.push_back(std::move(C));
    int64_t Mid = Loop.Lower + (Loop.Upper - Loop.Lower) / 2;
    if (Mid != Loop.Lower && Mid != Loop.Upper) {
      FuzzKernel C2 = K;
      C2.Loops[L].Upper = Mid;
      Out.push_back(std::move(C2));
    }
  }

  // Shift a loop to the canonical lower bound 1 (trip count kept).
  for (unsigned L = 0; L != K.Loops.size(); ++L) {
    const FuzzLoop &Loop = K.Loops[L];
    if (Loop.Lower == 1 || !Loop.UpperSymbol.empty())
      continue;
    std::optional<int64_t> Shift = checkedSub(1, Loop.Lower);
    std::optional<int64_t> NewUpper =
        Shift ? checkedAdd(Loop.Upper, *Shift) : std::nullopt;
    if (!NewUpper)
      continue;
    FuzzKernel C = K;
    C.Loops[L].Lower = 1;
    C.Loops[L].Upper = *NewUpper;
    Out.push_back(std::move(C));
  }

  return Out;
}

FuzzShrinkResult pdt::shrinkFuzzKernel(FuzzKernel K,
                                       const FuzzPredicate &StillFails,
                                       unsigned MaxSteps) {
  FuzzShrinkResult Result;
  Result.StepsTried = 1;
  if (!StillFails(K)) {
    // The caller's kernel does not reproduce; nothing to shrink.
    Result.Kernel = std::move(K);
    Result.Minimal = false;
    return Result;
  }

  bool Progress = true;
  while (Progress) {
    Progress = false;
    for (FuzzKernel &Candidate : fuzzReductionCandidates(K)) {
      if (Result.StepsTried >= MaxSteps) {
        Result.Minimal = false;
        break;
      }
      Result.StepsTried += 1;
      Metrics::count(Metric::FuzzShrinkSteps);
      if (StillFails(Candidate)) {
        K = std::move(Candidate);
        Result.Reductions += 1;
        Progress = true;
        break;
      }
    }
    if (!Result.Minimal)
      break;
  }
  Result.Kernel = std::move(K);
  return Result;
}
