//===- support/Json.cpp - Minimal JSON value model and parser -------------===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace pdt;
using namespace pdt::json;

const Value *Value::find(std::string_view Key) const {
  if (TheKind != Kind::Object)
    return nullptr;
  for (const Member &M : Members)
    if (M.first == Key)
      return &M.second;
  return nullptr;
}

std::optional<double> Value::numberAt(std::string_view Key) const {
  const Value *V = find(Key);
  if (!V || !V->isNumber())
    return std::nullopt;
  return V->asDouble();
}

std::optional<uint64_t> Value::uintAt(std::string_view Key) const {
  const Value *V = find(Key);
  if (!V || !V->isNumber())
    return std::nullopt;
  return V->asUInt();
}

std::optional<bool> Value::boolAt(std::string_view Key) const {
  const Value *V = find(Key);
  if (!V || !V->isBool())
    return std::nullopt;
  return V->asBool();
}

std::optional<std::string> Value::stringAt(std::string_view Key) const {
  const Value *V = find(Key);
  if (!V || !V->isString())
    return std::nullopt;
  return V->asString();
}

namespace {

/// Recursive-descent parser over a string_view. Depth is bounded so a
/// pathological "[[[[..." input cannot blow the stack.
class Parser {
public:
  Parser(std::string_view Text, std::string *Error)
      : Text(Text), Error(Error) {}

  std::optional<Value> run() {
    std::optional<Value> V = parseValue(0);
    if (!V)
      return std::nullopt;
    skipSpace();
    if (Pos != Text.size())
      return fail("trailing characters after the document");
    return V;
  }

private:
  static constexpr unsigned MaxDepth = 96;

  std::string_view Text;
  std::string *Error;
  size_t Pos = 0;

  std::nullopt_t fail(const std::string &Why) {
    if (Error && Error->empty())
      *Error = "offset " + std::to_string(Pos) + ": " + Why;
    return std::nullopt;
  }

  void skipSpace() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    skipSpace();
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool literal(std::string_view Word) {
    if (Text.substr(Pos, Word.size()) != Word)
      return false;
    Pos += Word.size();
    return true;
  }

  std::optional<Value> parseValue(unsigned Depth) {
    if (Depth > MaxDepth)
      return fail("nesting too deep");
    skipSpace();
    if (Pos == Text.size())
      return fail("unexpected end of input");
    char C = Text[Pos];
    switch (C) {
    case '{':
      return parseObject(Depth);
    case '[':
      return parseArray(Depth);
    case '"': {
      std::optional<std::string> S = parseString();
      if (!S)
        return std::nullopt;
      return Value(std::move(*S));
    }
    case 't':
      if (literal("true"))
        return Value(true);
      return fail("bad literal");
    case 'f':
      if (literal("false"))
        return Value(false);
      return fail("bad literal");
    case 'n':
      if (literal("null"))
        return Value();
      return fail("bad literal");
    default:
      return parseNumber();
    }
  }

  std::optional<Value> parseObject(unsigned Depth) {
    ++Pos; // '{'
    std::vector<Member> Members;
    skipSpace();
    if (consume('}'))
      return Value(std::move(Members));
    for (;;) {
      skipSpace();
      if (Pos == Text.size() || Text[Pos] != '"')
        return fail("expected a member name");
      std::optional<std::string> Key = parseString();
      if (!Key)
        return std::nullopt;
      if (!consume(':'))
        return fail("expected ':' after member name");
      std::optional<Value> V = parseValue(Depth + 1);
      if (!V)
        return std::nullopt;
      Members.emplace_back(std::move(*Key), std::move(*V));
      if (consume(','))
        continue;
      if (consume('}'))
        return Value(std::move(Members));
      return fail("expected ',' or '}' in object");
    }
  }

  std::optional<Value> parseArray(unsigned Depth) {
    ++Pos; // '['
    std::vector<Value> Elements;
    skipSpace();
    if (consume(']'))
      return Value(std::move(Elements));
    for (;;) {
      std::optional<Value> V = parseValue(Depth + 1);
      if (!V)
        return std::nullopt;
      Elements.push_back(std::move(*V));
      if (consume(','))
        continue;
      if (consume(']'))
        return Value(std::move(Elements));
      return fail("expected ',' or ']' in array");
    }
  }

  std::optional<std::string> parseString() {
    ++Pos; // '"'
    std::string Out;
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return Out;
      if (static_cast<unsigned char>(C) < 0x20)
        return fail("raw control character in string");
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos == Text.size())
        break;
      char E = Text[Pos++];
      switch (E) {
      case '"': Out += '"'; break;
      case '\\': Out += '\\'; break;
      case '/': Out += '/'; break;
      case 'b': Out += '\b'; break;
      case 'f': Out += '\f'; break;
      case 'n': Out += '\n'; break;
      case 'r': Out += '\r'; break;
      case 't': Out += '\t'; break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return fail("truncated \\u escape");
        unsigned Code = 0;
        for (unsigned I = 0; I != 4; ++I) {
          char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= H - '0';
          else if (H >= 'a' && H <= 'f')
            Code |= H - 'a' + 10;
          else if (H >= 'A' && H <= 'F')
            Code |= H - 'A' + 10;
          else
            return fail("bad \\u escape digit");
        }
        // UTF-8 encode the BMP code point; surrogate pairs are not
        // produced by any writer in this repository.
        if (Code < 0x80) {
          Out += static_cast<char>(Code);
        } else if (Code < 0x800) {
          Out += static_cast<char>(0xC0 | (Code >> 6));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        } else {
          Out += static_cast<char>(0xE0 | (Code >> 12));
          Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        }
        break;
      }
      default:
        return fail("bad escape character");
      }
    }
    return fail("unterminated string");
  }

  std::optional<Value> parseNumber() {
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    bool Fractional = false;
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (std::isdigit(static_cast<unsigned char>(C))) {
        ++Pos;
      } else if (C == '.' || C == 'e' || C == 'E' || C == '+' || C == '-') {
        Fractional = true;
        ++Pos;
      } else {
        break;
      }
    }
    if (Pos == Start)
      return fail("expected a value");
    std::string_view Tok = Text.substr(Start, Pos - Start);
    if (!Fractional) {
      int64_t I = 0;
      auto [Ptr, Ec] = std::from_chars(Tok.data(), Tok.data() + Tok.size(), I);
      if (Ec == std::errc() && Ptr == Tok.data() + Tok.size())
        return Value(I);
      // Out-of-int64-range integers (e.g. a uint64 counter above
      // INT64_MAX) fall through to the double path below.
    }
    std::string Buf(Tok);
    errno = 0;
    char *End = nullptr;
    double D = std::strtod(Buf.c_str(), &End);
    if (End != Buf.c_str() + Buf.size() || errno == ERANGE)
      return fail("malformed number");
    return Value(D);
  }
};

void dumpTo(const Value &V, std::string &Out) {
  switch (V.kind()) {
  case Value::Kind::Null:
    Out += "null";
    break;
  case Value::Kind::Bool:
    Out += V.asBool() ? "true" : "false";
    break;
  case Value::Kind::Number: {
    double D = V.asDouble();
    if (static_cast<double>(V.asInt()) == D) {
      Out += std::to_string(V.asInt());
    } else {
      char Buf[40];
      std::snprintf(Buf, sizeof(Buf), "%.17g", D);
      Out += Buf;
    }
    break;
  }
  case Value::Kind::String:
    Out += '"';
    Out += escape(V.asString());
    Out += '"';
    break;
  case Value::Kind::Array: {
    Out += '[';
    bool First = true;
    for (const Value &E : V.asArray()) {
      if (!First)
        Out += ',';
      First = false;
      dumpTo(E, Out);
    }
    Out += ']';
    break;
  }
  case Value::Kind::Object: {
    Out += '{';
    bool First = true;
    for (const Member &M : V.asObject()) {
      if (!First)
        Out += ',';
      First = false;
      Out += '"';
      Out += escape(M.first);
      Out += "\":";
      dumpTo(M.second, Out);
    }
    Out += '}';
    break;
  }
  }
}

} // namespace

std::optional<Value> pdt::json::parse(std::string_view Text,
                                      std::string *Error) {
  if (Error)
    Error->clear();
  return Parser(Text, Error).run();
}

std::string pdt::json::dump(const Value &V) {
  std::string Out;
  dumpTo(V, Out);
  return Out;
}

std::string pdt::json::escape(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"': Out += "\\\""; break;
    case '\\': Out += "\\\\"; break;
    case '\n': Out += "\\n"; break;
    case '\r': Out += "\\r"; break;
    case '\t': Out += "\\t"; break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}
