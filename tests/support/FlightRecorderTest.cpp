//===- tests/support/FlightRecorderTest.cpp - Flight-ring tests -----------===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//
//
// The flight recorder's ring invariants under contention: bounded
// memory, monotonic counts, overwrite accounting, and — the one that
// justifies the lock-free design — snapshot() never returning a torn
// event while writers keep overwriting. Also the Chrome-trace dump
// format and the Span capture gate that feeds the rings without full
// tracing armed.
//
//===----------------------------------------------------------------------===//

#include "support/FlightRecorder.h"

#include "support/EventLog.h"
#include "support/Json.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <thread>
#include <vector>

using namespace pdt;

namespace {

/// Records \p N events on the calling thread whose payload is
/// self-checking: DurationNs == 2 * StartNs + 1. A torn slot (half old
/// write, half new) breaks the relation.
void recordSelfChecking(uint64_t N, uint64_t Base = 0) {
  for (uint64_t I = 0; I != N; ++I) {
    TraceEvent E;
    E.Name = "flight.selfcheck";
    E.Category = "test";
    E.StartNs = static_cast<int64_t>(Base + I);
    E.DurationNs = 2 * static_cast<int64_t>(Base + I) + 1;
    FlightRecorder::record(E);
  }
}

/// Smallest ring start() grants: 64 slots.
constexpr size_t MinRingBytes = 64 * sizeof(TraceEvent);

class FlightRecorderTest : public testing::Test {
protected:
  void SetUp() override {
    if (!FlightRecorder::compiledIn())
      GTEST_SKIP() << "tracing compiled out";
  }
  void TearDown() override { FlightRecorder::stop(); }
};

TEST_F(FlightRecorderTest, RecordsBelowCapacityWithoutLoss) {
  FlightRecorder::start(MinRingBytes);
  recordSelfChecking(40);
  std::vector<TraceEvent> Events = FlightRecorder::snapshot();
  ASSERT_EQ(Events.size(), 40u);
  for (uint64_t I = 0; I != Events.size(); ++I) {
    EXPECT_EQ(Events[I].StartNs, static_cast<int64_t>(I)) << "order lost";
    EXPECT_EQ(Events[I].DurationNs, 2 * Events[I].StartNs + 1);
  }
  FlightRecorder::Stats S = FlightRecorder::stats();
  EXPECT_EQ(S.Recorded, 40u);
  EXPECT_EQ(S.Overwritten, 0u);
  EXPECT_EQ(S.Threads, 1u);
}

TEST_F(FlightRecorderTest, OverwriteKeepsTheMostRecentWindow) {
  FlightRecorder::start(MinRingBytes);
  const uint64_t Cap = FlightRecorder::stats().SlotsPerThread;
  ASSERT_EQ(Cap, 64u);
  recordSelfChecking(3 * Cap);
  std::vector<TraceEvent> Events = FlightRecorder::snapshot();
  // Once wrapped, snapshot() yields Cap - 1 events: it cannot prove
  // the writer is quiescent, so the oldest slot — the one an
  // unpublished in-flight write would be reusing — is always dropped.
  ASSERT_EQ(Events.size(), Cap - 1);
  // The surviving window is exactly the most recent Cap - 1 events,
  // in order.
  for (uint64_t I = 0; I != Cap - 1; ++I)
    EXPECT_EQ(Events[I].StartNs, static_cast<int64_t>(2 * Cap + 1 + I));
  FlightRecorder::Stats S = FlightRecorder::stats();
  EXPECT_EQ(S.Recorded, 3 * Cap);
  EXPECT_EQ(S.Overwritten, 2 * Cap);
}

TEST_F(FlightRecorderTest, MemoryStaysBoundedAtTheConfiguredCap) {
  const size_t Bytes = 4096;
  FlightRecorder::start(Bytes);
  recordSelfChecking(100000);
  FlightRecorder::Stats S = FlightRecorder::stats();
  EXPECT_EQ(S.Threads, 1u);
  EXPECT_EQ(S.SlotsPerThread, Bytes / sizeof(TraceEvent));
  EXPECT_LE(S.BytesInUse, S.Threads * Bytes);
  EXPECT_EQ(S.BytesInUse,
            uint64_t(S.Threads) * S.SlotsPerThread * sizeof(TraceEvent));
}

TEST_F(FlightRecorderTest, StartDiscardsThePreviousWindowAndResizes) {
  FlightRecorder::start(MinRingBytes);
  recordSelfChecking(50);
  FlightRecorder::start(2 * MinRingBytes);
  EXPECT_TRUE(FlightRecorder::snapshot().empty())
      << "start() must discard previously buffered events";
  recordSelfChecking(10);
  FlightRecorder::Stats S = FlightRecorder::stats();
  EXPECT_EQ(S.SlotsPerThread, 128u);
  EXPECT_EQ(S.Recorded, 10u);
}

// The contention matrix the header promises: N writer threads racing
// one snapshotting reader; every returned event must satisfy the
// self-check relation (no torn slots) and per-thread order must hold.
class FlightRecorderContentionTest
    : public FlightRecorderTest,
      public testing::WithParamInterface<unsigned> {};

TEST_P(FlightRecorderContentionTest, SnapshotNeverTearsUnderContention) {
  const unsigned Writers = GetParam();
  const uint64_t PerThread = 20000;
  FlightRecorder::start(MinRingBytes);

  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> SnapshotsTaken{0};
  std::thread Reader([&] {
    while (!Stop.load(std::memory_order_relaxed)) {
      for (const TraceEvent &E : FlightRecorder::snapshot()) {
        // A torn event breaks the payload relation; failing inside the
        // reader thread would be lost, so collect and assert below.
        if (E.DurationNs != 2 * E.StartNs + 1)
          std::abort();
      }
      SnapshotsTaken.fetch_add(1, std::memory_order_relaxed);
    }
  });

  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != Writers; ++T)
    Threads.emplace_back(
        [&, T] { recordSelfChecking(PerThread, uint64_t(T) << 32); });
  for (std::thread &T : Threads)
    T.join();
  Stop.store(true, std::memory_order_relaxed);
  Reader.join();
  EXPECT_GT(SnapshotsTaken.load(), 0u);

  // Quiescent now: the final snapshot must hold the last window of
  // every writer (Cap - 1 events per wrapped ring — the oldest slot is
  // always dropped as potentially in-flight), in per-thread order.
  std::vector<TraceEvent> Events = FlightRecorder::snapshot();
  FlightRecorder::Stats S = FlightRecorder::stats();
  EXPECT_EQ(S.Threads, Writers);
  EXPECT_EQ(S.Recorded, uint64_t(Writers) * PerThread);
  EXPECT_EQ(S.Overwritten, uint64_t(Writers) * (PerThread - 64));
  ASSERT_EQ(Events.size(), uint64_t(Writers) * 63);
  for (size_t I = 1; I != Events.size(); ++I)
    if (Events[I].Tid == Events[I - 1].Tid)
      EXPECT_EQ(Events[I].StartNs, Events[I - 1].StartNs + 1)
          << "per-thread window not contiguous at " << I;
  for (const TraceEvent &E : Events)
    ASSERT_EQ(E.DurationNs, 2 * E.StartNs + 1) << "torn event survived";
}

INSTANTIATE_TEST_SUITE_P(Contention, FlightRecorderContentionTest,
                         testing::Values(1u, 4u, 8u));

TEST_F(FlightRecorderTest, SpanGateFeedsRingsWithoutFullTracing) {
  FlightRecorder::start(MinRingBytes);
  ASSERT_FALSE(Trace::enabled()) << "full tracing must stay disarmed";
  ASSERT_TRUE(Trace::capturing()) << "flight bit must open the Span gate";
  { Span S("FlightRecorderTest::span", "test"); }
  std::vector<TraceEvent> Events = FlightRecorder::snapshot();
  ASSERT_EQ(Events.size(), 1u);
  EXPECT_STREQ(Events[0].Name, "FlightRecorderTest::span");
  EXPECT_TRUE(Trace::snapshot().empty())
      << "flight-only spans must not reach the full trace buffers";
  FlightRecorder::stop();
  EXPECT_FALSE(Trace::capturing());
}

TEST_F(FlightRecorderTest, DumpIsValidChromeTraceWithHeader) {
  FlightRecorder::start(MinRingBytes);
  { Span S("FlightRecorderTest::dumped", "test"); }
  std::string Error;
  std::optional<json::Value> Dump =
      json::parse(FlightRecorder::toJson("unit-test"), &Error);
  ASSERT_TRUE(Dump.has_value()) << Error;
  const json::Value *Header = Dump->find("flightRecorder");
  ASSERT_NE(Header, nullptr);
  EXPECT_EQ(Header->stringAt("reason"), "unit-test");
  EXPECT_EQ(Header->uintAt("recorded"), 1u);
  ASSERT_NE(Header->find("build"), nullptr);
  const json::Value *Events = Dump->find("traceEvents");
  ASSERT_NE(Events, nullptr);
  ASSERT_TRUE(Events->isArray());
  bool FoundSpan = false;
  for (const json::Value &E : Events->asArray())
    FoundSpan |= E.stringAt("name") == "FlightRecorderTest::dumped";
  EXPECT_TRUE(FoundSpan);
}

TEST_F(FlightRecorderTest, PostmortemDumpsAndJournals) {
  const char *Path = "flight_postmortem_test.json";
  std::remove(Path);
  EventLog::start("");
  FlightRecorder::start(MinRingBytes, Path);
  { Span S("FlightRecorderTest::postmortem", "test"); }
  EXPECT_TRUE(FlightRecorder::postmortem("unit-test"));

  std::ifstream File(Path);
  ASSERT_TRUE(File.good()) << "postmortem must write the configured path";
  std::stringstream Buffer;
  Buffer << File.rdbuf();
  std::optional<json::Value> Dump = json::parse(Buffer.str());
  ASSERT_TRUE(Dump.has_value());
  EXPECT_EQ(Dump->find("flightRecorder")->stringAt("reason"), "unit-test");

  bool Journaled = false;
  for (const std::string &Line : EventLog::recentLines())
    Journaled |= Line.find("flight-dump") != std::string::npos;
  EXPECT_TRUE(Journaled) << "postmortem must leave a journal event";
  EventLog::stop();
  std::remove(Path);
}

} // namespace
