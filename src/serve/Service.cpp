//===- serve/Service.cpp - Request routing for depserved --------*- C++ -*-===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/Service.h"

#include "driver/Analyzer.h"
#include "driver/Corpus.h"
#include "ir/PrettyPrinter.h"
#include "core/Explain.h"
#include "parser/Parser.h"
#include "serve/AccessLog.h"
#include "support/BuildInfo.h"
#include "support/Env.h"
#include "support/EventLog.h"
#include "support/FlightRecorder.h"
#include "support/JobGraph.h"
#include "support/Json.h"
#include "support/Metrics.h"
#include "support/RequestContext.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

#include <algorithm>
#include <deque>
#include <mutex>

using namespace pdt;
using namespace pdt::serve;

//===----------------------------------------------------------------------===//
// Canonical tables (cross-checked against docs/SERVING.md by tests)
//===----------------------------------------------------------------------===//

const std::vector<std::string> &pdt::serve::allEndpoints() {
  static const std::vector<std::string> Endpoints = {
      "GET /healthz",          "GET /v1/version",
      "GET /v1/stats",         "GET /v1/corpus",
      "GET /v1/metricz",       "GET /v1/debug/flight",
      "GET /v1/debug/requests", "POST /v1/analyze",
      "POST /v1/batch",
  };
  return Endpoints;
}

const std::vector<int> &pdt::serve::allStatusCodes() {
  static const std::vector<int> Codes = {100, 200, 400, 404, 405, 408, 413,
                                         422, 429, 431, 500, 501, 503, 505};
  return Codes;
}

const std::vector<std::string> &pdt::serve::allEnvKnobs() {
  static const std::vector<std::string> Knobs = {
      "PDT_SERVE_PORT",       "PDT_SERVE_THREADS",     "PDT_SERVE_QUEUE",
      "PDT_SERVE_DEADLINE_MS", "PDT_SERVE_MAX_PAIRS",  "PDT_SERVE_JOB_THREADS",
      "PDT_SERVE_MAX_BODY",   "PDT_SERVE_IDLE_MS",     "PDT_ACCESS_LOG",
  };
  return Knobs;
}

//===----------------------------------------------------------------------===//
// Response helpers
//===----------------------------------------------------------------------===//

namespace {

HttpResponse jsonResponse(int Status, std::string Body) {
  HttpResponse R;
  R.Status = Status;
  R.Headers.push_back({"Content-Type", "application/json"});
  R.Body = std::move(Body);
  return R;
}

/// The stable machine-readable code for each status (the "error"
/// member of every non-2xx body).
const char *errorCode(int Status) {
  switch (Status) {
  case 400: return "bad-request";
  case 404: return "not-found";
  case 405: return "method-not-allowed";
  case 408: return "request-timeout";
  case 413: return "payload-too-large";
  case 422: return "unparseable-kernel";
  case 429: return "too-many-requests";
  case 431: return "header-fields-too-large";
  case 500: return "internal";
  case 501: return "not-implemented";
  case 503: return "draining";
  case 505: return "version-not-supported";
  default: return "error";
  }
}

std::string quoted(const std::string &S) {
  return "\"" + json::escape(S) + "\"";
}

} // namespace

HttpResponse pdt::serve::errorResponse(int Status, const std::string &Detail) {
  std::string Body = "{\"error\":";
  Body += quoted(errorCode(Status));
  Body += ",\"detail\":";
  Body += quoted(Detail);
  // Error bodies are diagnostics, not analysis results, so they may —
  // and for triage, must — name the request. Success bodies never do
  // (the determinism contract); there the ID lives in the response
  // header only.
  if (uint32_t Req = RequestContext::current()) {
    std::string Id = RequestContext::idFor(Req);
    if (!Id.empty()) {
      Body += ",\"request_id\":";
      Body += quoted(Id);
    }
  }
  Body += "}\n";
  return jsonResponse(Status, std::move(Body));
}

//===----------------------------------------------------------------------===//
// Request specs
//===----------------------------------------------------------------------===//

namespace {

struct KernelSpec {
  std::string Name;
  std::string Source;
  bool FromCorpus = false;
  std::string Error; ///< Nonempty: resolution failed (batch keeps going).
};

struct AnalyzeSpec {
  std::vector<KernelSpec> Kernels;
  AnalyzerOptions Options;
  bool Explain = false;
  bool IncludeProgram = false;
};

/// Builds AnalyzerOptions from the request's "options" object, with
/// the per-request budget clamped to the service limits. Returns
/// false with \p Error set on any malformed or unknown member.
bool parseOptions(const json::Value *Opts, const ServiceLimits &Limits,
                  AnalyzerOptions &Out, std::string &Error) {
  // Server-side defaults first: requests may lower, never raise.
  Out.NumThreads = 1;
  if (Limits.DeadlineMs)
    Out.Budget.Deadline = std::chrono::milliseconds(Limits.DeadlineMs);
  Out.Budget.MaxPairs = Limits.MaxPairs;

  if (!Opts)
    return true;
  if (!Opts->isObject()) {
    Error = "\"options\" must be an object";
    return false;
  }
  for (const json::Member &M : Opts->asObject()) {
    const std::string &Key = M.first;
    const json::Value &V = M.second;
    if (Key == "normalize" || Key == "ivsub" || Key == "input_deps") {
      if (!V.isBool()) {
        Error = "\"options." + Key + "\" must be a boolean";
        return false;
      }
      if (Key == "normalize")
        Out.Normalize = V.asBool();
      else if (Key == "ivsub")
        Out.SubstituteIVs = V.asBool();
      else
        Out.IncludeInputDeps = V.asBool();
    } else if (Key == "budget_ms" || Key == "max_pairs") {
      if (!V.isNumber() || V.asDouble() < 0 ||
          V.asDouble() != static_cast<double>(V.asInt())) {
        Error = "\"options." + Key + "\" must be a non-negative integer";
        return false;
      }
      uint64_t Requested = V.asUInt();
      if (Key == "budget_ms") {
        uint64_t Cap = Limits.DeadlineMs;
        uint64_t Effective =
            Cap == 0 ? Requested
                     : (Requested == 0 ? Cap : std::min(Requested, Cap));
        if (Effective)
          Out.Budget.Deadline = std::chrono::milliseconds(Effective);
        else
          Out.Budget.Deadline.reset();
      } else {
        uint64_t Cap = Limits.MaxPairs;
        Out.Budget.MaxPairs =
            Cap == 0 ? Requested
                     : (Requested == 0 ? Cap : std::min(Requested, Cap));
      }
    } else if (Key == "symbols") {
      if (!V.isObject()) {
        Error = "\"options.symbols\" must be an object of [lo, hi] ranges";
        return false;
      }
      for (const json::Member &Sym : V.asObject()) {
        if (!Sym.second.isArray() || Sym.second.asArray().size() != 2) {
          Error = "symbol range for \"" + Sym.first +
                  "\" must be a [lo, hi] pair (null = unbounded)";
          return false;
        }
        const json::Value &Lo = Sym.second.asArray()[0];
        const json::Value &Hi = Sym.second.asArray()[1];
        if ((!Lo.isNull() && !Lo.isNumber()) ||
            (!Hi.isNull() && !Hi.isNumber())) {
          Error = "symbol range bounds for \"" + Sym.first +
                  "\" must be integers or null";
          return false;
        }
        Bound L = Lo.isNull() ? Bound{} : Bound{Lo.asInt()};
        Bound H = Hi.isNull() ? Bound{} : Bound{Hi.asInt()};
        if (L && H && *L > *H) {
          Error = "symbol range for \"" + Sym.first + "\" is empty";
          return false;
        }
        Out.Symbols[Sym.first] = Interval(L, H);
      }
    } else {
      Error = "unknown member \"options." + Key + "\"";
      return false;
    }
  }
  return true;
}

/// One kernel descriptor: {"source": "..."} or {"corpus": "name"},
/// plus an optional display "name".
bool parseKernel(const json::Value &V, KernelSpec &Out, std::string &Error) {
  if (!V.isObject()) {
    Error = "kernel descriptor must be an object";
    return false;
  }
  const json::Value *Source = nullptr;
  const json::Value *Corpus = nullptr;
  for (const json::Member &M : V.asObject()) {
    if (M.first == "source")
      Source = &M.second;
    else if (M.first == "corpus")
      Corpus = &M.second;
    else if (M.first == "name") {
      if (!M.second.isString()) {
        Error = "\"name\" must be a string";
        return false;
      }
      Out.Name = M.second.asString();
    } else {
      Error = "unknown member \"" + M.first + "\" in kernel descriptor";
      return false;
    }
  }
  if ((Source != nullptr) == (Corpus != nullptr)) {
    Error = "kernel descriptor needs exactly one of \"source\" or \"corpus\"";
    return false;
  }
  if (Source) {
    if (!Source->isString()) {
      Error = "\"source\" must be a string";
      return false;
    }
    Out.Source = Source->asString();
    if (Out.Name.empty())
      Out.Name = "<request>";
  } else {
    if (!Corpus->isString()) {
      Error = "\"corpus\" must be a string";
      return false;
    }
    Out.FromCorpus = true;
    const CorpusKernel *K = findKernel(Corpus->asString());
    if (!K) {
      Out.Error = "unknown corpus kernel \"" + Corpus->asString() + "\"";
      Out.Name = Corpus->asString();
      return true; // resolution error, not a malformed request
    }
    Out.Source = K->Source;
    if (Out.Name.empty())
      Out.Name = K->Name;
  }
  return true;
}

/// Parses the /v1/analyze or /v1/batch body.
bool parseSpec(const json::Value &Doc, bool Batch, const ServiceLimits &Limits,
               AnalyzeSpec &Out, std::string &Error) {
  if (!Doc.isObject()) {
    Error = "request body must be a JSON object";
    return false;
  }
  const json::Value *Options = nullptr;
  const json::Value *Kernels = nullptr;
  KernelSpec Single;
  bool SawInline = false;
  for (const json::Member &M : Doc.asObject()) {
    const std::string &Key = M.first;
    if (Key == "options") {
      Options = &M.second;
    } else if (Key == "explain" || Key == "program") {
      if (!M.second.isBool()) {
        Error = "\"" + Key + "\" must be a boolean";
        return false;
      }
      (Key == "explain" ? Out.Explain : Out.IncludeProgram) = M.second.asBool();
    } else if (!Batch && (Key == "source" || Key == "corpus" ||
                          Key == "name")) {
      SawInline = true; // parsed below via parseKernel on the whole doc
    } else if (Batch && Key == "kernels") {
      Kernels = &M.second;
    } else {
      Error = "unknown member \"" + Key + "\"";
      return false;
    }
  }
  if (!parseOptions(Options, Limits, Out.Options, Error))
    return false;

  if (!Batch) {
    if (!SawInline) {
      Error = "request needs one of \"source\" or \"corpus\"";
      return false;
    }
    // Strip the non-kernel members before reusing parseKernel.
    std::vector<json::Member> KernelMembers;
    for (const json::Member &M : Doc.asObject())
      if (M.first == "source" || M.first == "corpus" || M.first == "name")
        KernelMembers.push_back(M);
    if (!parseKernel(json::Value(std::move(KernelMembers)), Single, Error))
      return false;
    Out.Kernels.push_back(std::move(Single));
    return true;
  }

  if (!Kernels || !Kernels->isArray()) {
    Error = "\"kernels\" must be an array of kernel descriptors";
    return false;
  }
  if (Kernels->asArray().empty()) {
    Error = "\"kernels\" must not be empty";
    return false;
  }
  if (Limits.MaxBatchKernels &&
      Kernels->asArray().size() > Limits.MaxBatchKernels) {
    Error = "batch of " + std::to_string(Kernels->asArray().size()) +
            " kernels exceeds the cap of " +
            std::to_string(Limits.MaxBatchKernels);
    return false;
  }
  for (const json::Value &K : Kernels->asArray()) {
    KernelSpec Spec;
    if (!parseKernel(K, Spec, Error))
      return false;
    Out.Kernels.push_back(std::move(Spec));
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Result rendering
//===----------------------------------------------------------------------===//

/// Renders one analyzed kernel as the pdt-serve-v1 result object.
/// Pure function of the AnalysisResult: no timestamps, no counters —
/// the concurrent-determinism contract depends on it.
std::string renderResult(const KernelSpec &Spec, const AnalysisResult &R,
                         const AnalyzeSpec &Request) {
  std::string Out = "{\"schema\":\"pdt-serve-v1\",\"name\":";
  Out += quoted(Spec.Name);
  Out += ",\"parsed\":true,\"accesses\":[";
  const std::vector<ArrayAccess> &Accesses = R.Graph.accesses();
  for (size_t I = 0; I != Accesses.size(); ++I) {
    if (I)
      Out += ',';
    Out += "{\"id\":" + std::to_string(I);
    Out += ",\"array\":" + quoted(Accesses[I].Ref->getArrayName());
    Out += ",\"write\":";
    Out += Accesses[I].IsWrite ? "true" : "false";
    Out += ",\"depth\":" + std::to_string(Accesses[I].LoopStack.size());
    Out += '}';
  }
  Out += "],\"edges\":[";
  const std::vector<Dependence> &Edges = R.Graph.dependences();
  for (size_t I = 0; I != Edges.size(); ++I) {
    const Dependence &D = Edges[I];
    if (I)
      Out += ',';
    Out += "{\"src\":" + std::to_string(D.Source);
    Out += ",\"sink\":" + std::to_string(D.Sink);
    Out += ",\"kind\":" + quoted(dependenceKindName(D.Kind));
    Out += ",\"vector\":" + quoted(D.Vector.str());
    Out += ",\"carrier\":";
    Out += D.Carrier ? quoted(D.Carrier->getIndexName()) : "null";
    Out += ",\"level\":";
    Out += D.CarriedLevel ? std::to_string(*D.CarriedLevel) : "null";
    Out += ",\"exact\":";
    Out += D.Exact ? "true" : "false";
    Out += ",\"degraded\":";
    Out += D.Degraded ? "true" : "false";
    Out += ",\"reason\":";
    Out += D.DegradedReason ? quoted(failureKindName(*D.DegradedReason))
                            : "null";
    Out += '}';
  }
  Out += "],\"loops\":[";
  std::vector<const DoLoop *> Loops = R.Graph.allLoops();
  for (size_t I = 0; I != Loops.size(); ++I) {
    if (I)
      Out += ',';
    Out += "{\"index\":" + quoted(Loops[I]->getIndexName());
    Out += ",\"parallel\":";
    Out += R.Graph.isLoopParallel(Loops[I]) ? "true" : "false";
    Out += ",\"carried\":" +
           std::to_string(R.Graph.carriedEdgeCount(Loops[I]));
    Out += '}';
  }
  Out += "],\"stats\":{\"reference_pairs\":";
  Out += std::to_string(R.Stats.ReferencePairs);
  Out += ",\"proven_independent\":";
  Out += std::to_string(R.Stats.IndependentPairs);
  Out += ",\"degraded\":";
  Out += std::to_string(R.Stats.DegradedResults);
  Out += "},\"failures\":[";
  for (size_t I = 0; I != R.Failures.size(); ++I) {
    if (I)
      Out += ',';
    Out += quoted(R.Failures[I].str());
  }
  Out += "]";
  if (Request.Explain && R.Prog) {
    Out += ",\"explain\":";
    Out += quoted(explainProgram(*R.Prog, R.ResolvedSymbols,
                                 Request.Options.IncludeInputDeps));
  }
  if (Request.IncludeProgram && R.Prog) {
    Out += ",\"program\":";
    Out += quoted(programToString(*R.Prog));
  }
  Out += '}';
  return Out;
}

/// The 422 body for an unparseable kernel (also embedded in batch
/// results).
std::string renderParseFailure(const KernelSpec &Spec,
                               const std::vector<Diagnostic> &Diagnostics) {
  std::string Out = "{\"error\":\"unparseable-kernel\",\"name\":";
  Out += quoted(Spec.Name);
  Out += ",\"detail\":\"kernel source failed to parse\",\"diagnostics\":[";
  for (size_t I = 0; I != Diagnostics.size(); ++I) {
    if (I)
      Out += ',';
    Out += quoted(Diagnostics[I].str());
  }
  Out += "]}";
  return Out;
}

std::string renderResolutionFailure(const KernelSpec &Spec) {
  std::string Out = "{\"error\":\"not-found\",\"name\":";
  Out += quoted(Spec.Name);
  Out += ",\"detail\":";
  Out += quoted(Spec.Error);
  Out += '}';
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// Service
//===----------------------------------------------------------------------===//

struct Service::StatsCell {
  std::mutex Mutex;
  TestStats Stats;
};

/// What route() hands back to handle() about the one request it just
/// served, for the access line, the debug ring, and the journal event.
struct Service::RouteTelemetry {
  uint64_t AnalyzeNs = 0; ///< Inside the parse->analyze job graph.
  uint64_t Analyses = 0;  ///< Kernels analyzed to completion.
  TestStats Delta;        ///< This request's TestStats contribution.
};

/// The /v1/debug/requests backing store: a slot-keyed in-flight list
/// (slots, not IDs, so concurrent requests reusing one client ID stay
/// distinct) plus a bounded ring of completed summaries.
struct Service::DebugRing {
  std::mutex Mutex;
  uint64_t NextSlot = 0;
  std::vector<std::pair<uint64_t, RequestSummary>> InFlight;
  std::deque<RequestSummary> Completed;

  uint64_t noteStart(const std::string &Id, const std::string &Route) {
    std::lock_guard<std::mutex> Lock(Mutex);
    uint64_t Slot = ++NextSlot;
    RequestSummary S;
    S.Id = Id;
    S.Route = Route;
    InFlight.push_back({Slot, std::move(S)});
    return Slot;
  }

  void noteFinish(uint64_t Slot, RequestSummary Done) {
    std::lock_guard<std::mutex> Lock(Mutex);
    for (size_t I = 0; I != InFlight.size(); ++I) {
      if (InFlight[I].first == Slot) {
        InFlight.erase(InFlight.begin() + I);
        break;
      }
    }
    Completed.push_back(std::move(Done));
    if (Completed.size() > DebugRingCapacity)
      Completed.pop_front();
  }
};

Service::Service(ServiceLimits Limits)
    : Limits(Limits), Stats(std::make_shared<StatsCell>()),
      Ring(std::make_shared<DebugRing>()) {}

ServiceLimits Service::limitsFromEnvironment() {
  ServiceLimits L;
  if (std::optional<int64_t> V = envInt("PDT_SERVE_DEADLINE_MS", 0, 3600000))
    L.DeadlineMs = static_cast<uint64_t>(*V);
  if (std::optional<int64_t> V =
          envInt("PDT_SERVE_MAX_PAIRS", 0, 1000000000000))
    L.MaxPairs = static_cast<uint64_t>(*V);
  if (std::optional<int64_t> V = envInt("PDT_SERVE_JOB_THREADS", 1, 64))
    L.JobThreads = static_cast<unsigned>(*V);
  return L;
}

ServiceCounters Service::counters() const {
  ServiceCounters C;
  C.Requests = CRequests.load(std::memory_order_relaxed);
  C.Ok = COk.load(std::memory_order_relaxed);
  C.ClientErrors = CClient.load(std::memory_order_relaxed);
  C.ServerErrors = CServer.load(std::memory_order_relaxed);
  C.Analyses = CAnalyses.load(std::memory_order_relaxed);
  C.ParseFailures = CParseFailures.load(std::memory_order_relaxed);
  C.ReferencePairs = CRefPairs.load(std::memory_order_relaxed);
  C.IndependentPairs = CIndependent.load(std::memory_order_relaxed);
  C.DegradedResults = CDegraded.load(std::memory_order_relaxed);
  C.EdgesEmitted = CEdges.load(std::memory_order_relaxed);
  return C;
}

TestStats Service::accumulatedStats() const {
  std::lock_guard<std::mutex> Lock(Stats->Mutex);
  return Stats->Stats;
}

std::vector<RequestSummary> Service::recentRequests() const {
  std::lock_guard<std::mutex> Lock(Ring->Mutex);
  std::vector<RequestSummary> Out;
  Out.reserve(Ring->InFlight.size() + Ring->Completed.size());
  for (const std::pair<uint64_t, RequestSummary> &P : Ring->InFlight)
    Out.push_back(P.second);
  for (const RequestSummary &S : Ring->Completed)
    Out.push_back(S);
  return Out;
}

HttpResponse Service::handle(const HttpRequest &Req) {
  CRequests.fetch_add(1, std::memory_order_relaxed);

  // Adopt the client's X-PDT-Request-Id (when well-formed) or mint one;
  // the scope makes the ID visible to every span, journal line, flight
  // slot, and JobGraph continuation this request runs.
  std::string Id;
  if (const std::string *H = Req.header("X-PDT-Request-Id");
      H && RequestContext::validId(*H))
    Id = *H;
  else
    Id = RequestContext::mint(RequestContext::nextSequence());
  RequestContext::Scope Ctx(RequestContext::intern(Id));

  std::string Route =
      Req.Method + " " + Req.Target.substr(0, Req.Target.find('?'));
  uint64_t Slot = Ring->noteStart(Id, Route);

  int64_t T0 = Trace::nowNs();
  RouteTelemetry T;
  HttpResponse R;
  {
    // One span per request, so a flight dump shows the request even
    // when the route touched no instrumented analysis code.
    Span RequestSpan("serve.request", "serve");
    try {
      R = route(Req, T);
    } catch (const std::exception &E) {
      EventLog::event(EventSeverity::Error, "serve", "internal-error",
                      E.what());
      R = errorResponse(500, "internal error");
    } catch (...) {
      EventLog::event(EventSeverity::Error, "serve", "internal-error",
                      "unknown exception");
      R = errorResponse(500, "internal error");
    }
  }
  uint64_t WallNs = static_cast<uint64_t>(Trace::nowNs() - T0);

  if (R.Status >= 500)
    CServer.fetch_add(1, std::memory_order_relaxed);
  else if (R.Status >= 400)
    CClient.fetch_add(1, std::memory_order_relaxed);
  else
    COk.fetch_add(1, std::memory_order_relaxed);

  // Every response names its request (success bodies never do — the
  // header is the only determinism-safe channel).
  R.Headers.push_back({"X-PDT-Request-Id", Id});

  // One journal event per request (the per-(layer,what) rate limiter
  // applies; the access log below is the exempt, exact record).
  EventLog::event(EventSeverity::Info, "serve", "request", Route,
                  {{"status", static_cast<uint64_t>(R.Status)},
                   {"wall_ns", WallNs},
                   {"analyses", T.Analyses}});

  RequestSummary Done;
  Done.Id = Id;
  Done.Route = Route;
  Done.Status = R.Status;
  Done.WallNs = WallNs;
  Done.AnalyzeNs = T.AnalyzeNs;
  Done.Analyses = T.Analyses;
  Done.ReferencePairs = T.Delta.ReferencePairs;
  Done.IndependentPairs = T.Delta.IndependentPairs;
  Done.DegradedResults = T.Delta.DegradedResults;
  Ring->noteFinish(Slot, std::move(Done));

  // Consume the admission-queue wait unconditionally: it belongs to
  // this request whether or not the log is armed (a later request on
  // this keep-alive connection must not inherit it).
  uint64_t QueueNs = AccessLog::takeQueueNs();
  if (AccessLog::enabled()) {
    AccessRecord A;
    A.Id = std::move(Id);       // last use of either: the response header
    A.Route = std::move(Route); // and the ring summary hold their own copies
    A.Status = R.Status;
    A.BytesIn = Req.Body.size();
    A.BytesOut = R.Body.size();
    A.WallNs = WallNs;
    A.QueueNs = QueueNs;
    A.AnalyzeNs = T.AnalyzeNs;
    A.Analyses = T.Analyses;
    A.ReferencePairs = T.Delta.ReferencePairs;
    A.IndependentPairs = T.Delta.IndependentPairs;
    A.DegradedResults = T.Delta.DegradedResults;
    A.BatchedZIV = T.Delta.BatchedZIV;
    A.BatchedStrongSIV = T.Delta.BatchedStrongSIV;
    A.ScalarFallback = T.Delta.ScalarFallback;
    A.StoreHits = T.Delta.StoreHits;
    A.StoreMisses = T.Delta.StoreMisses;
    AccessLog::append(A);
  }
  return R;
}

HttpResponse Service::route(const HttpRequest &Req, RouteTelemetry &T) {
  // Query strings are accepted and ignored (documented).
  std::string Path = Req.Target.substr(0, Req.Target.find('?'));

  bool IsAnalysis = Path == "/v1/analyze" || Path == "/v1/batch";
  bool Known = Path == "/healthz" || Path == "/v1/version" ||
               Path == "/v1/stats" || Path == "/v1/corpus" ||
               Path == "/v1/metricz" || Path == "/v1/debug/flight" ||
               Path == "/v1/debug/requests" || IsAnalysis;
  if (!Known)
    return errorResponse(404, "unknown endpoint \"" + Path + "\"");

  const char *Allowed = IsAnalysis ? "POST" : "GET";
  if (Req.Method != Allowed) {
    HttpResponse R = errorResponse(
        405, "method " + Req.Method + " not allowed for " + Path);
    R.Headers.push_back({"Allow", Allowed});
    return R;
  }

  if (Path == "/healthz") {
    std::string Body = "{\"status\":\"ok\",\"draining\":";
    Body += draining() ? "true" : "false";
    Body += "}\n";
    return jsonResponse(200, std::move(Body));
  }

  if (Path == "/v1/version") {
    std::string Body = "{\"schema\":\"pdt-serve-version-v1\",\"build\":";
    Body += buildInfoJson();
    Body += "}\n";
    return jsonResponse(200, std::move(Body));
  }

  if (Path == "/v1/stats") {
    ServiceCounters C = counters();
    std::string Body = "{\"schema\":\"pdt-serve-stats-v1\",\"draining\":";
    Body += draining() ? "true" : "false";
    Body += ",\"requests\":{\"total\":" + std::to_string(C.Requests);
    Body += ",\"ok\":" + std::to_string(C.Ok);
    Body += ",\"client_errors\":" + std::to_string(C.ClientErrors);
    Body += ",\"server_errors\":" + std::to_string(C.ServerErrors);
    Body += "},\"analysis\":{\"analyses\":" + std::to_string(C.Analyses);
    Body += ",\"parse_failures\":" + std::to_string(C.ParseFailures);
    Body += ",\"reference_pairs\":" + std::to_string(C.ReferencePairs);
    Body += ",\"proven_independent\":" + std::to_string(C.IndependentPairs);
    Body += ",\"degraded\":" + std::to_string(C.DegradedResults);
    Body += ",\"edges\":" + std::to_string(C.EdgesEmitted);
    Body += "}}\n";
    return jsonResponse(200, std::move(Body));
  }

  if (Path == "/v1/corpus") {
    const std::vector<CorpusKernel> &Kernels = corpus();
    std::string Body = "{\"schema\":\"pdt-serve-corpus-v1\",\"kernels\":[";
    for (size_t I = 0; I != Kernels.size(); ++I) {
      if (I)
        Body += ',';
      Body += "{\"name\":" + quoted(Kernels[I].Name);
      Body += ",\"suite\":" + quoted(Kernels[I].Suite);
      Body += '}';
    }
    Body += "]}\n";
    return jsonResponse(200, std::move(Body));
  }

  // Observability endpoints. Deliberately not gated on draining: an
  // operator watching a drain needs them most.
  if (Path == "/v1/metricz") {
    // Zeros when metrics are disarmed — a scraper should see the
    // series exist either way, not flap between 200 and 404.
    HttpResponse R;
    R.Status = 200;
    R.Headers.push_back(
        {"Content-Type", "text/plain; version=0.0.4; charset=utf-8"});
    R.Body = Metrics::toPrometheus(Metrics::snapshot());
    return R;
  }

  if (Path == "/v1/debug/flight") {
    if (!FlightRecorder::enabled())
      return errorResponse(
          404, "flight recorder is not armed (set PDT_FLIGHT=on)");
    return jsonResponse(200, FlightRecorder::toJson("serve-debug"));
  }

  if (Path == "/v1/debug/requests") {
    std::vector<RequestSummary> Requests = recentRequests();
    std::string Body =
        "{\"schema\":\"pdt-serve-requests-v1\",\"capacity\":" +
        std::to_string(DebugRingCapacity) + ",\"requests\":[";
    for (size_t I = 0; I != Requests.size(); ++I) {
      const RequestSummary &S = Requests[I];
      if (I)
        Body += ',';
      Body += "{\"id\":" + quoted(S.Id);
      Body += ",\"route\":" + quoted(S.Route);
      // Status 0 = still being routed (this request reports itself as
      // in flight).
      Body += ",\"in_flight\":";
      Body += S.Status == 0 ? "true" : "false";
      Body += ",\"status\":" + std::to_string(S.Status);
      Body += ",\"wall_ns\":" + std::to_string(S.WallNs);
      Body += ",\"analyze_ns\":" + std::to_string(S.AnalyzeNs);
      Body += ",\"analyses\":" + std::to_string(S.Analyses);
      Body += ",\"stats\":{\"reference_pairs\":" +
              std::to_string(S.ReferencePairs);
      Body += ",\"proven_independent\":" + std::to_string(S.IndependentPairs);
      Body += ",\"degraded\":" + std::to_string(S.DegradedResults);
      Body += "}}";
    }
    Body += "]}\n";
    return jsonResponse(200, std::move(Body));
  }

  // Analysis endpoints from here on.
  if (draining())
    return errorResponse(503, "server is draining; retry against another "
                              "instance");

  std::string JsonError;
  std::optional<json::Value> Doc = json::parse(Req.Body, &JsonError);
  if (!Doc) {
    EventLog::event(EventSeverity::Warn, "serve", "malformed-request",
                    JsonError);
    return errorResponse(400, "request body is not valid JSON: " + JsonError);
  }

  bool Batch = Path == "/v1/batch";
  AnalyzeSpec Spec;
  std::string SpecError;
  if (!parseSpec(*Doc, Batch, Limits, Spec, SpecError)) {
    EventLog::event(EventSeverity::Warn, "serve", "malformed-request",
                    SpecError);
    return errorResponse(400, SpecError);
  }

  // Run every kernel through the parse -> analyze job-graph pipeline
  // (the per-request pool has JobThreads workers; 1 = serial on this
  // thread).
  size_t N = Spec.Kernels.size();
  std::deque<ParseResult> Parsed(N);
  std::deque<AnalysisResult> Results(N);
  ThreadPool Pool(std::max(1u, Limits.JobThreads));
  JobGraph Graph;
  for (size_t I = 0; I != N; ++I) {
    if (!Spec.Kernels[I].Error.empty())
      continue; // corpus-name resolution failed; rendered below
    JobGraph::JobId ParseJob = Graph.add([&Parsed, &Spec, I] {
      Parsed[I] = parseProgram(Spec.Kernels[I].Source, Spec.Kernels[I].Name);
    });
    Graph.add(
        [&Parsed, &Results, &Spec, I] {
          ParseResult &P = Parsed[I];
          if (!P.succeeded()) {
            Results[I].Diagnostics = std::move(P.Diagnostics);
            return;
          }
          Results[I] = analyzeProgram(std::move(*P.Prog), Spec.Options);
        },
        {ParseJob});
  }
  int64_t AnalyzeT0 = Trace::nowNs();
  Graph.run(Pool);
  T.AnalyzeNs = static_cast<uint64_t>(Trace::nowNs() - AnalyzeT0);

  // Fold stats (global counters and this request's telemetry delta)
  // and render.
  uint64_t AnalyzedHere = 0;
  for (size_t I = 0; I != N; ++I) {
    if (!Spec.Kernels[I].Error.empty() || !Results[I].Parsed)
      continue;
    ++AnalyzedHere;
    T.Delta.merge(Results[I].Stats);
    CRefPairs.fetch_add(Results[I].Stats.ReferencePairs,
                        std::memory_order_relaxed);
    CIndependent.fetch_add(Results[I].Stats.IndependentPairs,
                           std::memory_order_relaxed);
    CDegraded.fetch_add(Results[I].Stats.DegradedResults,
                        std::memory_order_relaxed);
    CEdges.fetch_add(Results[I].Graph.dependences().size(),
                     std::memory_order_relaxed);
    std::lock_guard<std::mutex> Lock(Stats->Mutex);
    Stats->Stats.merge(Results[I].Stats);
  }
  T.Analyses = AnalyzedHere;
  CAnalyses.fetch_add(AnalyzedHere, std::memory_order_relaxed);
  Metrics::count(Metric::ServeAnalyses, AnalyzedHere);

  if (!Batch) {
    const KernelSpec &K = Spec.Kernels[0];
    if (!K.Error.empty())
      return jsonResponse(404, renderResolutionFailure(K) + "\n");
    if (!Results[0].Parsed) {
      CParseFailures.fetch_add(1, std::memory_order_relaxed);
      EventLog::event(EventSeverity::Warn, "serve", "unparseable-kernel",
                      K.Name);
      return jsonResponse(422,
                          renderParseFailure(K, Results[0].Diagnostics) + "\n");
    }
    return jsonResponse(200, renderResult(K, Results[0], Spec) + "\n");
  }

  std::string Body = "{\"schema\":\"pdt-serve-batch-v1\",\"results\":[";
  for (size_t I = 0; I != N; ++I) {
    if (I)
      Body += ',';
    const KernelSpec &K = Spec.Kernels[I];
    if (!K.Error.empty()) {
      Body += renderResolutionFailure(K);
    } else if (!Results[I].Parsed) {
      CParseFailures.fetch_add(1, std::memory_order_relaxed);
      Body += renderParseFailure(K, Results[I].Diagnostics);
    } else {
      Body += renderResult(K, Results[I], Spec);
    }
  }
  Body += "]}\n";
  return jsonResponse(200, std::move(Body));
}
