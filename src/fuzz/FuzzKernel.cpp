//===- fuzz/FuzzKernel.cpp - Differential-fuzzer kernel model -------------===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//

#include "fuzz/FuzzKernel.h"

#include "ir/LinearExpr.h"
#include "ir/PrettyPrinter.h"
#include "parser/Parser.h"
#include "support/Casting.h"
#include "support/MathExtras.h"

#include <cassert>
#include <sstream>

using namespace pdt;

const char *pdt::fuzzStratumName(FuzzStratum S) {
  switch (S) {
  case FuzzStratum::ZIV:
    return "ziv";
  case FuzzStratum::StrongSIV:
    return "strong-siv";
  case FuzzStratum::WeakZeroSIV:
    return "weak-zero-siv";
  case FuzzStratum::WeakCrossingSIV:
    return "weak-crossing-siv";
  case FuzzStratum::ExactSIV:
    return "exact-siv";
  case FuzzStratum::RDIV:
    return "rdiv";
  case FuzzStratum::CoupledMIV:
    return "coupled-miv";
  case FuzzStratum::SymbolicBound:
    return "symbolic-bound";
  case FuzzStratum::Degenerate:
    return "degenerate";
  case FuzzStratum::NearOverflow:
    return "near-overflow";
  }
  return "unknown";
}

std::optional<FuzzStratum> pdt::fuzzStratumFromName(const std::string &Name) {
  for (unsigned S = 0; S != NumFuzzStrata; ++S)
    if (Name == fuzzStratumName(static_cast<FuzzStratum>(S)))
      return static_cast<FuzzStratum>(S);
  return std::nullopt;
}

std::vector<FuzzPair> pdt::enumerateFuzzPairs(const FuzzKernel &K) {
  // Access numbering: statement S owns accesses 2*S (write) and
  // 2*S + 1 (read).
  unsigned NumAccesses = 2 * K.Stmts.size();
  auto SubscriptsOf = [&K](unsigned Access) -> const std::vector<LinearExpr> & {
    const FuzzStmt &S = K.Stmts[Access / 2];
    return Access % 2 == 0 ? S.Write : S.Read;
  };
  auto IsWrite = [](unsigned Access) { return Access % 2 == 0; };

  std::vector<FuzzPair> Pairs;
  for (unsigned I = 0; I != NumAccesses; ++I) {
    for (unsigned J = I; J != NumAccesses; ++J) {
      if (!IsWrite(I) && !IsWrite(J))
        continue; // Input dependences carry no soundness obligation.
      if (I == J && !IsWrite(I))
        continue;
      FuzzPair P;
      P.SrcAccess = I;
      P.SnkAccess = J;
      const std::vector<LinearExpr> &Src = SubscriptsOf(I);
      const std::vector<LinearExpr> &Snk = SubscriptsOf(J);
      assert(Src.size() == Snk.size() && "rank drift within a kernel");
      for (unsigned D = 0; D != Src.size(); ++D)
        P.Subscripts.emplace_back(Src[D], Snk[D], D);
      Pairs.push_back(std::move(P));
    }
  }
  return Pairs;
}

LoopNestContext pdt::symbolicFuzzContext(const FuzzKernel &K) {
  std::vector<LoopBounds> Loops;
  Loops.reserve(K.Loops.size());
  for (const FuzzLoop &L : K.Loops) {
    LoopBounds B;
    B.Index = L.Index;
    B.Lower = LinearExpr(L.Lower);
    B.Upper = L.UpperSymbol.empty() ? LinearExpr(L.Upper)
                                    : LinearExpr::symbol(L.UpperSymbol);
    Loops.push_back(std::move(B));
  }
  // Every sampled symbol value is >= 1 by construction, so the
  // standard array-extent assumption is consistent with the
  // instantiation the Oracle checks.
  SymbolRangeMap Symbols;
  for (const auto &[Name, Value] : K.SymbolValues) {
    (void)Value;
    Symbols[Name] = Interval(1, std::nullopt);
  }
  return LoopNestContext(std::move(Loops), std::move(Symbols));
}

std::optional<LinearExpr>
pdt::concretizeFuzzExpr(const LinearExpr &E,
                        const std::map<std::string, int64_t> &SymbolValues) {
  int64_t Constant = E.getConstant();
  for (const auto &[Name, Coeff] : E.symbolTerms()) {
    auto It = SymbolValues.find(Name);
    if (It == SymbolValues.end())
      return std::nullopt;
    std::optional<int64_t> Term = checkedMul(Coeff, It->second);
    if (!Term)
      return std::nullopt;
    std::optional<int64_t> Sum = checkedAdd(Constant, *Term);
    if (!Sum)
      return std::nullopt;
    Constant = *Sum;
  }
  LinearExpr Out(Constant);
  for (const auto &[Name, Coeff] : E.indexTerms())
    Out = Out + LinearExpr::index(Name, Coeff);
  return Out;
}

std::optional<ConcreteFuzzPair>
pdt::concretizeFuzzPair(const FuzzKernel &K, const FuzzPair &Pair) {
  ConcreteFuzzPair Out;
  std::vector<LoopBounds> Loops;
  for (const FuzzLoop &L : K.Loops) {
    LoopBounds B;
    B.Index = L.Index;
    B.Lower = LinearExpr(L.Lower);
    if (L.UpperSymbol.empty()) {
      B.Upper = LinearExpr(L.Upper);
    } else {
      auto It = K.SymbolValues.find(L.UpperSymbol);
      if (It == K.SymbolValues.end())
        return std::nullopt;
      B.Upper = LinearExpr(It->second);
    }
    Loops.push_back(std::move(B));
  }
  for (const SubscriptPair &S : Pair.Subscripts) {
    std::optional<LinearExpr> Src = concretizeFuzzExpr(S.Src, K.SymbolValues);
    std::optional<LinearExpr> Dst = concretizeFuzzExpr(S.Dst, K.SymbolValues);
    if (!Src || !Dst)
      return std::nullopt;
    Out.Subscripts.emplace_back(std::move(*Src), std::move(*Dst), S.Dim);
  }
  Out.Ctx = LoopNestContext(std::move(Loops), SymbolRangeMap());
  return Out;
}

Program pdt::fuzzKernelToProgram(const FuzzKernel &K) {
  Program P;
  ASTContext &Ctx = *P.Context;
  P.Name = "fuzz-" + std::to_string(K.Seed) + "-" + std::to_string(K.Index);

  std::vector<const Stmt *> Body;
  for (const FuzzStmt &S : K.Stmts) {
    std::vector<const Expr *> WriteSubs, ReadSubs;
    for (const LinearExpr &E : S.Write)
      WriteSubs.push_back(linearToExpr(Ctx, E));
    for (const LinearExpr &E : S.Read)
      ReadSubs.push_back(linearToExpr(Ctx, E));
    const ArrayElement *Target = Ctx.getArrayElement("a", std::move(WriteSubs));
    const Expr *Value =
        Ctx.getAdd(Ctx.getArrayElement("a", std::move(ReadSubs)), Ctx.getInt(1));
    Body.push_back(Ctx.createArrayAssign(Target, Value));
  }

  // Wrap innermost-out so the result is a perfect nest.
  for (auto It = K.Loops.rbegin(); It != K.Loops.rend(); ++It) {
    const Expr *Upper = It->UpperSymbol.empty()
                            ? static_cast<const Expr *>(Ctx.getInt(It->Upper))
                            : Ctx.getVar(It->UpperSymbol);
    const DoLoop *L = Ctx.createDoLoop(It->Index, Ctx.getInt(It->Lower), Upper,
                                       Ctx.getInt(1), std::move(Body));
    Body = {L};
  }
  P.TopLevel = std::move(Body);
  return P;
}

std::string pdt::fuzzKernelToSource(const FuzzKernel &K) {
  std::ostringstream OS;
  OS << "! pdt-fuzz seed=" << K.Seed << " index=" << K.Index
     << " stratum=" << fuzzStratumName(K.Stratum) << "\n";
  for (const auto &[Name, Value] : K.SymbolValues)
    OS << "! pdt-fuzz-symbol " << Name << " = " << Value << "\n";
  OS << programToString(fuzzKernelToProgram(K));
  return OS.str();
}

namespace {

/// Finds the single array read inside a statement value of the form
/// `a(...) + <constant>` (any expression tree with exactly one array
/// element works).
const ArrayElement *findSingleRead(const Expr *E) {
  switch (E->getKind()) {
  case Expr::Kind::ArrayElement:
    return cast<ArrayElement>(E);
  case Expr::Kind::IntLiteral:
  case Expr::Kind::VarRef:
    return nullptr;
  case Expr::Kind::Unary:
    return findSingleRead(cast<UnaryExpr>(E)->getOperand());
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    const ArrayElement *L = findSingleRead(B->getLHS());
    const ArrayElement *R = findSingleRead(B->getRHS());
    if (L && R)
      return nullptr; // More than one read: not a fuzz kernel shape.
    return L ? L : R;
  }
  }
  return nullptr;
}

} // namespace

std::optional<FuzzKernel> pdt::parseFuzzKernelSource(const std::string &Source) {
  FuzzKernel K;

  // Metadata lines are plain comments to the front end; scan them here.
  std::istringstream Lines(Source);
  std::string Line;
  while (std::getline(Lines, Line)) {
    std::istringstream LS(Line);
    std::string Bang, Tag;
    LS >> Bang >> Tag;
    if (Bang != "!")
      continue;
    if (Tag == "pdt-fuzz") {
      std::string Field;
      while (LS >> Field) {
        size_t Eq = Field.find('=');
        if (Eq == std::string::npos)
          continue;
        std::string Key = Field.substr(0, Eq), Val = Field.substr(Eq + 1);
        if (Key == "seed")
          std::istringstream(Val) >> K.Seed;
        else if (Key == "index")
          std::istringstream(Val) >> K.Index;
        else if (Key == "stratum")
          if (std::optional<FuzzStratum> S = fuzzStratumFromName(Val))
            K.Stratum = *S;
      }
    } else if (Tag == "pdt-fuzz-symbol") {
      std::string Name, Eq;
      int64_t Value;
      if (LS >> Name >> Eq >> Value && Eq == "=")
        K.SymbolValues[Name] = Value;
    }
  }

  ParseResult R = parseProgram(Source, "fuzz-repro");
  if (!R.succeeded())
    return std::nullopt;
  const Program &P = *R.Prog;

  // Descend the perfect nest: a chain of single-child DO loops ending
  // in a flat list of array assignments.
  std::set<std::string> IndexNames;
  const std::vector<const Stmt *> *Body = &P.TopLevel;
  while (Body->size() == 1 && isa<DoLoop>((*Body)[0])) {
    const auto *L = cast<DoLoop>((*Body)[0]);
    std::optional<int64_t> Step = evaluateConstantExpr(L->getStep());
    std::optional<int64_t> Lower = evaluateConstantExpr(L->getLower());
    if (!Step || *Step != 1 || !Lower)
      return std::nullopt;
    FuzzLoop FL;
    FL.Index = L->getIndexName();
    FL.Lower = *Lower;
    if (std::optional<int64_t> Upper = evaluateConstantExpr(L->getUpper())) {
      FL.Upper = *Upper;
    } else if (const auto *V = dyn_cast<VarRef>(L->getUpper())) {
      FL.UpperSymbol = V->getName();
      auto It = K.SymbolValues.find(V->getName());
      if (It == K.SymbolValues.end())
        return std::nullopt; // Symbol with no sampled value.
      FL.Upper = It->second;
    } else {
      return std::nullopt;
    }
    IndexNames.insert(FL.Index);
    K.Loops.push_back(std::move(FL));
    Body = &L->getBody();
  }

  std::string Array;
  for (const Stmt *S : *Body) {
    const auto *A = dyn_cast<AssignStmt>(S);
    if (!A || !A->isArrayAssign())
      return std::nullopt;
    const ArrayElement *Write = A->getArrayTarget();
    const ArrayElement *Read = findSingleRead(A->getValue());
    if (!Read || Read->getArrayName() != Write->getArrayName() ||
        Read->getNumDims() != Write->getNumDims())
      return std::nullopt;
    if (Array.empty())
      Array = Write->getArrayName();
    else if (Array != Write->getArrayName())
      return std::nullopt;
    FuzzStmt FS;
    for (const Expr *Sub : Write->getSubscripts()) {
      std::optional<LinearExpr> E = buildLinearExpr(Sub, IndexNames);
      if (!E)
        return std::nullopt;
      FS.Write.push_back(std::move(*E));
    }
    for (const Expr *Sub : Read->getSubscripts()) {
      std::optional<LinearExpr> E = buildLinearExpr(Sub, IndexNames);
      if (!E)
        return std::nullopt;
      FS.Read.push_back(std::move(*E));
    }
    K.Stmts.push_back(std::move(FS));
  }
  if (K.Stmts.empty())
    return std::nullopt;
  unsigned Rank = K.Stmts[0].Write.size();
  for (const FuzzStmt &S : K.Stmts)
    if (S.Write.size() != Rank || S.Read.size() != Rank)
      return std::nullopt;

  // Drop sampled values for symbols the kernel no longer mentions so
  // equality against a freshly generated kernel is structural.
  std::map<std::string, int64_t> Used;
  for (const FuzzLoop &L : K.Loops)
    if (!L.UpperSymbol.empty())
      Used.insert({L.UpperSymbol, K.SymbolValues.at(L.UpperSymbol)});
  for (const FuzzStmt &S : K.Stmts)
    for (const std::vector<LinearExpr> *Side : {&S.Write, &S.Read})
      for (const LinearExpr &E : *Side)
        for (const auto &[Name, Coeff] : E.symbolTerms()) {
          (void)Coeff;
          auto It = K.SymbolValues.find(Name);
          if (It == K.SymbolValues.end())
            return std::nullopt;
          Used.insert(*It);
        }
  K.SymbolValues = std::move(Used);
  return K;
}
