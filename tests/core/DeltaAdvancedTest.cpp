//===- tests/core/DeltaAdvancedTest.cpp --------------------------------------===//
//
// Advanced Delta test scenarios: larger coupled groups, longer
// propagation chains, mixed constraint kinds, and a coupled-only
// randomized exactness sweep against the oracle.
//
//===----------------------------------------------------------------------===//

#include "core/DeltaTest.h"

#include "../TestHelpers.h"
#include "core/Oracle.h"
#include "driver/WorkloadGenerator.h"

#include <gtest/gtest.h>

using namespace pdt;
using namespace pdt::test;

namespace {

LinearExpr idx(const char *N, int64_t C = 1) {
  return LinearExpr::index(N, C);
}

} // namespace

TEST(DeltaAdvanced, ThreeSubscriptGroupAllConsistent) {
  // A(i+1, i+2, i+3) vs A(i, i+1, i+2): distance 1 in each dimension.
  LoopNestContext Ctx = singleLoop("i", 1, 20);
  std::vector<SubscriptPair> Group = {
      SubscriptPair(idx("i") + LinearExpr(1), idx("i"), 0),
      SubscriptPair(idx("i") + LinearExpr(2), idx("i") + LinearExpr(1), 1),
      SubscriptPair(idx("i") + LinearExpr(3), idx("i") + LinearExpr(2), 2)};
  DeltaResult R = runDeltaTest(Group, Ctx);
  EXPECT_EQ(R.TheVerdict, Verdict::Dependent);
  EXPECT_TRUE(R.Exact);
  ASSERT_EQ(R.Vectors.size(), 1u);
  EXPECT_EQ(R.Vectors[0].Distances[0], std::optional<int64_t>(1));
}

TEST(DeltaAdvanced, ThirdSubscriptContradicts) {
  // Distances 1, 1, then 2: empty intersection on the last member.
  LoopNestContext Ctx = singleLoop("i", 1, 20);
  std::vector<SubscriptPair> Group = {
      SubscriptPair(idx("i") + LinearExpr(1), idx("i"), 0),
      SubscriptPair(idx("i") + LinearExpr(2), idx("i") + LinearExpr(1), 1),
      SubscriptPair(idx("i") + LinearExpr(2), idx("i"), 2)};
  DeltaResult R = runDeltaTest(Group, Ctx);
  EXPECT_EQ(R.TheVerdict, Verdict::Independent);
  EXPECT_EQ(R.DecidedBy, TestKind::Delta);
}

TEST(DeltaAdvanced, TwoStagePropagationChain) {
  // dim1 pins d_i = 1; substituting into dim2 (i,j coupled) pins
  // d_j = 2; substituting into dim3 (j,k coupled) pins d_k = -2.
  LoopNestContext Ctx = LoopNestContext(
      {[] {
         LoopBounds B;
         B.Index = "i";
         B.Lower = LinearExpr(1);
         B.Upper = LinearExpr(30);
         return B;
       }(),
       [] {
         LoopBounds B;
         B.Index = "j";
         B.Lower = LinearExpr(1);
         B.Upper = LinearExpr(30);
         return B;
       }(),
       [] {
         LoopBounds B;
         B.Index = "k";
         B.Lower = LinearExpr(1);
         B.Upper = LinearExpr(30);
         return B;
       }()},
      SymbolRangeMap());
  std::vector<SubscriptPair> Group = {
      SubscriptPair(idx("i") + LinearExpr(1), idx("i"), 0),
      // i + j + 3 = i' + j'  =>  with i' = i+1: j' = j + 2.
      SubscriptPair(idx("i") + idx("j") + LinearExpr(3),
                    idx("i") + idx("j"), 1),
      // j + k = j' + k'  =>  with j' = j+2: k' = k - 2.
      SubscriptPair(idx("j") + idx("k"), idx("j") + idx("k"), 2)};
  DeltaResult R = runDeltaTest(Group, Ctx);
  EXPECT_EQ(R.TheVerdict, Verdict::Dependent);
  EXPECT_TRUE(R.Exact);
  ASSERT_EQ(R.Vectors.size(), 1u);
  EXPECT_EQ(R.Vectors[0].Distances[0], std::optional<int64_t>(1));
  EXPECT_EQ(R.Vectors[0].Distances[1], std::optional<int64_t>(2));
  EXPECT_EQ(R.Vectors[0].Distances[2], std::optional<int64_t>(-2));
  EXPECT_GE(R.Passes, 3u);
}

TEST(DeltaAdvanced, PropagationChainHitsRangeLimit) {
  // Same chain, but the loop only spans 2 iterations: the d_j = 2
  // distance exceeds U - L = 1 during the retest.
  LoopNestContext Ctx = doubleLoop("i", 1, 30, "j", 1, 2);
  std::vector<SubscriptPair> Group = {
      SubscriptPair(idx("i") + LinearExpr(1), idx("i"), 0),
      SubscriptPair(idx("i") + idx("j") + LinearExpr(3),
                    idx("i") + idx("j"), 1)};
  DeltaResult R = runDeltaTest(Group, Ctx);
  EXPECT_EQ(R.TheVerdict, Verdict::Independent);
}

TEST(DeltaAdvanced, WeakZeroPointThenLineConsistent) {
  // dim1 pins the source at i = 4 (weak-zero); dim2's crossing line
  // i + i' = 9 then pins the sink at 5: point (4, 5), in range.
  LoopNestContext Ctx = singleLoop("i", 1, 10);
  std::vector<SubscriptPair> Group = {
      SubscriptPair(idx("i"), LinearExpr(4), 0),
      SubscriptPair(idx("i"), idx("i", -1) + LinearExpr(9), 1)};
  DeltaResult R = runDeltaTest(Group, Ctx);
  EXPECT_EQ(R.TheVerdict, Verdict::Dependent);
  ASSERT_TRUE(R.Constraints.count("i"));
  EXPECT_EQ(R.Constraints.at("i"), Constraint::point(4, 5));
  ASSERT_EQ(R.Vectors.size(), 1u);
  EXPECT_EQ(R.Vectors[0].Distances[0], std::optional<int64_t>(1));
}

TEST(DeltaAdvanced, WeakZeroBothSidesContradict) {
  // dim1 pins source i = 3 (line i = 3); dim2 pins sink i' = 3
  // (line i' = 3) => point (3, 3); dim3 requires d = 1: contradiction.
  LoopNestContext Ctx = singleLoop("i", 1, 10);
  std::vector<SubscriptPair> Group = {
      SubscriptPair(idx("i"), LinearExpr(3), 0),
      SubscriptPair(LinearExpr(3), idx("i"), 1),
      SubscriptPair(idx("i") + LinearExpr(1), idx("i"), 2)};
  DeltaResult R = runDeltaTest(Group, Ctx);
  EXPECT_EQ(R.TheVerdict, Verdict::Independent);
}

TEST(DeltaAdvanced, ResidualVectorsIntersect) {
  // One exact member (d_i = 1) plus one residual MIV member whose
  // Banerjee vectors must be intersected with the distance filter.
  LoopNestContext Ctx = doubleLoop("i", 1, 10, "j", 1, 10);
  std::vector<SubscriptPair> Group = {
      SubscriptPair(idx("i") + LinearExpr(1), idx("i"), 0),
      SubscriptPair(idx("i", 2) + idx("j"), idx("i") + idx("j", 2), 1)};
  DeltaResult R = runDeltaTest(Group, Ctx);
  EXPECT_NE(R.TheVerdict, Verdict::Independent);
  for (const DependenceVector &V : R.Vectors) {
    EXPECT_EQ(V.Distances[0], std::optional<int64_t>(1));
    EXPECT_EQ(V.Directions[0], DirLT);
  }
}

TEST(DeltaAdvanced, RandomCoupledExactness) {
  // Coupled-only populations: the Delta verdicts must match the
  // oracle whenever the result claims exactness, and never contradict
  // it otherwise.
  std::mt19937_64 Rng(424242);
  WorkloadConfig Config;
  Config.Depth = 1;
  Config.NumDims = 3;
  Config.IndexUseProb = 0.95;
  Config.MaxBound = 7;
  unsigned Groups = 0;
  for (unsigned N = 0; N != 600; ++N) {
    RandomCase Case = generateRandomCase(Rng, Config);
    // Keep only genuinely coupled groups.
    bool AllUseIndex = true;
    for (const SubscriptPair &P : Case.Subscripts)
      AllUseIndex &= !P.indices().empty();
    if (!AllUseIndex)
      continue;
    ++Groups;
    std::optional<OracleResult> Truth =
        enumerateDependences(Case.Subscripts, Case.Ctx);
    ASSERT_TRUE(Truth.has_value());
    DeltaResult R = runDeltaTest(Case.Subscripts, Case.Ctx);
    if (R.TheVerdict == Verdict::Independent) {
      EXPECT_FALSE(Truth->Dependent);
    } else if (R.TheVerdict == Verdict::Dependent && R.Exact) {
      EXPECT_TRUE(Truth->Dependent);
    }
    if (R.TheVerdict != Verdict::Independent) {
      for (const std::vector<int> &Tuple : Truth->DirectionTuples)
        EXPECT_TRUE(vectorsAdmitTuple(R.Vectors, Tuple));
    }
  }
  EXPECT_GT(Groups, 200u);
}
