file(REMOVE_RECURSE
  "CMakeFiles/parallelize_corpus.dir/parallelize_corpus.cpp.o"
  "CMakeFiles/parallelize_corpus.dir/parallelize_corpus.cpp.o.d"
  "parallelize_corpus"
  "parallelize_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallelize_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
