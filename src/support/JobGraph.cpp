//===- support/JobGraph.cpp - Dependency-aware job scheduling -------------===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/JobGraph.h"

#include "support/Failure.h"
#include "support/RequestContext.h"
#include "support/ThreadPool.h"
#include "support/Watchdog.h"

#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>

using namespace pdt;

JobGraph::JobId JobGraph::add(std::function<void()> Fn,
                              const std::vector<JobId> &Deps) {
  pdt_check(!Ran, "JobGraph is single-shot; jobs added after run()");
  JobId Id = Jobs.size();
  // Continuation capture: the job adopts the request identity of the
  // thread that *added* it, so spans and journal lines produced on a
  // pool worker attribute to the originating serving request instead
  // of whichever request that worker last ran.
  uint32_t Req = RequestContext::current();
  Jobs.push_back({[Inner = std::move(Fn), Req] {
                    RequestContext::Scope Ctx(Req);
                    Inner();
                  },
                  {},
                  0});
  for (JobId Dep : Deps) {
    pdt_check(Dep < Id, "job dependency on a not-yet-added job");
    Jobs[Dep].Succs.push_back(Id);
    ++Jobs[Id].PendingDeps;
  }
  return Id;
}

void JobGraph::run(ThreadPool &Pool) {
  pdt_check(!Ran, "JobGraph is single-shot; run() called twice");
  Ran = true;
  if (Jobs.empty())
    return;

  // Shared scheduler state. parallelFor runs exactly Jobs.size() work
  // items; each item executes exactly one job, blocking until one is
  // ready. Progress is guaranteed: whenever jobs remain incomplete,
  // either the ready queue is non-empty or some job is running whose
  // completion will refill it (the pending jobs form a DAG whose
  // sources have all predecessors completed).
  std::mutex M;
  std::condition_variable ReadyCV;
  std::deque<JobId> Ready;
  std::exception_ptr FirstError;
  for (JobId Id = 0; Id != Jobs.size(); ++Id)
    if (Jobs[Id].PendingDeps == 0)
      Ready.push_back(Id);

  // Watchdog probe: one beat per completed job. A starved pool (all
  // workers parked on ReadyCV with nothing refilling the queue) stops
  // beating and the monitor flags the scheduler itself, not just the
  // stage running on it.
  Heartbeat RunBeat("JobGraph::run");

  Pool.parallelFor(Jobs.size(), [&](size_t, unsigned) {
    JobId Id;
    {
      std::unique_lock<std::mutex> Lock(M);
      ReadyCV.wait(Lock, [&] { return !Ready.empty(); });
      Id = Ready.front();
      Ready.pop_front();
    }
    // Containment: a throwing job must not poison its siblings or
    // starve its dependents; the first failure is rethrown below.
    try {
      Jobs[Id].Fn();
    } catch (...) {
      std::lock_guard<std::mutex> Lock(M);
      if (!FirstError)
        FirstError = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> Lock(M);
      for (JobId Succ : Jobs[Id].Succs)
        if (--Jobs[Succ].PendingDeps == 0)
          Ready.push_back(Succ);
      ReadyCV.notify_all();
    }
    RunBeat.beat();
  });

  if (FirstError)
    std::rethrow_exception(FirstError);
}
