//===- support/Env.h - Hardened environment-variable parsing ----*- C++ -*-===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Strict parsing for the PDT_* environment knobs (PDT_THREADS,
/// PDT_TRACE, PDT_METRICS, ...). A malformed or out-of-range value is
/// never silently coerced into a default: the parser emits one warning
/// per variable on stderr, classified with the Failure taxonomy's
/// MalformedInput kind, and then falls back to the documented default.
/// Unset variables are silent — only garbage warns.
///
//===----------------------------------------------------------------------===//

#ifndef PDT_SUPPORT_ENV_H
#define PDT_SUPPORT_ENV_H

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <string>

namespace pdt {

/// Reads \p Name as a decimal integer in [\p Min, \p Max]. Returns
/// nullopt when the variable is unset; also nullopt — after warning
/// once on stderr (malformed-input) — when the value is not a number,
/// has trailing characters, or lies outside the range.
std::optional<int64_t> envInt(const char *Name, int64_t Min, int64_t Max);

/// Reads \p Name as a file path. Returns nullopt when unset; an empty
/// or whitespace-only value is rejected with a malformed-input warning
/// (an accidental `PDT_TRACE=` must not truncate a file named "").
std::optional<std::string> envPath(const char *Name);

/// Reads \p Name as one of a closed set of keywords (exact,
/// case-sensitive match). Returns the matched choice when the value is
/// one of \p Choices, nullopt when the variable is unset, and nullopt
/// — after a malformed-input warning listing the allowed values — for
/// anything else.
std::optional<std::string> envChoice(const char *Name,
                                     std::initializer_list<const char *> Choices);

} // namespace pdt

#endif // PDT_SUPPORT_ENV_H
