//===- core/DeltaTest.h - The Delta test for coupled groups -----*- C++ -*-===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Delta test (paper section 5): an exact-yet-efficient multiple
/// subscript test for coupled groups. It applies the exact
/// single-subscript tests to derive *constraints* on each index,
/// intersects them in the constraint lattice (emptiness proves
/// independence), propagates distance and point constraints into the
/// remaining MIV/RDIV subscripts of the group (which may reduce them
/// to SIV/ZIV and seed further passes), handles coupled RDIV pairs
/// specially (section 5.3.2), and falls back on the GCD/Banerjee MIV
/// tests only for what remains. Each subscript is tested at most a
/// constant number of times, so the whole test is linear in the number
/// of subscripts.
///
//===----------------------------------------------------------------------===//

#ifndef PDT_CORE_DELTATEST_H
#define PDT_CORE_DELTATEST_H

#include "analysis/LoopNest.h"
#include "core/Constraint.h"
#include "core/DependenceTypes.h"
#include "core/Subscript.h"
#include "core/TestStats.h"

#include <map>
#include <string>
#include <vector>

namespace pdt {

/// Result of running the Delta test on one coupled group.
struct DeltaResult {
  Verdict TheVerdict = Verdict::Maybe;
  /// Test that proved independence (when TheVerdict is Independent):
  /// the single-subscript test that fired, or TestKind::Delta when the
  /// proof came from constraint intersection or propagation, or a MIV
  /// test kind for residual subscripts.
  TestKind DecidedBy = TestKind::Delta;
  /// True when every subscript of the group was resolved exactly (the
  /// dependence and its vectors are certain, not conservative).
  bool Exact = false;
  /// Surviving dependence vectors over the full nest depth; levels of
  /// indices outside the group stay '*'. Meaningful unless Independent.
  std::vector<DependenceVector> Vectors;
  /// Final per-index constraints (exposed for tests and the trace
  /// bench).
  std::map<std::string, Constraint> Constraints;
  /// Number of passes the iterative algorithm made.
  unsigned Passes = 0;
  /// True when MIV subscripts survived propagation and were handed to
  /// the GCD/Banerjee fallback (a source of imprecision, section 5.4).
  bool ResidualMIV = false;
};

/// Runs the Delta test on the coupled group \p Group (subscript pairs
/// of one reference pair that share indices). \p Trace, when non-null,
/// receives a human-readable step-by-step log (used by the Figure 3
/// reproduction).
DeltaResult runDeltaTest(const std::vector<SubscriptPair> &Group,
                         const LoopNestContext &Ctx,
                         TestStats *Stats = nullptr,
                         std::string *Trace = nullptr);

} // namespace pdt

#endif // PDT_CORE_DELTATEST_H
