//===- support/Rational.h - Exact rational arithmetic -----------*- C++ -*-===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exact rational numbers over int64. The weak-crossing SIV test needs
/// to represent half-integral crossing iterations exactly, Banerjee's
/// inequalities need exact bound comparison, and constraint-line
/// intersection in the Delta test needs exact 2x2 solving; floating
/// point would silently produce wrong dependence verdicts.
///
//===----------------------------------------------------------------------===//

#ifndef PDT_SUPPORT_RATIONAL_H
#define PDT_SUPPORT_RATIONAL_H

#include <cstdint>
#include <optional>
#include <string>

namespace pdt {

/// An exact rational number Num/Den with Den > 0, always stored in
/// lowest terms. Arithmetic raises an AnalysisError of kind Overflow
/// when a result leaves the int64 range; the containment layer above
/// the tests degrades the affected query to the conservative "assume
/// dependence" answer instead of crashing.
class Rational {
public:
  /// Zero.
  Rational() : Num(0), Den(1) {}

  /// The integer \p Value.
  Rational(int64_t Value) : Num(Value), Den(1) {}

  /// The fraction \p Num / \p Den; \p Den must be non-zero.
  Rational(int64_t Num, int64_t Den);

  int64_t numerator() const { return Num; }
  int64_t denominator() const { return Den; }

  bool isInteger() const { return Den == 1; }
  bool isZero() const { return Num == 0; }
  bool isNegative() const { return Num < 0; }
  bool isPositive() const { return Num > 0; }

  /// True iff the value is of the form k + 1/2 for integral k. The
  /// weak-crossing SIV test admits crossing points at half iterations.
  bool isHalfIntegral() const { return Den == 2; }

  /// The integral value when isInteger(), otherwise nullopt.
  std::optional<int64_t> asInteger() const;

  /// Largest integer <= value.
  int64_t floor() const;

  /// Smallest integer >= value.
  int64_t ceil() const;

  Rational operator-() const;
  Rational operator+(const Rational &RHS) const;
  Rational operator-(const Rational &RHS) const;
  Rational operator*(const Rational &RHS) const;

  /// Division; RHS must be non-zero.
  Rational operator/(const Rational &RHS) const;

  bool operator==(const Rational &RHS) const {
    return Num == RHS.Num && Den == RHS.Den;
  }
  bool operator!=(const Rational &RHS) const { return !(*this == RHS); }
  bool operator<(const Rational &RHS) const;
  bool operator<=(const Rational &RHS) const;
  bool operator>(const Rational &RHS) const { return RHS < *this; }
  bool operator>=(const Rational &RHS) const { return RHS <= *this; }

  /// Renders as "n" or "n/d".
  std::string str() const;

private:
  int64_t Num;
  int64_t Den;

  void normalize();
};

/// min of two rationals.
inline const Rational &min(const Rational &A, const Rational &B) {
  return B < A ? B : A;
}

/// max of two rationals.
inline const Rational &max(const Rational &A, const Rational &B) {
  return A < B ? B : A;
}

} // namespace pdt

#endif // PDT_SUPPORT_RATIONAL_H
