//===- support/Store.cpp - Crash-safe append-only segment store -----------===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Store.h"

#include "support/EventLog.h"
#include "support/FaultInjector.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <vector>

#include <dirent.h>
#include <errno.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace pdt;

namespace {

constexpr char SegmentMagic[] = "PDTSEG1\n"; // 8 bytes on disk.
constexpr size_t MagicLen = 8;

// Framing sanity cap: no key or value in this store is remotely this
// large, so a bigger length field means mangled framing, not data.
constexpr uint32_t MaxFieldLen = 1u << 28;

uint64_t fnv1a(const std::string &Key, const std::string &Value) {
  uint64_t H = 1469598103934665603ull;
  for (unsigned char C : Key) {
    H ^= C;
    H *= 1099511628211ull;
  }
  for (unsigned char C : Value) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}

void putU32(std::string &Out, uint32_t V) {
  Out.append(reinterpret_cast<const char *>(&V), sizeof(V));
}

void putU64(std::string &Out, uint64_t V) {
  Out.append(reinterpret_cast<const char *>(&V), sizeof(V));
}

uint32_t getU32(const std::string &Buf, size_t Pos) {
  uint32_t V;
  std::memcpy(&V, Buf.data() + Pos, sizeof(V));
  return V;
}

uint64_t getU64(const std::string &Buf, size_t Pos) {
  uint64_t V;
  std::memcpy(&V, Buf.data() + Pos, sizeof(V));
  return V;
}

// Serialized header of a fresh segment.
std::string segmentHeader(const std::string &Generation) {
  std::string Out(SegmentMagic, MagicLen);
  putU32(Out, static_cast<uint32_t>(Generation.size()));
  Out += Generation;
  return Out;
}

// One serialized record.
std::string recordBytes(const std::string &Key, const std::string &Value) {
  std::string Out;
  putU32(Out, static_cast<uint32_t>(Key.size()));
  putU32(Out, static_cast<uint32_t>(Value.size()));
  putU64(Out, fnv1a(Key, Value));
  Out += Key;
  Out += Value;
  return Out;
}

// EINTR/short-write safe full write. Returns false on any error.
bool writeAll(int Fd, const char *Data, size_t Len) {
  while (Len > 0) {
    ssize_t N = ::write(Fd, Data, Len);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Data += N;
    Len -= static_cast<size_t>(N);
  }
  return true;
}

std::string segmentName(uint64_t Idx) {
  return "seg-" + std::to_string(Idx) + ".pdt";
}

// Parses "seg-<n>.pdt"; nullopt for anything else.
std::optional<uint64_t> segmentIndex(const std::string &Name) {
  if (Name.size() <= 8 || Name.compare(0, 4, "seg-") != 0 ||
      Name.compare(Name.size() - 4, 4, ".pdt") != 0)
    return std::nullopt;
  const std::string Digits = Name.substr(4, Name.size() - 8);
  if (Digits.empty())
    return std::nullopt;
  char *End = nullptr;
  unsigned long long Idx = std::strtoull(Digits.c_str(), &End, 10);
  if (End == Digits.c_str() || *End != '\0')
    return std::nullopt;
  return Idx;
}

} // namespace

SegmentStore::SegmentStore(std::string Dir, std::string Gen)
    : Directory(std::move(Dir)), Generation(std::move(Gen)) {}

SegmentStore::~SegmentStore() {
  flush();
  if (Fd >= 0)
    ::close(Fd);
}

std::unique_ptr<SegmentStore> SegmentStore::open(const std::string &Dir,
                                                 const std::string &Gen) {
  std::unique_ptr<SegmentStore> S(new SegmentStore(Dir, Gen));
  if (FaultInjector::ioCheckpoint(IoFaultKind::Open)) {
    S->markBroken();
    return S;
  }
  if (::mkdir(Dir.c_str(), 0755) != 0 && errno != EEXIST) {
    S->markBroken();
    return S;
  }

  // Collect existing segments in index order so the replay order (and
  // hence first-write-wins resolution) is deterministic.
  std::vector<std::pair<uint64_t, std::string>> Segments;
  if (DIR *D = ::opendir(Dir.c_str())) {
    while (struct dirent *E = ::readdir(D))
      if (std::optional<uint64_t> Idx = segmentIndex(E->d_name))
        Segments.emplace_back(*Idx, Dir + "/" + E->d_name);
    ::closedir(D);
  } else {
    S->markBroken();
    return S;
  }
  std::sort(Segments.begin(), Segments.end());
  for (const auto &[Idx, Path] : Segments) {
    S->NextSeg = std::max(S->NextSeg, Idx + 1);
    std::map<std::string, std::string> Loaded;
    bool Clean = S->loadSegment(Path, Loaded);
    S->Records.insert(Loaded.begin(), Loaded.end());
    if (!Clean) {
      // Anything imperfect is set aside whole; its valid records are
      // rewritten as a pristine segment so the next open is clean.
      S->quarantine(Path);
      if (!Loaded.empty() && !S->Broken)
        S->writeSegment(Loaded);
    }
  }
  return S;
}

bool SegmentStore::loadSegment(const std::string &Path,
                               std::map<std::string, std::string> &Loaded) {
  if (FaultInjector::ioCheckpoint(IoFaultKind::Open)) {
    Stats.StaleSegments++; // Unreadable counts as not-ours.
    return false;
  }
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    Stats.StaleSegments++;
    return false;
  }
  std::string Buf((std::istreambuf_iterator<char>(In)),
                  std::istreambuf_iterator<char>());

  // Header: magic + generation. Any mismatch means the segment was
  // written by another analyzer version / option set (or is not a
  // segment at all) — quarantine unread.
  if (Buf.size() < MagicLen + sizeof(uint32_t) ||
      Buf.compare(0, MagicLen, SegmentMagic, MagicLen) != 0) {
    Stats.StaleSegments++;
    return false;
  }
  uint32_t GenLen = getU32(Buf, MagicLen);
  size_t Pos = MagicLen + sizeof(uint32_t);
  if (GenLen > MaxFieldLen || Buf.size() - Pos < GenLen ||
      Buf.compare(Pos, GenLen, Generation) != 0) {
    Stats.StaleSegments++;
    return false;
  }
  Pos += GenLen;

  bool Clean = true;
  while (Pos < Buf.size()) {
    constexpr size_t HeaderLen = sizeof(uint32_t) * 2 + sizeof(uint64_t);
    if (Buf.size() - Pos < HeaderLen) {
      // A crash mid-append leaves a partial record header.
      Stats.TornTails++;
      Clean = false;
      break;
    }
    uint32_t KeyLen = getU32(Buf, Pos);
    uint32_t ValLen = getU32(Buf, Pos + sizeof(uint32_t));
    uint64_t Sum = getU64(Buf, Pos + 2 * sizeof(uint32_t));
    Pos += HeaderLen;
    if (KeyLen > MaxFieldLen || ValLen > MaxFieldLen) {
      // Mangled framing: the rest of the segment cannot be walked.
      Stats.CorruptRecords++;
      Clean = false;
      break;
    }
    if (Buf.size() - Pos < static_cast<size_t>(KeyLen) + ValLen) {
      Stats.TornTails++;
      Clean = false;
      break;
    }
    std::string Key = Buf.substr(Pos, KeyLen);
    std::string Value = Buf.substr(Pos + KeyLen, ValLen);
    Pos += static_cast<size_t>(KeyLen) + ValLen;
    if (fnv1a(Key, Value) != Sum) {
      // Framing is intact, so only this record is lost.
      Stats.CorruptRecords++;
      Clean = false;
      continue;
    }
    Stats.RecordsLoaded++;
    Loaded.emplace(std::move(Key), std::move(Value));
  }
  return Clean;
}

void SegmentStore::quarantine(const std::string &Path) {
  const std::string QDir = Directory + "/quarantine";
  ::mkdir(QDir.c_str(), 0755); // EEXIST is fine; rename will tell.
  std::string Base = Path;
  if (std::string::size_type Slash = Base.rfind('/');
      Slash != std::string::npos)
    Base = Base.substr(Slash + 1);
  if (::rename(Path.c_str(), (QDir + "/" + Base).c_str()) == 0) {
    Stats.Quarantined++;
    if (EventLog::enabled())
      EventLog::event(EventSeverity::Warn, "store", "quarantine", Base);
    return;
  }
  // Could not set it aside: remove it so the damage is not replayed
  // (its valid records are being rebuilt by the caller anyway).
  if (::unlink(Path.c_str()) != 0)
    markBroken();
}

bool SegmentStore::writeSegment(
    const std::map<std::string, std::string> &Recs) {
  const std::string Final = Directory + "/" + segmentName(NextSeg);
  const std::string Tmp = Final + ".tmp";
  NextSeg++;

  std::string Buf = segmentHeader(Generation);
  for (const auto &[Key, Value] : Recs)
    Buf += recordBytes(Key, Value);

  if (FaultInjector::ioCheckpoint(IoFaultKind::Open)) {
    markBroken();
    return false;
  }
  int TFd = ::open(Tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (TFd < 0) {
    markBroken();
    return false;
  }
  bool Ok = !FaultInjector::ioCheckpoint(IoFaultKind::Write) &&
            writeAll(TFd, Buf.data(), Buf.size());
  if (Ok && (FaultInjector::ioCheckpoint(IoFaultKind::Fsync) ||
             ::fsync(TFd) != 0))
    Ok = false;
  ::close(TFd);
  if (!Ok || ::rename(Tmp.c_str(), Final.c_str()) != 0) {
    ::unlink(Tmp.c_str());
    Stats.WriteFailures++;
    markBroken();
    return false;
  }
  Stats.Rebuilds++;
  if (EventLog::enabled())
    EventLog::event(EventSeverity::Info, "store", "rebuild", Final,
                    {{"records", Recs.size()}});
  return true;
}

int SegmentStore::appendFd() {
  if (Fd >= 0 || Broken)
    return Fd;
  const std::string Path = Directory + "/" + segmentName(NextSeg);
  if (FaultInjector::ioCheckpoint(IoFaultKind::Open)) {
    markBroken();
    return -1;
  }
  int NewFd = ::open(Path.c_str(), O_CREAT | O_EXCL | O_WRONLY | O_APPEND,
                     0644);
  if (NewFd < 0) {
    markBroken();
    return -1;
  }
  NextSeg++;
  const std::string Header = segmentHeader(Generation);
  if (FaultInjector::ioCheckpoint(IoFaultKind::Write) ||
      !writeAll(NewFd, Header.data(), Header.size())) {
    ::close(NewFd);
    Stats.WriteFailures++;
    markBroken();
    return -1;
  }
  Fd = NewFd;
  return Fd;
}

std::optional<std::string> SegmentStore::lookup(const std::string &Key) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Records.find(Key);
  if (It == Records.end())
    return std::nullopt;
  return It->second;
}

void SegmentStore::insert(const std::string &Key, const std::string &Value) {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (!Records.emplace(Key, Value).second)
    return; // First write wins.
  if (Broken)
    return;
  int AFd = appendFd();
  if (AFd < 0)
    return;
  const std::string Rec = recordBytes(Key, Value);
  if (FaultInjector::ioCheckpoint(IoFaultKind::TornTail)) {
    // Simulated crash image: half the record reaches the disk and the
    // process "dies" (the store goes broken). Recovery on the next
    // open must truncate exactly this tail.
    writeAll(AFd, Rec.data(), Rec.size() / 2);
    Stats.WriteFailures++;
    markBroken();
    return;
  }
  if (FaultInjector::ioCheckpoint(IoFaultKind::Write) ||
      !writeAll(AFd, Rec.data(), Rec.size())) {
    Stats.WriteFailures++;
    markBroken();
  }
}

void SegmentStore::flush() {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Fd < 0 || Broken)
    return;
  if (FaultInjector::ioCheckpoint(IoFaultKind::Fsync) || ::fsync(Fd) != 0) {
    Stats.WriteFailures++;
    markBroken();
  }
}

bool SegmentStore::broken() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Broken;
}

uint64_t SegmentStore::size() {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Records.size();
}

StoreRecoveryStats SegmentStore::recoveryStats() {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Stats;
}

void SegmentStore::markBroken() {
  // First transition only: the store keeps answering from memory after
  // it breaks, so one journal line per episode is the signal, not one
  // per failed write.
  if (!Broken && EventLog::enabled())
    EventLog::event(EventSeverity::Error, "store", "broken",
                    "store went broken; degrading to in-memory answers");
  Broken = true;
}
