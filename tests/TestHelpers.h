//===- tests/TestHelpers.h - Shared test utilities --------------*- C++ -*-===//
//
// Helpers shared across the test suite.
//
//===----------------------------------------------------------------------===//

#ifndef PDT_TESTS_TESTHELPERS_H
#define PDT_TESTS_TESTHELPERS_H

#include "analysis/LoopNest.h"
#include "ir/AST.h"
#include "parser/Parser.h"
#include "support/Casting.h"

#include <gtest/gtest.h>

namespace pdt {
namespace test {

/// Parses or fails the test.
inline Program parseOrDie(const std::string &Source) {
  ParseResult R = parseProgram(Source);
  EXPECT_TRUE(R.succeeded()) << (R.Diagnostics.empty()
                                     ? std::string("parse failed")
                                     : R.Diagnostics[0].str());
  if (!R.succeeded())
    return Program();
  return std::move(*R.Prog);
}

/// The stack of loops along the first (leftmost, depth-first) path of
/// the program.
inline std::vector<const DoLoop *> firstLoopPath(const Program &P) {
  std::vector<const DoLoop *> Stack;
  const Stmt *S = P.TopLevel.empty() ? nullptr : P.TopLevel.front();
  while (S) {
    const auto *L = dyn_cast<DoLoop>(S);
    if (!L)
      break;
    Stack.push_back(L);
    S = nullptr;
    for (const Stmt *Child : L->getBody())
      if (isa<DoLoop>(Child)) {
        S = Child;
        break;
      }
  }
  return Stack;
}

/// Builds a simple one-loop context: `Index` in [Lower, Upper].
inline LoopNestContext singleLoop(const std::string &Index, int64_t Lower,
                                  int64_t Upper) {
  LoopBounds B;
  B.Index = Index;
  B.Lower = LinearExpr(Lower);
  B.Upper = LinearExpr(Upper);
  return LoopNestContext({B}, SymbolRangeMap());
}

/// Builds a two-loop rectangular context.
inline LoopNestContext doubleLoop(const std::string &I, int64_t L1,
                                  int64_t U1, const std::string &J,
                                  int64_t L2, int64_t U2) {
  LoopBounds A, B;
  A.Index = I;
  A.Lower = LinearExpr(L1);
  A.Upper = LinearExpr(U1);
  B.Index = J;
  B.Lower = LinearExpr(L2);
  B.Upper = LinearExpr(U2);
  return LoopNestContext({A, B}, SymbolRangeMap());
}

/// Builds a one-loop context with a symbolic upper bound in
/// [1, +inf): `Index` in [1, n].
inline LoopNestContext symbolicLoop(const std::string &Index,
                                    const std::string &Symbol = "n") {
  LoopBounds B;
  B.Index = Index;
  B.Lower = LinearExpr(1);
  B.Upper = LinearExpr::symbol(Symbol);
  SymbolRangeMap Symbols;
  Symbols[Symbol] = Interval(1, std::nullopt);
  return LoopNestContext({B}, std::move(Symbols));
}

} // namespace test
} // namespace pdt

#endif // PDT_TESTS_TESTHELPERS_H
