file(REMOVE_RECURSE
  "CMakeFiles/depcheck.dir/depcheck.cpp.o"
  "CMakeFiles/depcheck.dir/depcheck.cpp.o.d"
  "depcheck"
  "depcheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/depcheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
