//===- support/RequestContext.cpp - Thread-propagated request IDs ---------===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/RequestContext.h"

#include <atomic>
#include <mutex>

using namespace pdt;

namespace {

/// One intern slot: the token that owns it plus the ID string. A
/// lookup whose token no longer matches the slot's owner has been
/// recycled and resolves to "".
struct InternSlot {
  uint32_t Token = 0;
  std::string Id;
};

struct InternTable {
  std::mutex M;
  InternSlot Slots[RequestContext::RecentCapacity];
  /// Next token to hand out; tokens are never 0 (None).
  uint32_t Next = 1;
};

InternTable &table() {
  // Immortal, like the trace/metrics collectors: spans may be rendered
  // by exit-time flush hooks after static destruction began.
  static InternTable *T = new InternTable;
  return *T;
}

thread_local uint32_t CurrentToken = RequestContext::None;

std::atomic<uint64_t> Sequence{0};

} // namespace

uint32_t RequestContext::intern(const std::string &Id) {
  InternTable &T = table();
  std::lock_guard<std::mutex> Lock(T.M);
  uint32_t Token = T.Next++;
  if (T.Next == 0) // wrapped: skip the reserved None token
    T.Next = 1;
  InternSlot &Slot = T.Slots[Token % RecentCapacity];
  Slot.Token = Token;
  Slot.Id = Id;
  return Token;
}

std::string RequestContext::idFor(uint32_t Token) {
  if (Token == None)
    return {};
  InternTable &T = table();
  std::lock_guard<std::mutex> Lock(T.M);
  const InternSlot &Slot = T.Slots[Token % RecentCapacity];
  if (Slot.Token != Token)
    return {}; // recycled
  return Slot.Id;
}

uint32_t RequestContext::current() { return CurrentToken; }

uint64_t RequestContext::nextSequence() {
  return Sequence.fetch_add(1, std::memory_order_relaxed) + 1;
}

std::string RequestContext::mint(uint64_t Sequence) {
  return "pdt-" + std::to_string(Sequence);
}

bool RequestContext::validId(const std::string &Id) {
  if (Id.empty() || Id.size() > 64)
    return false;
  for (char C : Id) {
    bool Ok = (C >= 'A' && C <= 'Z') || (C >= 'a' && C <= 'z') ||
              (C >= '0' && C <= '9') || C == '.' || C == '_' || C == '-';
    if (!Ok)
      return false;
  }
  return true;
}

RequestContext::Scope::Scope(uint32_t Token) : Prev(CurrentToken) {
  CurrentToken = Token;
}

RequestContext::Scope::~Scope() { CurrentToken = Prev; }
