//===- support/Failure.h - Analysis failure taxonomy ------------*- C++ -*-===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The structured failure taxonomy of the never-crash analysis
/// pipeline. The paper's algorithm degrades gracefully by design: when
/// a subscript is too hard it assumes dependence instead of guessing.
/// This header extends that philosophy to the engineering layer: any
/// recoverable analysis failure (coefficient overflow, an exhausted
/// resource budget, an internal invariant violation) is raised as an
/// AnalysisError carrying an AnalysisFailure, propagates up the test
/// call chain, and is caught at a containment boundary
/// (testDependence, the per-pair graph-build loop, the analyzer
/// passes) which collapses it into a conservative "assume dependence
/// in all directions" result flagged Degraded. Degradation must only
/// ever widen a result — a failure may turn "independent" into
/// "dependent", never the reverse.
///
/// reportFatalError / pdt_unreachable (ErrorHandling.h) remain for
/// genuinely impossible states (covered switches); everything that bad
/// input or adversarial scale can trigger goes through this header.
///
//===----------------------------------------------------------------------===//

#ifndef PDT_SUPPORT_FAILURE_H
#define PDT_SUPPORT_FAILURE_H

#include <exception>
#include <string>
#include <utility>
#include <variant>

namespace pdt {

/// Why an analysis step could not produce an exact answer.
enum class FailureKind {
  /// 64-bit arithmetic overflowed (coefficients, constants, rationals).
  Overflow,
  /// A resource budget was exhausted (deadline, pair count, FM steps
  /// or constraint rows).
  BudgetExhausted,
  /// A symbolic quantity could not be resolved to anything testable.
  SymbolicUnknown,
  /// An internal invariant did not hold; the result of this step
  /// cannot be trusted and is discarded in favor of the conservative
  /// answer.
  InternalInvariant,
  /// The input itself was malformed (bad parse, inconsistent shapes).
  MalformedInput,
};

/// Number of FailureKind enumerators (for counter arrays).
constexpr unsigned NumFailureKinds = 5;

/// Display name ("overflow", "budget-exhausted", ...).
const char *failureKindName(FailureKind K);

/// One structured failure: what class of problem, and a human-readable
/// description of the site that raised it.
struct AnalysisFailure {
  FailureKind Kind = FailureKind::InternalInvariant;
  std::string Message;

  /// Renders as "overflow: linear expression coefficient overflow".
  std::string str() const;
};

/// The exception type recoverable analysis failures travel on. Thrown
/// by raiseFailure, caught only at the documented containment
/// boundaries; it never escapes the public analysis entry points.
class AnalysisError : public std::exception {
public:
  explicit AnalysisError(AnalysisFailure F)
      : TheFailure(std::move(F)), What(TheFailure.str()) {}

  const AnalysisFailure &failure() const { return TheFailure; }
  FailureKind kind() const { return TheFailure.Kind; }
  const char *what() const noexcept override { return What.c_str(); }

private:
  AnalysisFailure TheFailure;
  std::string What;
};

/// Raises an AnalysisError of kind \p K. The message should name the
/// operation that failed, not the caller.
[[noreturn]] void raiseFailure(FailureKind K, const char *Message);

/// Folds the in-flight exception \p P into an AnalysisFailure:
/// AnalysisError keeps its payload, any other std::exception (or
/// unknown exception) becomes an internal-invariant failure carrying
/// what() where available.
AnalysisFailure failureFromException(std::exception_ptr P);

/// An Expected<T>-style result: either a value or an AnalysisFailure.
/// Used where a failure is part of the normal API contract (per-kernel
/// corpus analysis, budget-checked lowering) rather than an
/// exceptional unwind.
template <typename T> class Expected {
public:
  Expected(T Value) : Storage(std::move(Value)) {}
  Expected(AnalysisFailure F) : Storage(std::move(F)) {}

  static Expected failure(FailureKind K, std::string Message) {
    return Expected(AnalysisFailure{K, std::move(Message)});
  }

  bool hasValue() const { return std::holds_alternative<T>(Storage); }
  explicit operator bool() const { return hasValue(); }

  T &operator*() { return std::get<T>(Storage); }
  const T &operator*() const { return std::get<T>(Storage); }
  T *operator->() { return &std::get<T>(Storage); }
  const T *operator->() const { return &std::get<T>(Storage); }

  const AnalysisFailure &error() const {
    return std::get<AnalysisFailure>(Storage);
  }

  /// The value, or \p Default when this holds a failure.
  T valueOr(T Default) const {
    return hasValue() ? std::get<T>(Storage) : std::move(Default);
  }

private:
  std::variant<T, AnalysisFailure> Storage;
};

/// Checks a recoverable invariant: raises an internal-invariant
/// failure (caught at the containment boundaries) instead of aborting
/// the process the way assert/pdt_unreachable do. Use for conditions
/// that adversarial input could conceivably violate.
#define pdt_check(cond, msg)                                                   \
  do {                                                                         \
    if (!(cond))                                                               \
      ::pdt::raiseFailure(::pdt::FailureKind::InternalInvariant, msg);         \
  } while (false)

} // namespace pdt

#endif // PDT_SUPPORT_FAILURE_H
