//===- serve/Server.h - The depserved socket daemon -------------*- C++ -*-===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The long-lived serving loop of depserved: a loopback (or any-
/// interface) TCP listener, a bounded admission queue, and a fixed
/// pool of connection workers, fronting serve::Service. The design is
/// deliberately thread-per-connection over a bounded queue — on the
/// target box request concurrency is small and the analysis itself is
/// CPU-bound, so the interesting engineering is *admission control*,
/// not epoll scalability:
///
///   * Admission control / backpressure: the accept loop admits a
///     connection only while fewer than QueueCapacity connections are
///     waiting for a worker; beyond that it answers a canned
///     429 + Retry-After immediately and closes. Saturation is
///     journaled (rate-limited) and counted (serve.rejected_429).
///   * Keep-alive: a worker owns one connection at a time and serves
///     requests off it until the client closes, the idle timeout
///     expires, or the server drains. Idle connections therefore
///     occupy workers — that is the documented saturation semantics
///     (docs/SERVING.md §Saturation), not an accident.
///   * Graceful drain: requestDrain() (SIGTERM/SIGINT via
///     installSignalHandlers, which is async-signal-safe through a
///     self-pipe) stops the accept loop, lets every already-admitted
///     connection finish its current request, answers in-flight
///     keep-alive requests with "Connection: close", and joins the
///     workers. waitDrained() blocks until that completes.
///   * Telemetry: every request is timed into the
///     latency.serve_request_ns histogram, counted into the serve.*
///     metrics, and notable incidents (saturation, malformed
///     requests, drain begin/end) are journaled through the PR-8
///     event journal; the sampler therefore picks up serving
///     time-series for free. With PDT_ACCESS_LOG armed, every
///     answered request — including accept-time 429s, malformed-HTTP
///     rejections, and mid-request 408s, which never reach the
///     service — gets exactly one pdt-access-v1 line keyed by its
///     X-PDT-Request-Id (minted here for the paths the router never
///     sees), with the admission-queue wait handed to the router via
///     AccessLog::noteQueueNs.
///
//===----------------------------------------------------------------------===//

#ifndef PDT_SERVE_SERVER_H
#define PDT_SERVE_SERVER_H

#include "serve/Http.h"
#include "serve/Service.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace pdt {
namespace serve {

/// Socket-layer configuration (the service-layer caps live in
/// ServiceLimits).
struct ServerConfig {
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  uint16_t Port = 8177;
  /// Connection worker threads.
  unsigned Threads = 4;
  /// Admitted-but-unclaimed connection cap; beyond it new connections
  /// get 429. 0 = reject whenever no worker is free.
  size_t QueueCapacity = 64;
  /// Keep-alive idle timeout; a connection with no request bytes for
  /// this long is closed (mid-request timeouts answer 408).
  uint64_t IdleTimeoutMs = 5000;
  /// Request byte caps (ParserLimits). Bodies beyond MaxBodyBytes get
  /// 413, header blocks beyond MaxHeaderBytes get 431.
  size_t MaxBodyBytes = 1024 * 1024;
  size_t MaxHeaderBytes = 16 * 1024;
  /// Bind loopback only (the default) or all interfaces.
  bool LoopbackOnly = true;

  /// Applies PDT_SERVE_PORT / PDT_SERVE_THREADS / PDT_SERVE_QUEUE /
  /// PDT_SERVE_IDLE_MS / PDT_SERVE_MAX_BODY on top of the defaults.
  static ServerConfig fromEnvironment();
};

/// Socket-layer counters for reporting (service-level counters live
/// in ServiceCounters).
struct ServerStats {
  uint64_t Accepted = 0;     ///< Connections admitted to the queue.
  uint64_t Rejected429 = 0;  ///< Connections refused with 429.
  uint64_t Requests = 0;     ///< Requests answered (any status).
  uint64_t ParseFailures = 0; ///< Connections ended by a malformed request.
  uint64_t IdleTimeouts = 0; ///< Connections reaped by the idle timeout.
};

class Server {
public:
  Server(ServerConfig Config, Service &Svc);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds, listens, and spawns the accept loop + workers. False with
  /// \p Error set when the socket cannot be bound.
  bool start(std::string *Error = nullptr);

  /// The bound port (the ephemeral one when Config.Port was 0).
  uint16_t port() const { return BoundPort; }

  /// Begins a graceful drain; safe from any thread and (via the
  /// self-pipe) from signal handlers. Idempotent.
  void requestDrain();

  /// Blocks until the drain completes and every thread joined.
  /// Returns immediately if start() was never called.
  void waitDrained();

  /// True once requestDrain() was called.
  bool draining() const { return DrainFlag.load(std::memory_order_relaxed); }

  ServerStats stats() const;

  /// Routes SIGTERM and SIGINT to \p S->requestDrain() through a
  /// self-pipe (async-signal-safe). Pass nullptr to restore the
  /// default disposition. One server at a time.
  static void installSignalHandlers(Server *S);

private:
  /// One admitted connection waiting for a worker: the fd plus when it
  /// was enqueued, so the claiming worker can report the admission-
  /// queue wait on the connection's first access line.
  struct QueuedConn {
    int Fd;
    int64_t EnqueuedNs;
  };

  void acceptLoop();
  void workerLoop();
  void serveConnection(int Fd);

  ServerConfig Config;
  Service &Svc;
  int ListenFd = -1;
  int WakePipe[2] = {-1, -1};
  uint16_t BoundPort = 0;
  std::atomic<bool> DrainFlag{false};
  std::atomic<bool> Started{false};

  std::mutex QueueMutex;
  std::condition_variable QueueCV;
  std::deque<QueuedConn> Queue; ///< Admitted connections.
  bool QueueClosed = false;
  size_t IdleWorkers = 0; ///< Workers waiting on the queue (for admission).

  std::thread Acceptor;
  std::vector<std::thread> Workers;

  std::atomic<uint64_t> SAccepted{0}, SRejected{0}, SRequests{0},
      SParseFailures{0}, SIdleTimeouts{0};
};

} // namespace serve
} // namespace pdt

#endif // PDT_SERVE_SERVER_H
