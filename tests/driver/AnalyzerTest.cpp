//===- tests/driver/AnalyzerTest.cpp ------------------------------------------===//
//
// Unit tests for the end-to-end analyzer pipeline and its options.
//
//===----------------------------------------------------------------------===//

#include "driver/Analyzer.h"

#include <gtest/gtest.h>

using namespace pdt;

TEST(Analyzer, ParseErrorsSurface) {
  AnalysisResult R = analyzeSource("do i = 1\n", "bad");
  EXPECT_FALSE(R.Parsed);
  EXPECT_FALSE(R.Diagnostics.empty());
}

TEST(Analyzer, PipelineNormalizesAndSubstitutes) {
  // Strided loop plus auxiliary induction variable: after the
  // pipeline, the subscripts are affine and testable.
  AnalysisResult R = analyzeSource(R"(
k = 0
do i = 1, 100
  k = k + 2
  c(k) = c(k+1) + 1
end do
)", "t");
  ASSERT_TRUE(R.Parsed);
  // c(2i) vs c(2i+1): parity disproves every pair.
  EXPECT_EQ(R.Stats.NonlinearSubscripts, 0u);
  EXPECT_TRUE(R.Graph.dependences().empty());
}

TEST(Analyzer, WithoutIVSubstitutionConservative) {
  AnalyzerOptions Options;
  Options.SubstituteIVs = false;
  AnalysisResult R = analyzeSource(R"(
k = 0
do i = 1, 100
  k = k + 2
  c(k) = c(k+1) + 1
end do
)", "t", Options);
  ASSERT_TRUE(R.Parsed);
  // k varies: the subscripts are nonlinear and dependence is assumed.
  EXPECT_GT(R.Stats.NonlinearSubscripts, 0u);
  EXPECT_FALSE(R.Graph.dependences().empty());
}

TEST(Analyzer, DefaultSymbolRangeAppliesToAllSymbols) {
  // With n >= 1 assumed, <i + n, i> can still alias; with symbols
  // unconstrained the verdict must stay conservative too. But
  // <i, i + n> vs distance: check symbolic ZIV instead:
  // a(n) vs a(0): n >= 1 > 0 disproves.
  AnalysisResult R = analyzeSource(R"(
do i = 1, 10
  a(n) = a(0) + b(i)
end do
)", "t");
  ASSERT_TRUE(R.Parsed);
  EXPECT_EQ(R.Stats.IndependentPairs, 1u);

  AnalyzerOptions NoAssume;
  NoAssume.DefaultSymbolRange = Interval::full();
  AnalysisResult R2 = analyzeSource(R"(
do i = 1, 10
  a(n) = a(0) + b(i)
end do
)", "t", NoAssume);
  EXPECT_EQ(R2.Stats.IndependentPairs, 0u);
}

TEST(Analyzer, ExplicitSymbolAssumptionWins) {
  AnalyzerOptions Options;
  Options.Symbols["m"] = Interval(100, 200);
  // a(i) vs a(i + m) in a 10-iteration loop: |d| >= 100 > 9.
  AnalysisResult R = analyzeSource(R"(
do i = 1, 10
  a(i) = a(i + m) + 1
end do
)", "t", Options);
  ASSERT_TRUE(R.Parsed);
  EXPECT_EQ(R.Stats.IndependentPairs, 1u);
}

TEST(Analyzer, StatsAccumulateAcrossPairs) {
  AnalysisResult R = analyzeSource(R"(
do i = 1, 100
  a(i) = a(i-1) + a(i+1) + a(2*i)
end do
)", "t");
  ASSERT_TRUE(R.Parsed);
  // Pairs: each read vs the write (3) plus the write's output
  // self-pair; read-read pairs are skipped. All 1-dimensional.
  EXPECT_EQ(R.Stats.ReferencePairs, 4u);
  EXPECT_EQ(R.Stats.DimensionHistogram[0], 4u);
  EXPECT_GT(R.Stats.applications(TestKind::StrongSIV), 0u);
  EXPECT_GT(R.Stats.applications(TestKind::ExactSIV), 0u);
}
