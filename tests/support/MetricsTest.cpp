//===- tests/support/MetricsTest.cpp - Metrics registry tests -------------===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//
//
// The metrics contract: snapshot merging is associative, commutative,
// and has the zero snapshot as identity (so the merged view cannot
// depend on shard order or worker scheduling); a deterministic serial
// workload yields deterministic event counters; and the degraded-kind
// helper maps onto the five per-kind counters.
//
//===----------------------------------------------------------------------===//

#include "support/Metrics.h"

#include "driver/Analyzer.h"
#include "support/Failure.h"

#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <vector>

using namespace pdt;

namespace {

/// A synthetic snapshot with distinctive values derived from \p Seed,
/// touching every field class (counters, gauges, histogram cells).
MetricsSnapshot synthetic(uint64_t Seed) {
  MetricsSnapshot S;
  for (unsigned I = 0; I != NumMetrics; ++I)
    S.Counters[I] = Seed * 31 + I * 7 + 1;
  for (unsigned I = 0; I != NumGauges; ++I)
    S.Gauges[I] = Seed * 13 + I * 5;
  for (unsigned I = 0; I != NumHistos; ++I) {
    auto &H = S.Histograms[I];
    H.Count = Seed + I + 2;
    H.SumNs = Seed * 1000 + I;
    H.MaxNs = Seed * 100 + I * 10;
    for (unsigned B = 0; B != HistoBuckets; ++B)
      H.Buckets[B] = (Seed + B * I) % 9;
  }
  return S;
}

/// merge() mutates in place; this returns the merged copy.
MetricsSnapshot merged(MetricsSnapshot A, const MetricsSnapshot &B) {
  A.merge(B);
  return A;
}

/// The deterministic portion of a snapshot: every counter that records
/// an event count rather than elapsed wall time. Timing fields
/// (GraphBuildNs, the latency histograms, and the latency-derived
/// histogram summaries) legitimately differ between identical runs.
std::vector<uint64_t> eventCounters(const MetricsSnapshot &S) {
  std::vector<uint64_t> Out;
  for (unsigned I = 0; I != NumMetrics; ++I)
    if (static_cast<Metric>(I) != Metric::GraphBuildNs)
      Out.push_back(S.Counters[I]);
  return Out;
}

MetricsSnapshot runSerialWorkload() {
  const char *Source = "do i = 1, 40\n"
                       "  do j = 1, 40\n"
                       "    a(i+1, j) = a(i, j+1)\n"
                       "    b(2*i) = b(2*i+1) + a(i, j)\n"
                       "  end do\n"
                       "end do\n";
  Metrics::enable("");
  AnalyzerOptions Opt;
  Opt.NumThreads = 1;
  AnalysisResult R = analyzeSource(Source, "metrics-workload", Opt);
  EXPECT_TRUE(R.Parsed);
  MetricsSnapshot S = Metrics::snapshot();
  Metrics::stop();
  return S;
}

} // namespace

TEST(Metrics, MergeIdentity) {
  MetricsSnapshot Zero;
  MetricsSnapshot A = synthetic(3);
  EXPECT_EQ(merged(A, Zero), A);
  EXPECT_EQ(merged(Zero, A), A);
}

TEST(Metrics, MergeCommutative) {
  MetricsSnapshot A = synthetic(1), B = synthetic(8);
  EXPECT_EQ(merged(A, B), merged(B, A));
}

TEST(Metrics, MergeAssociative) {
  MetricsSnapshot A = synthetic(2), B = synthetic(5), C = synthetic(11);
  EXPECT_EQ(merged(merged(A, B), C), merged(A, merged(B, C)));
}

TEST(Metrics, MergeSemanticsPerFieldClass) {
  MetricsSnapshot A = synthetic(1), B = synthetic(4);
  MetricsSnapshot M = merged(A, B);
  // Counters and histogram cells sum; gauges take the max.
  EXPECT_EQ(M.counter(Metric::PairsTested),
            A.counter(Metric::PairsTested) + B.counter(Metric::PairsTested));
  EXPECT_EQ(M.gauge(Gauge::PoolWorkers),
            std::max(A.gauge(Gauge::PoolWorkers), B.gauge(Gauge::PoolWorkers)));
  EXPECT_EQ(M.histogram(Histo::PairTestNs).Count,
            A.histogram(Histo::PairTestNs).Count +
                B.histogram(Histo::PairTestNs).Count);
  EXPECT_EQ(M.histogram(Histo::PairTestNs).MaxNs,
            std::max(A.histogram(Histo::PairTestNs).MaxNs,
                     B.histogram(Histo::PairTestNs).MaxNs));
}

TEST(Metrics, SerialWorkloadIsDeterministic) {
  if (!Metrics::compiledIn())
    GTEST_SKIP() << "metrics compiled out";
  MetricsSnapshot First = runSerialWorkload();
  MetricsSnapshot Second = runSerialWorkload();
  EXPECT_EQ(eventCounters(First), eventCounters(Second));
  EXPECT_GT(First.counter(Metric::GraphBuilds), 0u);
  EXPECT_GT(First.counter(Metric::PairsEnumerated), 0u);
  EXPECT_GT(First.counter(Metric::PairsTested), 0u);
  EXPECT_GT(First.counter(Metric::EdgesEmitted), 0u);
  EXPECT_GT(First.counter(Metric::AccessesLowered), 0u);
}

TEST(Metrics, CountDegradedMapsOntoPerKindCounters) {
  if (!Metrics::compiledIn())
    GTEST_SKIP() << "metrics compiled out";
  Metrics::enable("");
  const Metric Kinds[] = {Metric::DegradedOverflow, Metric::DegradedBudget,
                          Metric::DegradedSymbolic, Metric::DegradedInternal,
                          Metric::DegradedMalformed};
  for (unsigned Kind = 0; Kind != 5; ++Kind)
    for (unsigned N = 0; N != Kind + 1; ++N)
      Metrics::countDegraded(Kind);
  MetricsSnapshot S = Metrics::snapshot();
  Metrics::stop();
  for (unsigned Kind = 0; Kind != 5; ++Kind)
    EXPECT_EQ(S.counter(Kinds[Kind]), Kind + 1)
        << "kind " << failureKindName(static_cast<FailureKind>(Kind));
}

TEST(Metrics, DisabledByDefaultRecordsNothing) {
  Metrics::stop();
  Metrics::reset();
  Metrics::count(Metric::PairsTested, 42);
  Metrics::gaugeMax(Gauge::PoolWorkers, 7);
  Metrics::observe(Histo::PairTestNs, 1000);
  EXPECT_EQ(Metrics::snapshot(), MetricsSnapshot());
}

namespace {

/// A histogram with \p PerBucket[I] samples in bucket I (value range
/// [2^(I-1), 2^I)), Count kept consistent, MaxNs as given.
MetricsSnapshot::Histogram bucketed(
    std::initializer_list<std::pair<unsigned, uint64_t>> PerBucket,
    uint64_t MaxNs) {
  MetricsSnapshot::Histogram H;
  for (auto [Bucket, N] : PerBucket) {
    H.Buckets[Bucket] = N;
    H.Count += N;
  }
  H.MaxNs = MaxNs;
  return H;
}

} // namespace

TEST(MetricsQuantile, EmptyHistogramIsZero) {
  MetricsSnapshot::Histogram H;
  EXPECT_EQ(H.quantileNs(0.0), 0.0);
  EXPECT_EQ(H.quantileNs(0.5), 0.0);
  EXPECT_EQ(H.quantileNs(1.0), 0.0);
}

TEST(MetricsQuantile, SingleBucketInterpolatesUniformly) {
  // 4 samples in bucket 3, i.e. values in [4, 8). The 0-based rank
  // Q*(Count-1) sits at within-bucket fraction (rank + 0.5)/4.
  MetricsSnapshot::Histogram H = bucketed({{3, 4}}, /*MaxNs=*/7);
  EXPECT_DOUBLE_EQ(H.quantileNs(0.0), 4.5);  // rank 0   -> 4 + 0.125*4
  EXPECT_DOUBLE_EQ(H.quantileNs(0.5), 6.0);  // rank 1.5 -> 4 + 0.5*4
  EXPECT_DOUBLE_EQ(H.quantileNs(1.0), 7.0);  // rank 3 -> 7.5, clamped
}

TEST(MetricsQuantile, BucketZeroMeansValueZero) {
  MetricsSnapshot::Histogram H = bucketed({{0, 10}}, /*MaxNs=*/0);
  EXPECT_EQ(H.quantileNs(0.0), 0.0);
  EXPECT_EQ(H.quantileNs(0.99), 0.0);
  EXPECT_EQ(H.quantileNs(1.0), 0.0);
}

TEST(MetricsQuantile, WalksAcrossBuckets) {
  // One sample in [1,2), one in [2,4): the low quantile interpolates
  // inside the first bucket, the high one inside the second.
  MetricsSnapshot::Histogram H = bucketed({{1, 1}, {2, 1}}, /*MaxNs=*/3);
  EXPECT_DOUBLE_EQ(H.quantileNs(0.0), 1.5); // bucket 1 midpoint
  EXPECT_DOUBLE_EQ(H.quantileNs(1.0), 3.0); // bucket 2 midpoint
}

TEST(MetricsQuantile, MedianLandsInTheHeavyBucket) {
  // 1 sample in [2,4), 98 in [8,16), 1 in [32,64): every central
  // quantile must come from the dominant bucket.
  MetricsSnapshot::Histogram H =
      bucketed({{2, 1}, {4, 98}, {6, 1}}, /*MaxNs=*/40);
  EXPECT_DOUBLE_EQ(H.quantileNs(0.50), 12.0); // rank 49.5, mid-bucket
  // rank 98.01 is still among the 98 heavy samples; only the true
  // maximum escapes into the outlier bucket (and clamps to MaxNs).
  double P99 = H.quantileNs(0.99);
  EXPECT_GE(P99, 8.0);
  EXPECT_LT(P99, 16.0);
  EXPECT_DOUBLE_EQ(H.quantileNs(1.0), 40.0);
}

TEST(MetricsQuantile, MonotonicInQ) {
  MetricsSnapshot::Histogram H =
      bucketed({{1, 3}, {3, 7}, {5, 11}, {9, 2}}, /*MaxNs=*/500);
  double Prev = -1.0;
  for (double Q = 0.0; Q <= 1.0; Q += 0.05) {
    double V = H.quantileNs(Q);
    EXPECT_GE(V, Prev) << "at Q=" << Q;
    Prev = V;
  }
}

TEST(MetricsQuantile, ClampsToObservedMax) {
  // All mass in [16,32) but the largest observed sample was 17: the
  // interpolated upper quantiles must not exceed it.
  MetricsSnapshot::Histogram H = bucketed({{5, 8}}, /*MaxNs=*/17);
  EXPECT_EQ(H.quantileNs(1.0), 17.0);
  EXPECT_LE(H.quantileNs(0.99), 17.0);
}

TEST(MetricsQuantile, OutOfRangeQIsClamped) {
  MetricsSnapshot::Histogram H = bucketed({{3, 4}}, /*MaxNs=*/7);
  EXPECT_EQ(H.quantileNs(-1.0), H.quantileNs(0.0));
  EXPECT_EQ(H.quantileNs(2.0), H.quantileNs(1.0));
}

TEST(MetricsQuantile, AllMassInTheOverflowBucketClampsToMax) {
  // Every sample saturated into the clamped top bucket: quantiles
  // interpolate within the bucket's nominal range, never exceed the
  // observed maximum, and never overflow or NaN.
  MetricsSnapshot::Histogram H =
      bucketed({{HistoBuckets - 1, 12}}, /*MaxNs=*/5'000'000'000ull);
  for (double Q : {0.0, 0.5, 1.0}) {
    double V = H.quantileNs(Q);
    EXPECT_GE(V, static_cast<double>(1u << 30)) << "at Q=" << Q;
    EXPECT_LE(V, 5e9) << "at Q=" << Q;
  }
  double Prev = -1.0;
  for (double Q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    double V = H.quantileNs(Q);
    EXPECT_GE(V, Prev) << "at Q=" << Q;
    Prev = V;
  }
}

TEST(MetricsQuantile, JsonCarriesQuantileSummaries) {
  MetricsSnapshot S = synthetic(6);
  std::string Json = Metrics::toJson(S);
  EXPECT_NE(Json.find("\"p50_ns\""), std::string::npos);
  EXPECT_NE(Json.find("\"p95_ns\""), std::string::npos);
  EXPECT_NE(Json.find("\"p99_ns\""), std::string::npos);
}

TEST(Metrics, PrometheusNamesEveryRegisteredMetricSanitized) {
  MetricsSnapshot S = synthetic(6);
  std::string Text = Metrics::toPrometheus(S);
  auto Sanitized = [](std::string Name) {
    for (char &C : Name)
      if (!std::isalnum(static_cast<unsigned char>(C)))
        C = '_';
    return "pdt_" + Name;
  };
  for (unsigned I = 0; I != NumMetrics; ++I)
    EXPECT_NE(Text.find(Sanitized(metricName(static_cast<Metric>(I)))),
              std::string::npos)
        << metricName(static_cast<Metric>(I));
  for (unsigned I = 0; I != NumGauges; ++I)
    EXPECT_NE(Text.find(Sanitized(gaugeName(static_cast<Gauge>(I)))),
              std::string::npos);
  for (unsigned I = 0; I != NumHistos; ++I)
    EXPECT_NE(Text.find(Sanitized(histoName(static_cast<Histo>(I))) +
                        "_bucket{le=\"0\"}"),
              std::string::npos)
        << histoName(static_cast<Histo>(I));
}

TEST(Metrics, PrometheusCumulativeBucketsMatchTheLog2Cells) {
  // The log2 cells map exactly onto cumulative le bounds: the count
  // through bucket B is the count of values <= 2^B - 1, and the
  // clamped top bucket contributes only to +Inf.
  MetricsSnapshot S;
  auto &H = S.Histograms[static_cast<unsigned>(Histo::PairTestNs)];
  H = bucketed({{0, 2}, {3, 5}, {HistoBuckets - 1, 4}}, /*MaxNs=*/9'000);
  H.SumNs = 12345;
  std::string Text = Metrics::toPrometheus(S);
  const std::string N = "pdt_latency_pair_test_ns";
  EXPECT_NE(Text.find(N + "_bucket{le=\"0\"} 2"), std::string::npos) << Text;
  EXPECT_NE(Text.find(N + "_bucket{le=\"1\"} 2"), std::string::npos);
  EXPECT_NE(Text.find(N + "_bucket{le=\"3\"} 2"), std::string::npos);
  EXPECT_NE(Text.find(N + "_bucket{le=\"7\"} 7"), std::string::npos);
  // The last finite bound excludes the overflow bucket...
  EXPECT_NE(Text.find(N + "_bucket{le=\"1073741823\"} 7"),
            std::string::npos);
  // ...which surfaces only in +Inf, which must equal _count.
  EXPECT_NE(Text.find(N + "_bucket{le=\"+Inf\"} 11"), std::string::npos);
  EXPECT_NE(Text.find(N + "_count 11"), std::string::npos);
  EXPECT_NE(Text.find(N + "_sum 12345"), std::string::npos);
}

TEST(Metrics, JsonNamesEveryRegisteredMetric) {
  MetricsSnapshot S = synthetic(6);
  std::string Json = Metrics::toJson(S);
  for (unsigned I = 0; I != NumMetrics; ++I)
    EXPECT_NE(Json.find(metricName(static_cast<Metric>(I))), std::string::npos)
        << metricName(static_cast<Metric>(I));
  for (unsigned I = 0; I != NumGauges; ++I)
    EXPECT_NE(Json.find(gaugeName(static_cast<Gauge>(I))), std::string::npos);
  for (unsigned I = 0; I != NumHistos; ++I)
    EXPECT_NE(Json.find(histoName(static_cast<Histo>(I))), std::string::npos);
}
