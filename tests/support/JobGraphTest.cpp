//===- tests/support/JobGraphTest.cpp - Job-graph scheduler tests ---------===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//
//
// The dependency-aware scheduler behind the pipelined dependence-graph
// build: jobs must never start before their dependencies finish (at
// any worker count), a single worker must execute the FIFO topological
// order deterministically, and a throwing job must neither poison its
// siblings nor starve its dependents.
//
//===----------------------------------------------------------------------===//

#include "support/JobGraph.h"

#include "support/Failure.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <random>
#include <vector>

using namespace pdt;

namespace {

/// Runs a fork-join diamond lattice and checks the topological
/// contract: every job observes all of its dependencies completed.
void runTopologicalLattice(unsigned Workers) {
  ThreadPool Pool(Workers);
  JobGraph Graph;

  constexpr unsigned Layers = 6, Width = 8;
  std::vector<std::atomic<bool>> Done(Layers * Width);
  std::atomic<unsigned> Violations{0};

  std::vector<JobGraph::JobId> Prev;
  for (unsigned L = 0; L != Layers; ++L) {
    std::vector<JobGraph::JobId> Current;
    for (unsigned W = 0; W != Width; ++W) {
      unsigned Slot = L * Width + W;
      // Each job depends on two jobs of the previous layer (wrapping),
      // forming overlapping diamonds.
      std::vector<JobGraph::JobId> Deps;
      std::vector<unsigned> DepSlots;
      if (L != 0) {
        Deps = {Prev[W], Prev[(W + 1) % Width]};
        DepSlots = {(L - 1) * Width + W, (L - 1) * Width + (W + 1) % Width};
      }
      Current.push_back(Graph.add(
          [&Done, &Violations, Slot, DepSlots] {
            for (unsigned D : DepSlots)
              if (!Done[D].load())
                Violations.fetch_add(1);
            Done[Slot].store(true);
          },
          Deps));
    }
    Prev = std::move(Current);
  }

  EXPECT_EQ(Graph.size(), Layers * Width);
  Graph.run(Pool);
  EXPECT_EQ(Violations.load(), 0u);
  for (const std::atomic<bool> &D : Done)
    EXPECT_TRUE(D.load());
}

} // namespace

TEST(JobGraph, TopologicalAtOneWorker) { runTopologicalLattice(1); }
TEST(JobGraph, TopologicalAtFourWorkers) { runTopologicalLattice(4); }
TEST(JobGraph, TopologicalAtEightWorkers) { runTopologicalLattice(8); }

TEST(JobGraph, EmptyGraphIsANoOp) {
  ThreadPool Pool(4);
  JobGraph Graph;
  EXPECT_EQ(Graph.size(), 0u);
  Graph.run(Pool); // Must not hang or throw.
}

TEST(JobGraph, SingleWorkerRunsFIFOTopologicalOrder) {
  // With one worker the ready queue is drained strictly FIFO: sources
  // in id order, then successors in the order their last dependency
  // completed. For a chain interleaved with independent jobs the
  // resulting order is fully determined.
  ThreadPool Pool(1);
  JobGraph Graph;
  std::vector<unsigned> Order;

  auto Record = [&Order](unsigned Tag) {
    return [&Order, Tag] { Order.push_back(Tag); };
  };
  JobGraph::JobId A = Graph.add(Record(0));            // source
  JobGraph::JobId B = Graph.add(Record(1));            // source
  JobGraph::JobId C = Graph.add(Record(2), {A});       // ready after A
  JobGraph::JobId D = Graph.add(Record(3), {A, B});    // ready after B
  Graph.add(Record(4), {C, D});
  Graph.run(Pool);

  // A and B run first (id order); A's completion enqueues C, B's
  // completion enqueues D, so the FIFO pops C before D, and the sink
  // runs last.
  EXPECT_EQ(Order, (std::vector<unsigned>{0, 1, 2, 3, 4}));
}

TEST(JobGraph, SingleWorkerOrderIsDeterministic) {
  std::vector<std::vector<unsigned>> Runs;
  for (unsigned Rep = 0; Rep != 3; ++Rep) {
    ThreadPool Pool(1);
    JobGraph Graph;
    std::vector<unsigned> Order;
    std::mt19937_64 Rng(99);
    std::vector<JobGraph::JobId> Ids;
    for (unsigned I = 0; I != 40; ++I) {
      std::vector<JobGraph::JobId> Deps;
      for (JobGraph::JobId Candidate : Ids)
        if (Rng() % 5 == 0)
          Deps.push_back(Candidate);
      Ids.push_back(Graph.add([&Order, I] { Order.push_back(I); }, Deps));
    }
    Graph.run(Pool);
    Runs.push_back(std::move(Order));
  }
  EXPECT_EQ(Runs[0], Runs[1]);
  EXPECT_EQ(Runs[0], Runs[2]);
}

TEST(JobGraph, ThrowingJobDoesNotStarveDependents) {
  for (unsigned Workers : {1u, 4u}) {
    ThreadPool Pool(Workers);
    JobGraph Graph;
    std::atomic<unsigned> Ran{0};

    JobGraph::JobId Thrower =
        Graph.add([] { throw std::runtime_error("job failed"); });
    // Both a dependent of the thrower and an unrelated sibling must
    // still execute; the first error resurfaces from run().
    Graph.add([&Ran] { Ran.fetch_add(1); }, {Thrower});
    Graph.add([&Ran] { Ran.fetch_add(1); });

    EXPECT_THROW(Graph.run(Pool), std::runtime_error);
    EXPECT_EQ(Ran.load(), 2u);
  }
}

TEST(JobGraph, FirstOfSeveralErrorsIsRethrown) {
  // Serial execution makes "first" deterministic: job 0 throws before
  // job 1 does.
  ThreadPool Pool(1);
  JobGraph Graph;
  Graph.add([] { throw std::runtime_error("first"); });
  Graph.add([] { throw std::logic_error("second"); });
  try {
    Graph.run(Pool);
    FAIL() << "run() must rethrow";
  } catch (const std::runtime_error &E) {
    EXPECT_STREQ(E.what(), "first");
  }
}

TEST(JobGraph, ForwardDependenciesAreRejected) {
  JobGraph Graph;
  JobGraph::JobId A = Graph.add([] {});
  // Depending on a job id that has not been added yet would permit
  // cycles; the graph refuses it (recoverable failure, not abort).
  EXPECT_THROW(Graph.add([] {}, {A + 1}), AnalysisError);
}

TEST(JobGraph, IsSingleShot) {
  ThreadPool Pool(1);
  JobGraph Graph;
  Graph.add([] {});
  Graph.run(Pool);
  EXPECT_THROW(Graph.run(Pool), AnalysisError);
  EXPECT_THROW(Graph.add([] {}), AnalysisError);
}

TEST(JobGraph, StressRandomDAGAtManyWorkers) {
  // A few hundred jobs with random back-edges: all jobs run exactly
  // once and no job starts before its dependencies complete.
  std::mt19937_64 Rng(1234);
  for (unsigned Workers : {2u, 8u}) {
    ThreadPool Pool(Workers);
    JobGraph Graph;
    constexpr unsigned N = 300;
    std::vector<std::atomic<bool>> Done(N);
    std::atomic<unsigned> Violations{0}, Ran{0};
    for (unsigned I = 0; I != N; ++I) {
      std::vector<JobGraph::JobId> Deps;
      if (I != 0)
        for (unsigned D = 0; D != 3; ++D)
          Deps.push_back(Rng() % I);
      std::vector<JobGraph::JobId> DepCopy = Deps;
      Graph.add(
          [&Done, &Violations, &Ran, I, DepCopy] {
            for (JobGraph::JobId D : DepCopy)
              if (!Done[D].load())
                Violations.fetch_add(1);
            Ran.fetch_add(1);
            Done[I].store(true);
          },
          Deps);
    }
    Graph.run(Pool);
    EXPECT_EQ(Ran.load(), N);
    EXPECT_EQ(Violations.load(), 0u);
  }
}
