//===- tests/core/DependenceTesterTest.cpp -----------------------------------===//
//
// Unit tests for the top-level partition-based algorithm (paper
// section 3).
//
//===----------------------------------------------------------------------===//

#include "core/DependenceTester.h"

#include "../TestHelpers.h"

#include <gtest/gtest.h>

using namespace pdt;
using namespace pdt::test;

namespace {

LinearExpr idx(const char *N, int64_t C = 1) {
  return LinearExpr::index(N, C);
}

} // namespace

TEST(DependenceTester, SeparableSIVMerge) {
  // A(i-1, j+1) vs A(i, j): distances (−1 on i? source is first):
  // <i-1, i> gives d = 1... equation (i-1) - i' = 0 => d = -1. And
  // <j+1, j> gives d = ... equation j + 1 - j' = 0 => d = 1? No:
  // d = i' - i; j' = j + 1 => d_j = 1. i' = i - 1 => d_i = -1.
  LoopNestContext Ctx = doubleLoop("i", 1, 10, "j", 1, 10);
  std::vector<SubscriptPair> Subs = {
      SubscriptPair(idx("i") - LinearExpr(1), idx("i"), 0),
      SubscriptPair(idx("j") + LinearExpr(1), idx("j"), 1)};
  DependenceTestResult R = testDependence(Subs, Ctx);
  EXPECT_EQ(R.TheVerdict, Verdict::Dependent);
  ASSERT_EQ(R.Vectors.size(), 1u);
  EXPECT_EQ(R.Vectors[0].Distances[0], std::optional<int64_t>(-1));
  EXPECT_EQ(R.Vectors[0].Distances[1], std::optional<int64_t>(1));
}

TEST(DependenceTester, AnyIndependentSubscriptWins) {
  // Second dimension <2j, 2j+1> disproves regardless of the first.
  LoopNestContext Ctx = doubleLoop("i", 1, 10, "j", 1, 10);
  std::vector<SubscriptPair> Subs = {
      SubscriptPair(idx("i"), idx("i"), 0),
      SubscriptPair(idx("j", 2), idx("j", 2) + LinearExpr(1), 1)};
  DependenceTestResult R = testDependence(Subs, Ctx);
  EXPECT_TRUE(R.isIndependent());
  EXPECT_EQ(R.DecidedBy, TestKind::StrongSIV);
}

TEST(DependenceTester, ZIVDimensionDisproves) {
  LoopNestContext Ctx = singleLoop("i", 1, 10);
  std::vector<SubscriptPair> Subs = {
      SubscriptPair(idx("i"), idx("i"), 0),
      SubscriptPair(LinearExpr(1), LinearExpr(2), 1)};
  DependenceTestResult R = testDependence(Subs, Ctx);
  EXPECT_TRUE(R.isIndependent());
  EXPECT_EQ(R.DecidedBy, TestKind::ZIV);
}

TEST(DependenceTester, CoupledGroupGoesToDelta) {
  TestStats Stats;
  LoopNestContext Ctx = singleLoop("i", 1, 10);
  std::vector<SubscriptPair> Subs = {
      SubscriptPair(idx("i") + LinearExpr(1), idx("i"), 0),
      SubscriptPair(idx("i"), idx("i") + LinearExpr(1), 1)};
  DependenceTestResult R = testDependence(Subs, Ctx, &Stats);
  EXPECT_TRUE(R.isIndependent());
  EXPECT_EQ(Stats.applications(TestKind::Delta), 1u);
  EXPECT_EQ(Stats.CoupledGroups, 1u);
}

TEST(DependenceTester, StatsClassifySubscripts) {
  TestStats Stats;
  LoopNestContext Ctx = doubleLoop("i", 1, 10, "j", 1, 10);
  std::vector<SubscriptPair> Subs = {
      SubscriptPair(LinearExpr(1), LinearExpr(1), 0),   // ZIV
      SubscriptPair(idx("i"), idx("i"), 1),             // SIV
      SubscriptPair(idx("i") + idx("j"), idx("j"), 2)}; // MIV
  testDependence(Subs, Ctx, &Stats);
  EXPECT_EQ(Stats.ZIVSubscripts, 1u);
  EXPECT_EQ(Stats.SIVSubscripts, 1u);
  EXPECT_EQ(Stats.MIVSubscripts, 1u);
}

TEST(DependenceTester, WeakSIVHintsSurface) {
  // <i, 1> in dim 1: peel-first hint. <i, -i + 11> crossing hint needs
  // a separate partition; use a second array dimension on j.
  LoopNestContext Ctx = doubleLoop("i", 1, 10, "j", 1, 10);
  std::vector<SubscriptPair> Subs = {
      SubscriptPair(idx("i"), LinearExpr(1), 0),
      SubscriptPair(idx("j"), idx("j", -1) + LinearExpr(11), 1)};
  DependenceTestResult R = testDependence(Subs, Ctx);
  ASSERT_EQ(R.Hints.size(), 2u);
  EXPECT_EQ(R.Hints[0].TheKind, TransformHint::Kind::PeelFirst);
  EXPECT_EQ(R.Hints[0].Index, "i");
  EXPECT_EQ(R.Hints[1].TheKind, TransformHint::Kind::Split);
  EXPECT_EQ(R.Hints[1].Index, "j");
  ASSERT_TRUE(R.Hints[1].CrossingPoint.has_value());
  EXPECT_EQ(*R.Hints[1].CrossingPoint, Rational(11, 2));
}

TEST(DependenceTester, EmptySubscriptsConservativelyDependent) {
  LoopNestContext Ctx = singleLoop("i", 1, 10);
  DependenceTestResult R = testDependence({}, Ctx);
  EXPECT_FALSE(R.isIndependent());
  ASSERT_EQ(R.Vectors.size(), 1u);
  EXPECT_EQ(R.Vectors[0].Directions[0], DirAll);
}

//===----------------------------------------------------------------------===//
// Access-pair front end
//===----------------------------------------------------------------------===//

namespace {

/// Parses, collects, and returns the two accesses of the (single)
/// array named \p Array.
std::pair<ArrayAccess, ArrayAccess>
accessPairFor(const Program &P, const std::string &Array) {
  std::vector<ArrayAccess> All = collectAccesses(P);
  std::vector<ArrayAccess> Mine;
  for (const ArrayAccess &A : All)
    if (A.Ref->getArrayName() == Array)
      Mine.push_back(A);
  EXPECT_EQ(Mine.size(), 2u);
  return {Mine[0], Mine[1]};
}

} // namespace

TEST(AccessPair, NonCommonIndexBecomesRangedSymbol) {
  // The write runs over j in an inner loop the read does not share:
  // a(j) for j in [1, 5] vs a(8): independent because 8 > 5.
  Program P = parseOrDie(R"(
do i = 1, 10
  do j = 1, 5
    a(j) = 1
  end do
  b(i) = a(8)
end do
)");
  auto [W, R] = accessPairFor(P, "a");
  DependenceTestResult Result = testAccessPair(W, R, SymbolRangeMap());
  EXPECT_TRUE(Result.isIndependent());
}

TEST(AccessPair, NonCommonIndexOverlapIsDependent) {
  Program P = parseOrDie(R"(
do i = 1, 10
  do j = 1, 5
    a(j) = 1
  end do
  b(i) = a(3)
end do
)");
  auto [W, R] = accessPairFor(P, "a");
  DependenceTestResult Result = testAccessPair(W, R, SymbolRangeMap());
  EXPECT_FALSE(Result.isIndependent());
}

TEST(AccessPair, SameNonCommonIndexIsRenamedPerSide) {
  // Both references use k, but under *different* k loops: k and k'
  // must not cancel. a(k) in loop 1 vs a(k+1) in loop 2 overlap.
  Program P = parseOrDie(R"(
do i = 1, 10
  do k = 1, 5
    a(k) = 1
  end do
  do k = 1, 5
    c(k) = a(k+1)
  end do
end do
)");
  auto [W, R] = accessPairFor(P, "a");
  DependenceTestResult Result = testAccessPair(W, R, SymbolRangeMap());
  // a writes [1,5]; a reads [2,6]: overlap => must not be independent.
  EXPECT_FALSE(Result.isIndependent());
}

TEST(AccessPair, VaryingScalarIsNonlinear) {
  Program P = parseOrDie(R"(
do i = 1, 10
  k = k + 1
  a(k) = a(k+1) + 1
end do
)");
  std::vector<ArrayAccess> All = collectAccesses(P);
  std::vector<ArrayAccess> Mine;
  for (const ArrayAccess &A : All)
    if (A.Ref->getArrayName() == "a")
      Mine.push_back(A);
  ASSERT_EQ(Mine.size(), 2u);
  std::set<std::string> Varying = collectVaryingScalars(P);
  EXPECT_TRUE(Varying.count("k"));
  DependenceTestResult R =
      testAccessPair(Mine[0], Mine[1], SymbolRangeMap(), nullptr, &Varying);
  // Without the varying-scalar guard this would be "ZIV, difference 1,
  // independent" — which is wrong since k changes per iteration.
  EXPECT_FALSE(R.isIndependent());
  EXPECT_TRUE(R.HasNonlinear);
}

TEST(AccessPair, DimensionMismatchIsConservative) {
  Program P = parseOrDie(R"(
do i = 1, 10
  a(i, 1) = 1
  b(i) = a(i)
end do
)");
  auto [W, R] = accessPairFor(P, "a");
  DependenceTestResult Result = testAccessPair(W, R, SymbolRangeMap());
  EXPECT_FALSE(Result.isIndependent());
}

TEST(AccessPair, PreparedPairExposesStructure) {
  Program P = parseOrDie(R"(
do i = 1, 10
  a(i, i+1) = a(i+1, i) + 1
end do
)");
  auto [R1, W1] = accessPairFor(P, "a");
  std::optional<PreparedPair> Prep =
      prepareAccessPair(R1, W1, SymbolRangeMap());
  ASSERT_TRUE(Prep.has_value());
  EXPECT_EQ(Prep->Subscripts.size(), 2u);
  EXPECT_TRUE(Prep->HasCoupledGroup);
  EXPECT_FALSE(Prep->HasNonlinear);
}
