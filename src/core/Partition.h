//===- core/Partition.h - Separability partitioning -------------*- C++ -*-===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Partitions the subscripts of a reference pair into separable
/// subscripts and minimal coupled groups (paper section 2.2 and step 1
/// of section 3). Two subscripts are coupled when they share a loop
/// index; a coupled group is minimal when it cannot be split into
/// subgroups with disjoint index sets. Implemented with a union-find
/// over subscript positions keyed by shared indices.
///
//===----------------------------------------------------------------------===//

#ifndef PDT_CORE_PARTITION_H
#define PDT_CORE_PARTITION_H

#include "core/Subscript.h"

#include <vector>

namespace pdt {

/// One partition: the subscript positions it contains (indices into
/// the original subscript vector) and the union of loop indices they
/// reference.
struct SubscriptPartition {
  std::vector<unsigned> Positions;
  std::set<std::string> Indices;

  bool isSeparable() const { return Positions.size() == 1; }
};

/// Partitions \p Subscripts into minimal coupled groups. ZIV
/// subscripts (no indices) are vacuously separable and each form their
/// own partition. Partitions are returned in order of their first
/// subscript position, so output is deterministic.
std::vector<SubscriptPartition>
partitionSubscripts(const std::vector<SubscriptPair> &Subscripts);

} // namespace pdt

#endif // PDT_CORE_PARTITION_H
