//===- support/EventLog.h - Severity-tagged JSONL event journal -*- C++ -*-===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The structured event journal: one JSONL line per notable incident —
/// degraded pairs, budget exhaustions, store quarantines/recoveries,
/// fault-injection trips, watchdog stall verdicts, flight-recorder
/// postmortems — severity-tagged and queryable by `depmon events`.
/// Counters say *how many*; the journal says *what and when*.
///
/// Schema (pdt-events-v1): the first line is a header object
///   {"schema":"pdt-events-v1","build":{...},"start":"<iso8601>"}
/// and every following line is
///   {"t_ms":N,"seq":N,"sev":"info|warn|error","layer":"core",
///    "what":"...",["req":"<id>",]"detail":"...","fields":{...}
///    [,"suppressed":N]}
/// "seq" is a per-process monotonic sequence (never reset, not even by
/// start()), so tails of several journals written by one process can
/// be totally ordered; `depmon events` prints it. "req" appears when
/// the event fired inside a serving request's RequestContext scope and
/// names that request's X-PDT-Request-Id.
///
/// Crash-safe by construction: each line is appended and flushed
/// before event() returns, so the journal survives SIGABRT without a
/// flush hook. A bounded in-memory ring of recent lines feeds the run
/// report and the tests.
///
/// Rate limiting: a per-(layer,what) token window (default 32 events
/// per second) keeps a degradation storm from turning the journal into
/// the unbounded buffer this PR exists to eliminate; suppressed events
/// are counted and reported on the next emitted line of that key.
///
/// Armed via PDT_EVENTS=out.jsonl (file + memory) or start("") (memory
/// only, used when the watchdog or flight recorder needs a journal and
/// none was configured).
///
//===----------------------------------------------------------------------===//

#ifndef PDT_SUPPORT_EVENTLOG_H
#define PDT_SUPPORT_EVENTLOG_H

#include <array>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

// Defined to 0 by the build when the PDT_TRACING CMake option is OFF;
// the journal compiles out with the rest of the telemetry substrate.
#ifndef PDT_TRACING
#define PDT_TRACING 1
#endif

namespace pdt {

enum class EventSeverity : unsigned { Info, Warn, Error };
constexpr unsigned NumEventSeverities = 3;
const char *eventSeverityName(EventSeverity Sev);

class EventLog {
public:
  static constexpr bool compiledIn() { return PDT_TRACING != 0; }

  /// Counts since start(): emitted lines by severity plus the events
  /// the rate limiter swallowed.
  struct Counts {
    std::array<uint64_t, NumEventSeverities> Emitted{};
    uint64_t Suppressed = 0;

    uint64_t emitted(EventSeverity Sev) const {
      return Emitted[static_cast<unsigned>(Sev)];
    }
    uint64_t total() const {
      uint64_t N = 0;
      for (uint64_t E : Emitted)
        N += E;
      return N;
    }
  };

#if PDT_TRACING

  /// True while events are being journaled.
  static bool enabled();

  /// Starts journaling. \p Path empty keeps events in memory only;
  /// otherwise the file is (re)created and the pdt-events-v1 header
  /// written. Returns false when the file cannot be opened (memory
  /// journaling still starts).
  static bool start(const std::string &Path);

  /// Stops journaling and closes the file. Counts and recent lines
  /// stay readable until the next start().
  static void stop();

  /// Journals one event. \p Layer and \p What must be string literals
  /// (they key the rate limiter); \p Detail is free text; \p Fields
  /// are numeric key/values rendered into the line's "fields" object.
  /// No-op unless enabled.
  static void event(EventSeverity Sev, const char *Layer, const char *What,
                    const std::string &Detail = "",
                    std::initializer_list<std::pair<const char *, uint64_t>>
                        Fields = {});

  static Counts counts();

  /// The most recent journal lines (bounded ring; header excluded).
  static std::vector<std::string> recentLines();

  /// Reconfigures the per-(layer,what) rate limit (events per window).
  static void configureRateLimit(uint64_t MaxPerWindow, uint64_t WindowMs);

  /// Injects a fake millisecond clock (nullptr restores the real one)
  /// so the rate-limiter tests are deterministic.
  static void setClockForTest(uint64_t (*NowMs)());

  /// Arms from PDT_EVENTS=out.jsonl. Called once before main; exposed
  /// for tests.
  static void initFromEnvironment();

#else

  static bool enabled() { return false; }
  static bool start(const std::string &) { return false; }
  static void stop() {}
  static void event(EventSeverity, const char *, const char *,
                    const std::string & = "",
                    std::initializer_list<std::pair<const char *, uint64_t>> =
                        {}) {}
  static Counts counts() { return {}; }
  static std::vector<std::string> recentLines() { return {}; }
  static void configureRateLimit(uint64_t, uint64_t) {}
  static void setClockForTest(uint64_t (*)()) {}
  static void initFromEnvironment();

#endif // PDT_TRACING
};

} // namespace pdt

#endif // PDT_SUPPORT_EVENTLOG_H
