# Empty compiler generated dependencies file for transform_advisor.
# This may be replaced when dependencies are built.
