//===- support/Sampler.h - Periodic metrics time series ---------*- C++ -*-===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The live telemetry sampler: a background thread snapshots the
/// Metrics registry on a configurable interval and appends the deltas
/// as a pdt-timeseries-v1 JSONL stream, so a multi-hour fuzz campaign
/// or the future depserved daemon can answer "what happened over
/// time" instead of only "what happened in total".
///
/// Schema: the first line is a header object
///   {"schema":"pdt-timeseries-v1","interval_ms":N,"build":{...}}
/// and every sample line is
///   {"t_ms":N,"counters":{<name>:delta,...},"gauges":{...},
///    "series":{<custom>:value,...}}
/// with zero deltas omitted to keep long idle stretches cheap.
///
/// Custom series: any subsystem can registerSeries("fuzz.stratum.zip",
/// fn) to publish its own gauge — the fuzzer exports per-stratum
/// kernel counts this way. The callback runs on the sampler thread and
/// must be cheap and thread-safe (typically one relaxed atomic load).
///
/// Armed via PDT_SAMPLE_MS=interval (+ PDT_SAMPLE=out.jsonl for the
/// file; without a path samples go to the bounded in-memory ring only,
/// which also feeds the run report's "sampler" section).
///
//===----------------------------------------------------------------------===//

#ifndef PDT_SUPPORT_SAMPLER_H
#define PDT_SUPPORT_SAMPLER_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

// Defined to 0 by the build when the PDT_TRACING CMake option is OFF.
#ifndef PDT_TRACING
#define PDT_TRACING 1
#endif

namespace pdt {

class Sampler {
public:
  static constexpr bool compiledIn() { return PDT_TRACING != 0; }
  static constexpr uint64_t DefaultIntervalMs = 250;

  struct Summary {
    uint64_t Samples = 0;
    uint64_t IntervalMs = 0;
  };

#if PDT_TRACING

  static bool enabled();

  /// Starts sampling every \p IntervalMs milliseconds into \p Path
  /// (empty: memory only). \p IntervalMs == 0 starts without a thread
  /// — tests and benches then drive sampleOnceForTest(). Enables
  /// Metrics when nothing else has. Returns false if the file cannot
  /// be opened (memory sampling still starts).
  static bool start(uint64_t IntervalMs = DefaultIntervalMs,
                    const std::string &Path = "");

  /// Takes one final sample, stops the thread, closes the file.
  static void stop();

  /// Takes one sample immediately (same code path as the thread).
  static void sampleOnceForTest();

  /// Publishes a custom series; returns an id for unregisterSeries.
  /// \p Fn runs on the sampler thread — keep it to an atomic load.
  static size_t registerSeries(std::string Name,
                               std::function<uint64_t()> Fn);
  static void unregisterSeries(size_t Id);

  static Summary summary();

  /// The most recent sample lines (bounded ring; header excluded).
  static std::vector<std::string> recentLines();

  /// Arms from PDT_SAMPLE_MS / PDT_SAMPLE. Called once before main;
  /// exposed for tests.
  static void initFromEnvironment();

#else

  static bool enabled() { return false; }
  static bool start(uint64_t = DefaultIntervalMs, const std::string & = "") {
    return false;
  }
  static void stop() {}
  static void sampleOnceForTest() {}
  static size_t registerSeries(std::string, std::function<uint64_t()>) {
    return 0;
  }
  static void unregisterSeries(size_t) {}
  static Summary summary() { return {}; }
  static std::vector<std::string> recentLines() { return {}; }
  static void initFromEnvironment();

#endif // PDT_TRACING
};

} // namespace pdt

#endif // PDT_SUPPORT_SAMPLER_H
