//===- support/FaultInjector.h - Deterministic fault injection --*- C++ -*-===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic fault injection for exercising the degradation paths.
/// The arithmetic kernels of the analysis (LinearExpr term updates,
/// Rational operations, the Diophantine solver, Fourier-Motzkin
/// combination steps) each call FaultInjector::checkpoint() once per
/// operation. When the injector is armed, checkpoints are numbered
/// 1, 2, 3, ... in execution order and the checkpoint whose number
/// equals the armed target raises the armed FailureKind, which the
/// containment layers must absorb into a conservative Degraded result.
/// Sweeping the target over every site therefore proves that no single
/// arithmetic failure anywhere in the pipeline can crash the process
/// or flip a verdict to an unsound "independent".
///
/// Arming is programmatic (arm / armFromSpec) or via the environment:
///
///   PDT_FAULT_INJECT=overflow@17    # kind '@' 1-based site number
///
/// with kinds overflow, budget, symbolic, internal, malformed. A
/// target of 0 counts sites without tripping (count mode), which a
/// sweep harness uses to discover the number of sites first. When the
/// injector has never been armed, checkpoint() is a single relaxed
/// atomic load.
///
/// The persistent result store (support/Store.h) adds a parallel
/// family of *I/O* fault kinds with the same grammar:
///
///   PDT_FAULT_INJECT=io_write@3     # 3rd write site fails
///
/// with kinds io_open, io_write, io_fsync, io_torn_tail. I/O sites
/// are numbered per kind (arming io_write counts only write sites),
/// and tripping is reported by ioCheckpoint() returning true — the
/// store then simulates the failure (EIO, a torn half-written record,
/// ...) instead of an exception, because store failures must degrade
/// to the in-memory path, never unwind into the analysis.
///
//===----------------------------------------------------------------------===//

#ifndef PDT_SUPPORT_FAULTINJECTOR_H
#define PDT_SUPPORT_FAULTINJECTOR_H

#include "support/Failure.h"

#include <cstdint>
#include <optional>
#include <string>

namespace pdt {

/// The injectable I/O failure sites of the persistent store.
enum class IoFaultKind {
  Open,     ///< Opening / creating a file or directory fails.
  Write,    ///< A write fails wholesale (simulated EIO / ENOSPC).
  Fsync,    ///< An fsync fails after the data may have been written.
  TornTail, ///< A write stops halfway through the record (crash image).
};

/// Number of IoFaultKind enumerators.
constexpr unsigned NumIoFaultKinds = 4;

/// Display name ("io_open", "io_write", ...), matching the
/// PDT_FAULT_INJECT grammar.
const char *ioFaultKindName(IoFaultKind K);

class FaultInjector {
public:
  /// Arms the injector: the \p TargetSite-th checkpoint (1-based)
  /// after this call raises \p K. TargetSite 0 counts without
  /// tripping. Resets the site counter.
  static void arm(FailureKind K, uint64_t TargetSite);

  /// Parses a "kind@site" spec ("overflow@17", "io_write@3"); returns
  /// false (and leaves the injector untouched) on a malformed spec.
  /// io_* kinds arm the I/O injector, every other kind the arithmetic
  /// one.
  static bool armFromSpec(const std::string &Spec);

  /// Arms the I/O injector: the \p TargetSite-th ioCheckpoint (1-based)
  /// of kind \p K after this call reports the fault. TargetSite 0
  /// counts without tripping. Resets the I/O site counter.
  static void armIo(IoFaultKind K, uint64_t TargetSite);

  /// Disarms both injectors and resets the counters. checkpoint() and
  /// ioCheckpoint() become no-ops.
  static void disarm();

  /// Number of checkpoints executed since the last arm().
  static uint64_t siteCount();

  /// Number of matching-kind ioCheckpoints executed since armIo().
  static uint64_t ioSiteCount();

  /// True when the arithmetic injector is armed (including count
  /// mode).
  static bool armed();

  /// True when the I/O injector is armed (including count mode).
  static bool ioArmed();

  /// True when either injector is armed. The determinism gates (serial
  /// graph build, batching rollback) key on this: any armed injector
  /// needs the stable serial execution order so site numbers mean the
  /// same thing on every run.
  static bool anyArmed() { return armed() || ioArmed(); }

  /// Reads PDT_FAULT_INJECT once per process and arms accordingly.
  /// Called lazily by the first checkpoint; exposed for tests.
  static void initFromEnvironment();

  /// One instrumented arithmetic site. Raises the armed failure when
  /// this is the target site.
  static void checkpoint();

  /// One instrumented I/O site of kind \p K. Returns true when the
  /// I/O injector is armed for \p K and this is the target site — the
  /// caller must then behave as if the operation failed. Sites of
  /// other kinds neither count nor trip.
  static bool ioCheckpoint(IoFaultKind K);
};

} // namespace pdt

#endif // PDT_SUPPORT_FAULTINJECTOR_H
