//===- fuzz/KernelGen.cpp - Stratified deterministic generator ------------===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//

#include "fuzz/KernelGen.h"

#include "driver/WorkloadGenerator.h"

#include <cassert>
#include <limits>
#include <random>

using namespace pdt;

uint64_t pdt::fuzzKernelSeed(uint64_t Seed, uint64_t Index) {
  // splitmix64 over the combined coordinates: decorrelates adjacent
  // indices so per-kernel streams are independent.
  uint64_t Z = Seed + 0x9e3779b97f4a7c15ULL * (Index + 1);
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

namespace {

int64_t drawInt(std::mt19937_64 &Rng, int64_t Lo, int64_t Hi) {
  return std::uniform_int_distribution<int64_t>(Lo, Hi)(Rng);
}

bool drawBool(std::mt19937_64 &Rng, double Prob) {
  return std::uniform_real_distribution<double>(0.0, 1.0)(Rng) < Prob;
}

int64_t drawNonZero(std::mt19937_64 &Rng, int64_t Range) {
  assert(Range >= 1 && "empty coefficient range");
  int64_t V = drawInt(Rng, 1, Range);
  return drawBool(Rng, 0.5) ? V : -V;
}

/// A random affine expression over the kernel's indices, possibly
/// mentioning the subscript symbol \p Sym (empty = none available).
LinearExpr drawAffine(std::mt19937_64 &Rng, const FuzzGenConfig &Config,
                      unsigned Depth, const std::string &Sym) {
  LinearExpr E(drawInt(Rng, -Config.ConstRange, Config.ConstRange));
  for (unsigned L = 0; L != Depth; ++L)
    if (drawBool(Rng, 0.5)) {
      int64_t Coeff = drawInt(Rng, -Config.CoeffRange, Config.CoeffRange);
      if (Coeff != 0)
        E = E + LinearExpr::index(workloadIndexName(L), Coeff);
    }
  if (!Sym.empty() && drawBool(Rng, 0.3))
    E = E + LinearExpr::symbol(Sym, drawBool(Rng, 0.8) ? 1 : -1);
  return E;
}

} // namespace

FuzzKernel pdt::generateFuzzKernel(uint64_t Seed, uint64_t Index,
                                   const FuzzGenConfig &Config) {
  std::mt19937_64 Rng(fuzzKernelSeed(Seed, Index));
  FuzzKernel K;
  K.Seed = Seed;
  K.Index = Index;
  K.Stratum = static_cast<FuzzStratum>(Index % NumFuzzStrata);

  const bool NeedsTwoLoops = K.Stratum == FuzzStratum::RDIV ||
                             K.Stratum == FuzzStratum::CoupledMIV;
  const unsigned MaxDepth = std::max(Config.MaxDepth, NeedsTwoLoops ? 2u : 1u);
  const unsigned Depth =
      static_cast<unsigned>(drawInt(Rng, NeedsTwoLoops ? 2 : 1, MaxDepth));
  const unsigned MinDims = K.Stratum == FuzzStratum::CoupledMIV ? 2u : 1u;
  const unsigned Dims = static_cast<unsigned>(
      drawInt(Rng, MinDims, std::max(Config.MaxDims, MinDims)));
  const unsigned Stmts =
      static_cast<unsigned>(drawInt(Rng, 1, std::max(Config.MaxStmts, 1u)));

  // Loop nest. Lower bounds are 1 except in the degenerate stratum,
  // which also produces single-trip (U == L) and zero-trip (U < L)
  // loops.
  for (unsigned L = 0; L != Depth; ++L) {
    FuzzLoop Loop;
    Loop.Index = workloadIndexName(L);
    if (K.Stratum == FuzzStratum::Degenerate) {
      Loop.Lower = drawInt(Rng, -2, 2);
      Loop.Upper = Loop.Lower + drawInt(Rng, -1, 2); // Includes U < L.
    } else {
      Loop.Lower = 1;
      Loop.Upper = drawInt(Rng, 1, Config.MaxBound);
    }
    K.Loops.push_back(std::move(Loop));
  }

  // Symbols: a symbolic upper bound on a random loop, and optionally a
  // second symbol usable inside subscripts.
  std::string SubscriptSym;
  if (K.Stratum == FuzzStratum::SymbolicBound) {
    unsigned L = static_cast<unsigned>(drawInt(Rng, 0, Depth - 1));
    K.Loops[L].UpperSymbol = "n";
    K.Loops[L].Upper = drawInt(Rng, 1, Config.MaxBound);
    K.SymbolValues["n"] = K.Loops[L].Upper;
    if (drawBool(Rng, 0.5)) {
      SubscriptSym = "m";
      K.SymbolValues["m"] = drawInt(Rng, 1, Config.ConstRange);
    } else if (drawBool(Rng, 0.5)) {
      SubscriptSym = "n"; // Reuse the bound symbol inside subscripts.
    }
  }

  auto DrawConst = [&] {
    return LinearExpr(drawInt(Rng, -Config.ConstRange, Config.ConstRange));
  };
  auto Idx = [](unsigned L, int64_t Coeff) {
    return LinearExpr::index(workloadIndexName(L), Coeff);
  };

  // The stratum's characteristic subscript-pair shape, installed in
  // dimension 0 of statement 0 (write side first).
  LinearExpr Dim0Src, Dim0Dst;
  switch (K.Stratum) {
  case FuzzStratum::ZIV:
    Dim0Src = DrawConst();
    Dim0Dst = DrawConst();
    break;
  case FuzzStratum::StrongSIV: {
    int64_t A = drawNonZero(Rng, Config.CoeffRange);
    Dim0Src = Idx(0, A) + DrawConst();
    Dim0Dst = Idx(0, A) + DrawConst();
    break;
  }
  case FuzzStratum::WeakZeroSIV: {
    int64_t A = drawNonZero(Rng, Config.CoeffRange);
    Dim0Src = Idx(0, A) + DrawConst();
    Dim0Dst = DrawConst();
    if (drawBool(Rng, 0.5))
      std::swap(Dim0Src, Dim0Dst);
    break;
  }
  case FuzzStratum::WeakCrossingSIV: {
    int64_t A = drawNonZero(Rng, Config.CoeffRange);
    Dim0Src = Idx(0, A) + DrawConst();
    Dim0Dst = Idx(0, -A) + DrawConst();
    break;
  }
  case FuzzStratum::ExactSIV: {
    int64_t A1 = drawNonZero(Rng, std::max<int64_t>(Config.CoeffRange, 2));
    int64_t A2 = drawNonZero(Rng, std::max<int64_t>(Config.CoeffRange, 2));
    while (A2 == A1 || A2 == -A1)
      A2 = drawNonZero(Rng, std::max<int64_t>(Config.CoeffRange, 2));
    Dim0Src = Idx(0, A1) + DrawConst();
    Dim0Dst = Idx(0, A2) + DrawConst();
    break;
  }
  case FuzzStratum::RDIV:
    Dim0Src = Idx(0, drawNonZero(Rng, Config.CoeffRange)) + DrawConst();
    Dim0Dst = Idx(1, drawNonZero(Rng, Config.CoeffRange)) + DrawConst();
    break;
  case FuzzStratum::CoupledMIV:
    // Dimension 1 (installed below) shares indices with dimension 0,
    // forming a coupled group.
    Dim0Src = Idx(0, drawNonZero(Rng, 2)) + Idx(1, drawNonZero(Rng, 2)) +
              DrawConst();
    Dim0Dst = Idx(0, drawNonZero(Rng, 2)) + DrawConst();
    break;
  case FuzzStratum::SymbolicBound:
    Dim0Src = drawAffine(Rng, Config, Depth, SubscriptSym);
    Dim0Dst = drawAffine(Rng, Config, Depth, SubscriptSym);
    break;
  case FuzzStratum::Degenerate:
    // Zero coefficients and constant-only sides are the point here.
    Dim0Src = drawBool(Rng, 0.5) ? DrawConst()
                                 : Idx(0, drawInt(Rng, 0, 1)) + DrawConst();
    Dim0Dst = drawBool(Rng, 0.5) ? DrawConst()
                                 : Idx(0, drawInt(Rng, 0, 1)) + DrawConst();
    break;
  case FuzzStratum::NearOverflow: {
    const int64_t Huge =
        std::numeric_limits<int64_t>::max() - drawInt(Rng, 0, 4);
    switch (drawInt(Rng, 0, 2)) {
    case 0: // Huge additive constant on one side.
      Dim0Src = Idx(0, 1) + LinearExpr(drawBool(Rng, 0.5) ? Huge : -Huge);
      Dim0Dst = Idx(0, 1) + DrawConst();
      break;
    case 1: // Huge coefficient.
      Dim0Src = Idx(0, Huge) + DrawConst();
      Dim0Dst = Idx(0, drawNonZero(Rng, Config.CoeffRange)) + DrawConst();
      break;
    default: // Huge on both sides: differences overflow.
      Dim0Src = Idx(0, 1) + LinearExpr(Huge);
      Dim0Dst = Idx(0, 1) + LinearExpr(-Huge);
      break;
    }
    break;
  }
  }

  for (unsigned S = 0; S != Stmts; ++S) {
    FuzzStmt Stmt;
    for (unsigned D = 0; D != Dims; ++D) {
      if (S == 0 && D == 0) {
        Stmt.Write.push_back(Dim0Src);
        Stmt.Read.push_back(Dim0Dst);
        continue;
      }
      if (S == 0 && D == 1 && K.Stratum == FuzzStratum::CoupledMIV) {
        Stmt.Write.push_back(Idx(1, drawNonZero(Rng, 2)) + DrawConst());
        Stmt.Read.push_back(Idx(0, drawNonZero(Rng, 2)) +
                            Idx(1, drawInt(Rng, -1, 1)) + DrawConst());
        continue;
      }
      Stmt.Write.push_back(drawAffine(Rng, Config, Depth, SubscriptSym));
      Stmt.Read.push_back(drawAffine(Rng, Config, Depth, SubscriptSym));
    }
    K.Stmts.push_back(std::move(Stmt));
  }

  // A sampled subscript symbol may end up mentioned nowhere when every
  // drawAffine coin declines it. Prune it so SymbolValues holds exactly
  // the symbols the structure uses — the invariant the shrinker keeps
  // and the repro-format round trip depends on.
  std::erase_if(K.SymbolValues, [&](const auto &Entry) {
    for (const FuzzLoop &L : K.Loops)
      if (L.UpperSymbol == Entry.first)
        return false;
    for (const FuzzStmt &S : K.Stmts)
      for (const std::vector<LinearExpr> *Side : {&S.Write, &S.Read})
        for (const LinearExpr &E : *Side)
          if (E.symbolCoeff(Entry.first) != 0)
            return false;
    return true;
  });
  return K;
}
