//===- fuzz/Differential.h - Three-decider cross-check ----------*- C++ -*-===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The differential heart of the fuzzer: every kernel runs through
/// three independently implemented deciders and every disagreement is
/// classified.
///
///   1. the fast partitioned suite (core/DependenceTester) — the
///      system under test;
///   2. the Fourier-Motzkin baseline (core/FourierMotzkin) — an
///      independent conservative decider;
///   3. ground truth — brute-force enumeration of the concretized
///      iteration space (core/Oracle), plus a sampled whole-pipeline
///      check that executes the kernel under the reference Interpreter
///      and requires every dynamic conflict to be covered by a
///      dependence-graph edge admitting the observed direction.
///
/// Classification policy: an "independent" (or a missing direction)
/// contradicted by ground truth is a soundness violation and fails the
/// campaign; a conservative "maybe" where ground truth sees no
/// dependence is an exactness loss and is only counted. Symbolic
/// kernels are judged against their sampled instantiation — a symbolic
/// independence claim must hold for every admissible symbol value, so
/// one concrete counterexample convicts.
///
//===----------------------------------------------------------------------===//

#ifndef PDT_FUZZ_DIFFERENTIAL_H
#define PDT_FUZZ_DIFFERENTIAL_H

#include "fuzz/FuzzKernel.h"

#include <cstdint>
#include <string>
#include <vector>

namespace pdt {

/// Every way the deciders can disagree. All kinds fail a kernel;
/// exactness losses are counters, not discrepancies.
enum class FuzzDiscrepancyKind {
  /// The fast suite said independent (or its vectors miss an observed
  /// direction) while brute-force enumeration found the dependence.
  SoundnessViolation,
  /// The Fourier-Motzkin baseline contradicted ground truth.
  BaselineSoundness,
  /// The fast suite claimed an exact dependence the baseline proved
  /// impossible (one of the two must be wrong; no ground truth
  /// needed).
  DeciderContradiction,
  /// The fast suite claimed an exact dependence on a fully constant
  /// kernel where enumeration found none.
  FalseExact,
  /// A dynamic conflict observed by the interpreter is not covered by
  /// any dependence-graph edge admitting its direction.
  DynamicUncovered,
  /// A decider produced a degraded result while FailOnDegraded was set
  /// (the fault-injection self-check).
  DegradedResult,
  /// The batched SoA fast path (core/PairBatch.h) and the scalar
  /// testers produced different graphs or TestStats on the same
  /// kernel; the two routings must be indistinguishable.
  BatchDivergence,
  /// A store-served graph (core/ResultStore.h) differed from the
  /// freshly computed one on the same kernel; cached and fresh answers
  /// must be indistinguishable.
  StoreDivergence,
  /// An exception escaped a decider; the never-crash contract broke.
  Abort,
};

/// Display name ("soundness-violation", ...).
const char *fuzzDiscrepancyKindName(FuzzDiscrepancyKind K);

/// One classified disagreement on one kernel.
struct FuzzDiscrepancy {
  FuzzDiscrepancyKind Kind = FuzzDiscrepancyKind::SoundnessViolation;
  /// The access pair (fuzz numbering); ~0u for kernel-level findings.
  unsigned SrcAccess = ~0u;
  unsigned SnkAccess = ~0u;
  std::string Detail;
};

/// Knobs of one differential evaluation.
struct FuzzCheckConfig {
  /// Run the Fourier-Motzkin baseline on every pair.
  bool RunFourierMotzkin = true;
  /// Run the whole-pipeline interpreter coverage check on kernels
  /// whose index is a multiple of InterpreterEvery.
  bool RunInterpreterCheck = true;
  unsigned InterpreterEvery = 4;
  /// Oracle enumeration budget (source x sink iteration pairs).
  uint64_t OracleMaxPairs = 1u << 21;
  /// Interpreter dynamic-access budget.
  uint64_t MaxDynamicAccesses = 100000;
  /// Treat degraded fast-suite results as discrepancies. Off in
  /// normal campaigns (degradation is legal); on under fault
  /// injection, where it proves injected faults surface and shrink.
  bool FailOnDegraded = false;
  /// On kernels that run the whole-pipeline check, also rebuild the
  /// dependence graph with batching forced on and forced off and
  /// require identical graphs and TestStats (skipped when batching is
  /// compiled out or fault injection is armed, which forces the
  /// scalar path anyway).
  bool RunBatchCrossCheck = true;
  /// On kernels that run the whole-pipeline check and while a
  /// persistent result store is active, rebuild the dependence graph
  /// twice through the store (populating, then hitting) and require
  /// graphs and TestStats byte-identical to the store-bypassed fresh
  /// build (skipped when the store is compiled out, inactive, or any
  /// fault injector is armed).
  bool RunStoreCrossCheck = true;
  /// Deliberately planted harness-validation bugs: the fuzzer must
  /// catch its own sabotage (used by the self-tests and the shrinker
  /// unit tests; never on in real campaigns).
  enum class Bug {
    None,
    ForceIndependent, ///< Report every pair as independent.
    DropLTDirection,  ///< Strip '<' from level 0 of every vector.
  };
  Bug DeliberateBug = Bug::None;
};

/// The outcome of checking one kernel against all deciders.
struct FuzzKernelVerdict {
  unsigned PairsChecked = 0;
  /// Pairs where ground truth saw no dependence but the fast suite
  /// kept a conservative edge.
  unsigned ExactnessLosses = 0;
  /// At least one pair had brute-force ground truth available.
  bool GroundTruth = false;
  /// The interpreter coverage check ran.
  bool DynamicChecked = false;
  /// The cached-vs-fresh store cross-check ran.
  bool StoreCrossChecked = false;
  std::vector<FuzzDiscrepancy> Discrepancies;

  bool failed() const { return !Discrepancies.empty(); }
};

/// Runs every decider over \p K and classifies all disagreements.
/// Never throws: an escaped exception becomes an Abort discrepancy.
FuzzKernelVerdict checkFuzzKernel(const FuzzKernel &K,
                                  const FuzzCheckConfig &Config = {});

} // namespace pdt

#endif // PDT_FUZZ_DIFFERENTIAL_H
