//===- core/SubscriptBySubscript.cpp - PFC-style baseline -----------------===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/SubscriptBySubscript.h"

#include "core/MIVTests.h"
#include "core/SIVTests.h"

using namespace pdt;

DependenceTestResult
pdt::subscriptBySubscriptTest(const std::vector<SubscriptPair> &Subscripts,
                              const LoopNestContext &Ctx, TestStats *Stats) {
  DependenceTestResult Result;
  if (Stats)
    Stats->noteApplication(TestKind::SubscriptBySubscript);

  unsigned Depth = Ctx.depth();
  std::vector<DependenceVector> Vectors{DependenceVector(Depth)};

  for (const SubscriptPair &S : Subscripts) {
    LinearExpr Eq = S.equation();
    // ZIV subscripts get the cheap equality check; everything else the
    // Banerjee-GCD treatment, one subscript at a time. (Internal test
    // counters stay out of the shared stats: the baseline competes as
    // a whole.)
    if (classifyEquation(Eq) == SubscriptClass::ZIV) {
      SIVResult R = testZIV(Eq, Ctx, nullptr);
      if (R.TheVerdict == Verdict::Independent) {
        Result.TheVerdict = Verdict::Independent;
        Result.DecidedBy = TestKind::SubscriptBySubscript;
        Result.Exact = true;
        if (Stats)
          Stats->noteIndependence(TestKind::SubscriptBySubscript);
        return Result;
      }
      continue;
    }
    MIVResult M = testMIV(Eq, Ctx, nullptr);
    if (M.TheVerdict == Verdict::Independent) {
      Result.TheVerdict = Verdict::Independent;
      Result.DecidedBy = TestKind::SubscriptBySubscript;
      Result.Exact = true;
      if (Stats)
        Stats->noteIndependence(TestKind::SubscriptBySubscript);
      return Result;
    }
    if (M.Vectors.empty())
      continue;
    // Intersect this subscript's direction vectors with the
    // accumulated set (the strategy's defining approximation).
    std::vector<DependenceVector> Out;
    for (const DependenceVector &V : Vectors) {
      for (const DependenceVector &F : M.Vectors) {
        DependenceVector Combined = V.intersectWith(F);
        if (!Combined.isEmpty())
          Out.push_back(std::move(Combined));
      }
    }
    Vectors = std::move(Out);
    if (Vectors.empty()) {
      // Per-subscript direction sets are themselves conservative, so
      // an empty intersection is a sound independence proof here.
      Result.TheVerdict = Verdict::Independent;
      Result.DecidedBy = TestKind::SubscriptBySubscript;
      Result.Exact = true;
      if (Stats)
        Stats->noteIndependence(TestKind::SubscriptBySubscript);
      return Result;
    }
  }

  Result.Vectors = std::move(Vectors);
  Result.TheVerdict = Verdict::Maybe;
  return Result;
}
