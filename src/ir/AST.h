//===- ir/AST.h - Loop-nest IR for dependence testing -----------*- C++ -*-===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract syntax tree for the Fortran-like input language. The
/// language is deliberately the fragment dependence testing consumes:
/// perfect or imperfect DO loop nests, assignments whose operands are
/// scalar variables and subscripted array references, and integer
/// arithmetic in subscripts and bounds. All nodes are owned by an
/// ASTContext arena and are immutable after construction.
///
//===----------------------------------------------------------------------===//

#ifndef PDT_IR_AST_H
#define PDT_IR_AST_H

#include "support/Casting.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace pdt {

class ASTContext;

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

/// Base class of all expressions. Carries an explicit kind
/// discriminator for LLVM-style isa/dyn_cast dispatch.
class Expr {
public:
  enum class Kind {
    IntLiteral,
    VarRef,
    Unary,
    Binary,
    ArrayElement,
  };

  Kind getKind() const { return TheKind; }

  Expr(const Expr &) = delete;
  Expr &operator=(const Expr &) = delete;

  virtual ~Expr() = default;

protected:
  explicit Expr(Kind K) : TheKind(K) {}

private:
  Kind TheKind;
};

/// An integer literal.
class IntLiteral : public Expr {
public:
  explicit IntLiteral(int64_t Value) : Expr(Kind::IntLiteral), Value(Value) {}

  int64_t getValue() const { return Value; }

  static bool classof(const Expr *E) {
    return E->getKind() == Kind::IntLiteral;
  }

private:
  int64_t Value;
};

/// A reference to a named scalar variable. Whether the name denotes a
/// loop index or a loop-invariant symbolic constant is decided by the
/// enclosing loop structure at analysis time, not in the AST.
class VarRef : public Expr {
public:
  explicit VarRef(std::string Name) : Expr(Kind::VarRef), Name(std::move(Name)) {}

  const std::string &getName() const { return Name; }

  static bool classof(const Expr *E) { return E->getKind() == Kind::VarRef; }

private:
  std::string Name;
};

/// A unary operation (only negation in this language).
class UnaryExpr : public Expr {
public:
  enum class Opcode { Neg };

  UnaryExpr(Opcode Op, const Expr *Operand)
      : Expr(Kind::Unary), Op(Op), Operand(Operand) {
    assert(Operand && "unary expr with null operand");
  }

  Opcode getOpcode() const { return Op; }
  const Expr *getOperand() const { return Operand; }

  static bool classof(const Expr *E) { return E->getKind() == Kind::Unary; }

private:
  Opcode Op;
  const Expr *Operand;
};

/// A binary arithmetic operation.
class BinaryExpr : public Expr {
public:
  enum class Opcode { Add, Sub, Mul, Div };

  BinaryExpr(Opcode Op, const Expr *LHS, const Expr *RHS)
      : Expr(Kind::Binary), Op(Op), LHS(LHS), RHS(RHS) {
    assert(LHS && RHS && "binary expr with null operand");
  }

  Opcode getOpcode() const { return Op; }
  const Expr *getLHS() const { return LHS; }
  const Expr *getRHS() const { return RHS; }

  static bool classof(const Expr *E) { return E->getKind() == Kind::Binary; }

private:
  Opcode Op;
  const Expr *LHS;
  const Expr *RHS;
};

/// A subscripted array reference, e.g. A(i+1, 2*j). Appears both as an
/// operand inside expressions (a read) and as the target of an
/// assignment (a write).
class ArrayElement : public Expr {
public:
  ArrayElement(std::string ArrayName, std::vector<const Expr *> Subscripts)
      : Expr(Kind::ArrayElement), ArrayName(std::move(ArrayName)),
        Subscripts(std::move(Subscripts)) {
    assert(!this->Subscripts.empty() && "array reference with no subscripts");
  }

  const std::string &getArrayName() const { return ArrayName; }
  unsigned getNumDims() const { return Subscripts.size(); }
  const Expr *getSubscript(unsigned Dim) const {
    assert(Dim < Subscripts.size() && "subscript index out of range");
    return Subscripts[Dim];
  }
  const std::vector<const Expr *> &getSubscripts() const { return Subscripts; }

  static bool classof(const Expr *E) {
    return E->getKind() == Kind::ArrayElement;
  }

private:
  std::string ArrayName;
  std::vector<const Expr *> Subscripts;
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

/// Base class of all statements.
class Stmt {
public:
  enum class Kind {
    Assign,
    DoLoop,
  };

  Kind getKind() const { return TheKind; }

  Stmt(const Stmt &) = delete;
  Stmt &operator=(const Stmt &) = delete;

  virtual ~Stmt() = default;

protected:
  explicit Stmt(Kind K) : TheKind(K) {}

private:
  Kind TheKind;
};

/// An assignment whose target is either a subscripted array element or
/// a scalar variable (scalar assignments exist so induction-variable
/// substitution has something to substitute).
class AssignStmt : public Stmt {
public:
  /// Array-element target form.
  AssignStmt(const ArrayElement *Target, const Expr *Value)
      : Stmt(Kind::Assign), ArrayTarget(Target), ScalarTarget(), Value(Value) {
    assert(Target && Value && "assignment with null operand");
  }

  /// Scalar target form.
  AssignStmt(std::string ScalarName, const Expr *Value)
      : Stmt(Kind::Assign), ArrayTarget(nullptr),
        ScalarTarget(std::move(ScalarName)), Value(Value) {
    assert(Value && "assignment with null value");
  }

  bool isArrayAssign() const { return ArrayTarget != nullptr; }
  const ArrayElement *getArrayTarget() const { return ArrayTarget; }
  const std::string &getScalarTarget() const {
    assert(!isArrayAssign() && "not a scalar assignment");
    return ScalarTarget;
  }
  const Expr *getValue() const { return Value; }

  static bool classof(const Stmt *S) { return S->getKind() == Kind::Assign; }

private:
  const ArrayElement *ArrayTarget; ///< Null for scalar assignments.
  std::string ScalarTarget;
  const Expr *Value;
};

/// A DO loop: `do Index = Lower, Upper [, Step]` with a statement list
/// body. Bounds and step are arbitrary expressions; the analyses
/// normalize and interpret them.
class DoLoop : public Stmt {
public:
  DoLoop(std::string IndexName, const Expr *Lower, const Expr *Upper,
         const Expr *Step, std::vector<const Stmt *> Body)
      : Stmt(Kind::DoLoop), IndexName(std::move(IndexName)), Lower(Lower),
        Upper(Upper), Step(Step), Body(std::move(Body)) {
    assert(Lower && Upper && Step && "loop with null bound");
  }

  const std::string &getIndexName() const { return IndexName; }
  const Expr *getLower() const { return Lower; }
  const Expr *getUpper() const { return Upper; }
  const Expr *getStep() const { return Step; }
  const std::vector<const Stmt *> &getBody() const { return Body; }

  static bool classof(const Stmt *S) { return S->getKind() == Kind::DoLoop; }

private:
  std::string IndexName;
  const Expr *Lower;
  const Expr *Upper;
  const Expr *Step;
  std::vector<const Stmt *> Body;
};

//===----------------------------------------------------------------------===//
// ASTContext and Program
//===----------------------------------------------------------------------===//

/// Arena that owns every AST node. Nodes are created through the
/// factory methods and live exactly as long as the context.
class ASTContext {
public:
  ASTContext() = default;
  ASTContext(const ASTContext &) = delete;
  ASTContext &operator=(const ASTContext &) = delete;

  const IntLiteral *getInt(int64_t Value);
  const VarRef *getVar(std::string Name);
  const UnaryExpr *getNeg(const Expr *Operand);
  const BinaryExpr *getBinary(BinaryExpr::Opcode Op, const Expr *LHS,
                              const Expr *RHS);
  const BinaryExpr *getAdd(const Expr *L, const Expr *R) {
    return getBinary(BinaryExpr::Opcode::Add, L, R);
  }
  const BinaryExpr *getSub(const Expr *L, const Expr *R) {
    return getBinary(BinaryExpr::Opcode::Sub, L, R);
  }
  const BinaryExpr *getMul(const Expr *L, const Expr *R) {
    return getBinary(BinaryExpr::Opcode::Mul, L, R);
  }
  const ArrayElement *getArrayElement(std::string Name,
                                      std::vector<const Expr *> Subscripts);

  const AssignStmt *createArrayAssign(const ArrayElement *Target,
                                      const Expr *Value);
  const AssignStmt *createScalarAssign(std::string Name, const Expr *Value);
  const DoLoop *createDoLoop(std::string Index, const Expr *Lower,
                             const Expr *Upper, const Expr *Step,
                             std::vector<const Stmt *> Body);

private:
  std::vector<std::unique_ptr<Expr>> Exprs;
  std::vector<std::unique_ptr<Stmt>> Stmts;

  template <typename T> const T *addExpr(std::unique_ptr<T> E) {
    const T *Raw = E.get();
    Exprs.push_back(std::unique_ptr<Expr>(E.release()));
    return Raw;
  }
  template <typename T> const T *addStmt(std::unique_ptr<T> S) {
    const T *Raw = S.get();
    Stmts.push_back(std::unique_ptr<Stmt>(S.release()));
    return Raw;
  }
};

/// Evaluates a constant integer expression (literals, unary minus,
/// arithmetic on constants; division truncates, as at run time).
/// Returns std::nullopt when the expression mentions a variable,
/// overflows, or divides by zero.
std::optional<int64_t> evaluateConstantExpr(const Expr *E);

/// A whole input program: a context plus the top-level statement list.
struct Program {
  Program() = default;
  Program(Program &&) = default;
  Program &operator=(Program &&) = default;

  std::unique_ptr<ASTContext> Context = std::make_unique<ASTContext>();
  std::vector<const Stmt *> TopLevel;
  std::string Name = "<program>";
};

} // namespace pdt

#endif // PDT_IR_AST_H
