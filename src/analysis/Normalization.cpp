//===- analysis/Normalization.cpp - Loop normalization --------------------===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Normalization.h"

#include "analysis/ASTRewriter.h"
#include "support/Casting.h"
#include "support/ErrorHandling.h"
#include "support/MathExtras.h"

using namespace pdt;

namespace {

class Normalizer {
public:
  explicit Normalizer(ASTContext &Ctx) : Ctx(Ctx) {}

  const Stmt *visit(const Stmt *S, const VarSubstitution &Subst) {
    switch (S->getKind()) {
    case Stmt::Kind::Assign:
      return cloneStmt(Ctx, S, Subst);
    case Stmt::Kind::DoLoop:
      return visitLoop(cast<DoLoop>(S), Subst);
    }
    pdt_unreachable("covered switch");
  }

private:
  ASTContext &Ctx;

  const Stmt *visitLoop(const DoLoop *L, const VarSubstitution &Subst) {
    const Expr *Lower = cloneExpr(Ctx, L->getLower(), Subst);
    const Expr *Upper = cloneExpr(Ctx, L->getUpper(), Subst);
    const Expr *Step = cloneExpr(Ctx, L->getStep(), Subst);
    const std::string &Index = L->getIndexName();

    VarSubstitution BodySubst = Subst;
    BodySubst.erase(Index);

    std::optional<int64_t> StepC = evaluateConstantExpr(Step);
    std::optional<int64_t> LowerC = evaluateConstantExpr(Lower);
    std::optional<int64_t> UpperC = evaluateConstantExpr(Upper);

    const Expr *NewLower = Lower;
    const Expr *NewUpper = Upper;
    const Expr *NewStep = Step;

    if (StepC == 1) {
      if (LowerC != 1) {
        // Shift: i in [L, U] becomes i in [1, U-L+1], body uses
        // i + (L-1). Fold when the bounds are constant.
        NewLower = Ctx.getInt(1);
        if (LowerC && UpperC)
          NewUpper = Ctx.getInt(*UpperC - *LowerC + 1);
        else
          NewUpper = Ctx.getAdd(Ctx.getSub(Upper, Lower), Ctx.getInt(1));
        const Expr *Shift = LowerC ? static_cast<const Expr *>(
                                         Ctx.getInt(*LowerC - 1))
                                   : Ctx.getSub(Lower, Ctx.getInt(1));
        BodySubst[Index] = Ctx.getAdd(Ctx.getVar(Index), Shift);
      }
    } else if (StepC && *StepC != 0 && LowerC && UpperC) {
      // Constant bounds: renumber iterations 1..Count; original value
      // is L + (i-1)*S.
      int64_t L0 = *LowerC;
      int64_t U0 = *UpperC;
      int64_t S0 = *StepC;
      int64_t Count = 0;
      if ((S0 > 0 && L0 <= U0) || (S0 < 0 && L0 >= U0))
        Count = floorDiv(U0 - L0 + S0, S0);
      NewLower = Ctx.getInt(1);
      NewUpper = Ctx.getInt(Count);
      NewStep = Ctx.getInt(1);
      BodySubst[Index] = Ctx.getAdd(
          Ctx.getInt(L0),
          Ctx.getMul(Ctx.getSub(Ctx.getVar(Index), Ctx.getInt(1)),
                     Ctx.getInt(S0)));
    }
    // Anything else (symbolic non-unit step, non-constant step) is
    // left as-is; the analyzer treats such loops conservatively.

    // Fold fully constant bounds to literals so downstream analyses
    // see them as affine (e.g. the (n+1)/2 bound of a split loop once
    // n is known).
    if (std::optional<int64_t> V = evaluateConstantExpr(NewLower))
      NewLower = Ctx.getInt(*V);
    if (std::optional<int64_t> V = evaluateConstantExpr(NewUpper))
      NewUpper = Ctx.getInt(*V);

    std::vector<const Stmt *> Body;
    Body.reserve(L->getBody().size());
    for (const Stmt *Child : L->getBody())
      Body.push_back(visit(Child, BodySubst));
    return Ctx.createDoLoop(Index, NewLower, NewUpper, NewStep,
                            std::move(Body));
  }
};

} // namespace

Program pdt::normalizeLoops(const Program &P) {
  Program Result;
  Result.Name = P.Name;
  Normalizer N(*Result.Context);
  for (const Stmt *S : P.TopLevel)
    Result.TopLevel.push_back(N.visit(S, VarSubstitution()));
  return Result;
}
