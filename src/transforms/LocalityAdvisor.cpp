//===- transforms/LocalityAdvisor.cpp - Loop order for locality -----------===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//

#include "transforms/LocalityAdvisor.h"

#include "ir/LinearExpr.h"
#include "transforms/Interchange.h"
#include "support/Casting.h"

#include <algorithm>

using namespace pdt;

namespace {

/// The maximal perfect nest rooted at \p Root: Root, then each
/// singleton loop child, and so on.
std::vector<const DoLoop *> perfectNest(const DoLoop *Root) {
  std::vector<const DoLoop *> Nest{Root};
  const DoLoop *L = Root;
  while (L->getBody().size() == 1) {
    const auto *Inner = dyn_cast<DoLoop>(L->getBody().front());
    if (!Inner)
      break;
    Nest.push_back(Inner);
    L = Inner;
  }
  return Nest;
}

/// Scores one reference against one loop index.
void scoreReference(const ArrayElement *Ref,
                    const std::set<std::string> &IndexNames,
                    const std::string &Index, LoopLocalityScore &Score) {
  // Fortran is column-major: the first subscript is the
  // fastest-varying in memory. Consecutive touches need stride 1 in
  // the leading dimension and stride 0 everywhere else; any stride in
  // a trailing dimension jumps by at least a whole column.
  bool Invariant = true;
  bool FirstDim = true;
  bool LeadingUnit = false;
  bool TrailingStrided = false;
  for (const Expr *Sub : Ref->getSubscripts()) {
    std::optional<LinearExpr> L = buildLinearExpr(Sub, IndexNames);
    int64_t Stride = L ? L->indexCoeff(Index) : 1; // Unknown: punish.
    if (!L)
      Invariant = false;
    if (Stride != 0)
      Invariant = false;
    if (FirstDim) {
      LeadingUnit = L.has_value() && Stride == 1;
      FirstDim = false;
    } else if (Stride != 0 || !L) {
      TrailingStrided = true;
    }
  }
  if (Invariant) {
    ++Score.TemporalHits;
    return;
  }
  if (LeadingUnit && !TrailingStrided)
    ++Score.SpatialHits;
  else
    ++Score.StridedMisses;
}

} // namespace

std::vector<LocalityAdvice> pdt::adviseLocality(const DependenceGraph &G) {
  std::vector<LocalityAdvice> Result;

  // Outermost loops of the program.
  std::vector<const DoLoop *> All = G.allLoops();
  std::set<const DoLoop *> Inner;
  for (const DoLoop *L : All)
    for (const Stmt *Child : L->getBody())
      if (const auto *CL = dyn_cast<DoLoop>(Child))
        Inner.insert(CL);

  for (const DoLoop *Root : All) {
    if (Inner.count(Root))
      continue;
    LocalityAdvice Advice;
    Advice.Nest = perfectNest(Root);
    if (Advice.Nest.size() < 2)
      continue; // Nothing to reorder.

    std::set<std::string> IndexNames;
    for (const DoLoop *L : Advice.Nest)
      IndexNames.insert(L->getIndexName());

    // Collect the references of the innermost body.
    std::vector<const ArrayElement *> Refs;
    for (const ArrayAccess &A : G.accesses()) {
      if (A.LoopStack.size() >= Advice.Nest.size() &&
          !A.LoopStack.empty() && A.LoopStack.front() == Root)
        Refs.push_back(A.Ref);
    }

    for (const DoLoop *L : Advice.Nest) {
      LoopLocalityScore Score;
      Score.Loop = L;
      for (const ArrayElement *Ref : Refs)
        scoreReference(Ref, IndexNames, L->getIndexName(), Score);
      Advice.Scores.push_back(Score);
    }

    // Pick the best legal innermost loop: try candidates in descending
    // score; moving candidate C innermost is legal iff interchanging C
    // past every loop below it is legal (pairwise adjacent checks
    // compose for a simple sink-to-innermost rotation).
    std::vector<unsigned> Order(Advice.Nest.size());
    for (unsigned I = 0; I != Order.size(); ++I)
      Order[I] = I;
    std::stable_sort(Order.begin(), Order.end(), [&](unsigned A, unsigned B) {
      return Advice.Scores[A].score() > Advice.Scores[B].score();
    });

    const DoLoop *CurrentInner = Advice.Nest.back();
    for (unsigned Candidate : Order) {
      const DoLoop *L = Advice.Nest[Candidate];
      if (L == CurrentInner) {
        Advice.RecommendedInner = L;
        break;
      }
      bool Legal = true;
      for (unsigned Below = Candidate + 1;
           Below != Advice.Nest.size() && Legal; ++Below)
        Legal = isInterchangeLegal(G, L, Advice.Nest[Below]);
      if (Legal) {
        Advice.RecommendedInner = L;
        Advice.InterchangeSuggested = true;
        break;
      }
      Advice.BlockedByDependence = true;
    }
    if (!Advice.RecommendedInner)
      Advice.RecommendedInner = CurrentInner;
    Result.push_back(std::move(Advice));
  }
  return Result;
}

std::string pdt::localityReport(const std::vector<LocalityAdvice> &Advice) {
  std::string Out;
  for (const LocalityAdvice &A : Advice) {
    Out += "nest";
    for (const DoLoop *L : A.Nest) {
      Out += " ";
      Out += L->getIndexName();
    }
    Out += ":\n";
    for (const LoopLocalityScore &S : A.Scores) {
      Out += "  loop " + S.Loop->getIndexName() + ": spatial " +
             std::to_string(S.SpatialHits) + ", temporal " +
             std::to_string(S.TemporalHits) + ", strided " +
             std::to_string(S.StridedMisses) + " (score " +
             std::to_string(S.score()) + ")\n";
    }
    Out += "  recommended innermost: " +
           A.RecommendedInner->getIndexName();
    if (A.InterchangeSuggested)
      Out += "  (interchange suggested)";
    else if (A.BlockedByDependence)
      Out += "  (better order blocked by a dependence)";
    Out += "\n";
  }
  return Out;
}
