//===- bench/BenchMeta.h - Uniform bench JSON metadata ----------*- C++ -*-===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//
//
// Every BENCH_*.json carries the same "meta" header so results from
// different machines, build types, and sanitizer configurations are
// never compared apples-to-oranges: build type, sanitizer flags,
// whether observability instrumentation is compiled in, the effective
// thread count, and a wall-clock timestamp.
//
//===----------------------------------------------------------------------===//

#ifndef PDT_BENCH_BENCHMETA_H
#define PDT_BENCH_BENCHMETA_H

#include "support/BuildInfo.h"
#include "support/Env.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

#include <ctime>
#include <filesystem>
#include <optional>
#include <string>

// Injected by bench/CMakeLists.txt; the fallbacks keep the header
// usable from ad-hoc builds.
#ifndef PDT_BENCH_BUILD_TYPE
#define PDT_BENCH_BUILD_TYPE "unknown"
#endif
#ifndef PDT_BENCH_SANITIZE
#define PDT_BENCH_SANITIZE 0
#endif

namespace pdt {

/// The uniform "meta" member (no trailing comma or newline); emit as
/// the first member of every bench JSON object:
///   Json << "{\n" << benchMetaJson("x3_graph_throughput") << ",\n" ...
inline std::string benchMetaJson(const char *BenchName) {
  char Time[32] = "unknown";
  std::time_t Now = std::time(nullptr);
  if (std::tm *UTC = std::gmtime(&Now))
    std::strftime(Time, sizeof(Time), "%Y-%m-%dT%H:%M:%SZ", UTC);

  std::string Out;
  Out += "  \"meta\": {\n";
  Out += std::string("    \"bench\": \"") + BenchName + "\",\n";
  Out += "    \"build_type\": \"" PDT_BENCH_BUILD_TYPE "\",\n";
  Out += std::string("    \"sanitizers\": ") +
         (PDT_BENCH_SANITIZE ? "\"address,undefined\"" : "\"none\"") + ",\n";
  Out += std::string("    \"tracing_compiled_in\": ") +
         (Trace::compiledIn() ? "true" : "false") + ",\n";
  Out += "    \"build\": " + buildInfoJson() + ",\n";
  Out += "    \"threads\": " +
         std::to_string(ThreadPool::defaultThreadCount()) + ",\n";
  Out += std::string("    \"timestamp\": \"") + Time + "\"\n";
  Out += "  }";
  return Out;
}

/// Where a bench JSON artifact lands: inside PDT_BENCH_DIR (created
/// on demand) when set, the current directory otherwise. Every bench
/// routes its BENCH_*.json through this so one environment variable
/// collects a whole run's artifacts — ctest working directories,
/// CI output folders, the committed ledger directory.
inline std::string benchOutputPath(const char *FileName) {
  std::optional<std::string> Dir = envPath("PDT_BENCH_DIR");
  if (!Dir)
    return FileName;
  std::error_code EC;
  std::filesystem::create_directories(*Dir, EC);
  // On failure fall through: the ofstream open reports the real error.
  return *Dir + "/" + FileName;
}

} // namespace pdt

#endif // PDT_BENCH_BENCHMETA_H
