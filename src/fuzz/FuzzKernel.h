//===- fuzz/FuzzKernel.h - Differential-fuzzer kernel model -----*- C++ -*-===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The structured kernel representation the differential soundness
/// fuzzer generates, checks, shrinks, and replays. A FuzzKernel is a
/// perfect DO-loop nest over one array with one write and one read per
/// statement, each subscript in canonical affine form. Keeping the
/// kernel structured (instead of source text) makes the three lowering
/// paths trivial and exactly comparable:
///
///   - symbolic  : SubscriptPair vectors + a LoopNestContext with
///                 symbol ranges, fed to the fast partitioned suite and
///                 the Fourier-Motzkin baseline;
///   - concrete  : the same pairs with symbols substituted by their
///                 sampled values, fed to the brute-force Oracle;
///   - program   : an AST Program, fed to the whole analyzer pipeline
///                 and the reference Interpreter for dynamic coverage.
///
/// The source rendering is a valid input-language program (parse /
/// analyze / replay it with any driver) carrying the generator
/// coordinates in `! pdt-fuzz` comment lines, so a repro file is
/// self-contained.
///
//===----------------------------------------------------------------------===//

#ifndef PDT_FUZZ_FUZZKERNEL_H
#define PDT_FUZZ_FUZZKERNEL_H

#include "analysis/LoopNest.h"
#include "core/Subscript.h"
#include "ir/AST.h"

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace pdt {

/// The generator strata, one per subscript class of the paper's
/// taxonomy plus the hostile-input classes. Round-robin assignment
/// guarantees every stratum is exercised in any campaign of at least
/// NumFuzzStrata kernels.
enum class FuzzStratum : unsigned {
  ZIV,             ///< Both sides loop-invariant (section 3.2.1).
  StrongSIV,       ///< a*i + c1 vs a*i + c2 (section 3.2.2).
  WeakZeroSIV,     ///< a*i + c1 vs c2 (section 3.2.3).
  WeakCrossingSIV, ///< a*i + c1 vs -a*i + c2 (section 3.2.4).
  ExactSIV,        ///< a1*i + c1 vs a2*i + c2, a1 != +-a2 (section 3.2.5).
  RDIV,            ///< a1*i + c1 vs a2*j + c2 across loops (section 3.2.6).
  CoupledMIV,      ///< Multi-index subscripts sharing indices across dims.
  SymbolicBound,   ///< Symbolic loop bounds / additive constants.
  Degenerate,      ///< Zero-trip and single-trip loops, zero coefficients.
  NearOverflow,    ///< Coefficients and constants near the int64 edge.
};
constexpr unsigned NumFuzzStrata = 10;

/// Display name ("ziv", "strong-siv", ...).
const char *fuzzStratumName(FuzzStratum S);

/// Parses a fuzzStratumName back; nullopt for unknown names.
std::optional<FuzzStratum> fuzzStratumFromName(const std::string &Name);

/// One loop of the nest, outermost first. Bounds are integer constants
/// except that the upper bound may be a symbolic constant whose
/// sampled concrete value lives in FuzzKernel::SymbolValues.
struct FuzzLoop {
  std::string Index;
  int64_t Lower = 1;
  int64_t Upper = 4;
  /// When non-empty, the upper bound is this symbol; Upper then holds
  /// the sampled concrete value (mirroring SymbolValues) so kernels
  /// round-trip structurally through the repro format.
  std::string UpperSymbol;

  bool operator==(const FuzzLoop &RHS) const = default;
};

/// One statement `a(Write...) = a(Read...) + 1`. Every statement of a
/// kernel uses the same array and the same rank.
struct FuzzStmt {
  std::vector<LinearExpr> Write;
  std::vector<LinearExpr> Read;

  bool operator==(const FuzzStmt &RHS) const = default;
};

/// A generated kernel plus its generator coordinates.
struct FuzzKernel {
  uint64_t Seed = 0;   ///< Campaign seed.
  uint64_t Index = 0;  ///< Kernel index within the campaign.
  FuzzStratum Stratum = FuzzStratum::ZIV;
  std::vector<FuzzLoop> Loops;
  std::vector<FuzzStmt> Stmts;
  /// Sampled concrete values for every symbol mentioned by a bound or
  /// a subscript; all values are >= 1 so the standard symbol-range
  /// assumption [1, inf) holds for the sampled instantiation.
  std::map<std::string, int64_t> SymbolValues;

  /// Array rank (every statement agrees by construction).
  unsigned rank() const { return Stmts.empty() ? 0 : Stmts[0].Write.size(); }

  bool operator==(const FuzzKernel &RHS) const = default;
};

/// One ordered access pair of a kernel. Access numbering is textual:
/// statement S contributes access 2*S (its write) and 2*S + 1 (its
/// read).
struct FuzzPair {
  unsigned SrcAccess = 0;
  unsigned SnkAccess = 0;
  std::vector<SubscriptPair> Subscripts;
};

/// Enumerates every ordered pair with at least one write (write-write
/// pairs include the self pair of a single access, whose all-'='
/// ground-truth tuple is the same dynamic instance and is skipped by
/// the checker).
std::vector<FuzzPair> enumerateFuzzPairs(const FuzzKernel &K);

/// The context the static deciders see: symbolic bounds stay symbolic
/// under the standard [1, inf) assumption.
LoopNestContext symbolicFuzzContext(const FuzzKernel &K);

/// Substitutes every symbol term by its sampled value with checked
/// arithmetic; nullopt on int64 overflow.
std::optional<LinearExpr>
concretizeFuzzExpr(const LinearExpr &E,
                   const std::map<std::string, int64_t> &SymbolValues);

/// The fully concrete form the Oracle enumerates: bounds and subscript
/// pairs with symbols substituted by their sampled values. Nullopt
/// when substitution overflows.
struct ConcreteFuzzPair {
  std::vector<SubscriptPair> Subscripts;
  LoopNestContext Ctx;
};
std::optional<ConcreteFuzzPair> concretizeFuzzPair(const FuzzKernel &K,
                                                   const FuzzPair &Pair);

/// Builds the kernel as an input-language Program (a perfect nest with
/// every statement in the innermost body).
Program fuzzKernelToProgram(const FuzzKernel &K);

/// Renders the kernel as replayable source: `! pdt-fuzz` metadata
/// comments followed by the pretty-printed program. The output parses
/// with the ordinary front end (comments are skipped) and round-trips
/// through parseFuzzKernelSource.
std::string fuzzKernelToSource(const FuzzKernel &K);

/// Reconstructs a kernel from fuzzKernelToSource output (or any
/// program of the same restricted shape). Nullopt when the source does
/// not parse or does not fit the fuzzer's kernel shape.
std::optional<FuzzKernel> parseFuzzKernelSource(const std::string &Source);

} // namespace pdt

#endif // PDT_FUZZ_FUZZKERNEL_H
