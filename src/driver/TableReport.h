//===- driver/TableReport.h - Paper table regeneration ----------*- C++ -*-===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the rows of the paper's evaluation tables from the
/// corpus: Table 1 (program characteristics and subscript complexity),
/// Table 2 (number of applications of each test), Table 3
/// (independence proofs per test, plus the Delta vs
/// subscript-by-subscript comparison on coupled subscripts). The bench
/// binaries print these.
///
//===----------------------------------------------------------------------===//

#ifndef PDT_DRIVER_TABLEREPORT_H
#define PDT_DRIVER_TABLEREPORT_H

#include "core/TestStats.h"

#include <cstdint>
#include <string>
#include <vector>

namespace pdt {

/// Aggregated analysis results for one suite of the corpus.
struct SuiteReport {
  std::string Suite;
  unsigned Kernels = 0;
  /// Kernels skipped because they failed to parse (reported, never
  /// fatal: one bad kernel must not take down the whole corpus run).
  unsigned ParseFailures = 0;
  /// Names of the kernels that failed to parse.
  std::vector<std::string> FailedKernels;
  unsigned Lines = 0; ///< Non-blank, non-comment source lines.
  unsigned Loops = 0;
  TestStats Stats;
  /// Baseline comparison over the same reference pairs.
  uint64_t PairsIndependentPractical = 0;
  uint64_t PairsIndependentBaseline = 0; ///< Subscript-by-subscript.
  uint64_t PairsIndependentFM = 0;       ///< Fourier-Motzkin.
  uint64_t CoupledPairs = 0;             ///< Pairs with a coupled group.
  uint64_t CoupledIndependentPractical = 0;
  uint64_t CoupledIndependentBaseline = 0;
};

/// Analyzes every kernel of every suite (paper suites only; the
/// "paper" example suite is included when \p IncludePaperSuite).
std::vector<SuiteReport> analyzeCorpusSuites(bool IncludePaperSuite = false);

/// Table 1: program characteristics — kernels, lines, loops, reference
/// pairs, dimension histogram, separable/coupled/nonlinear subscripts.
std::string formatTable1(const std::vector<SuiteReport> &Reports);

/// Table 2: applications of each dependence test per suite.
std::string formatTable2(const std::vector<SuiteReport> &Reports);

/// Table 3: independence proofs per test per suite, and the practical
/// suite vs baselines on all pairs and on coupled pairs.
std::string formatTable3(const std::vector<SuiteReport> &Reports);

} // namespace pdt

#endif // PDT_DRIVER_TABLEREPORT_H
