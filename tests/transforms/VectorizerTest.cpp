//===- tests/transforms/VectorizerTest.cpp -------------------------------------===//
//
// Unit tests for the Allen-Kennedy layered vectorization planner.
//
//===----------------------------------------------------------------------===//

#include "transforms/Vectorizer.h"

#include "driver/Analyzer.h"

#include <gtest/gtest.h>

using namespace pdt;

namespace {

std::vector<VectorizationPlan> plansFor(const char *Source) {
  AnalysisResult R = analyzeSource(Source, "t");
  EXPECT_TRUE(R.Parsed);
  // NOTE: the plans reference statements owned by R.Prog; tests only
  // inspect them while R is alive.
  static AnalysisResult Keep; // Keep the last program alive per call.
  Keep = std::move(R);
  return planVectorization(Keep.Graph);
}

} // namespace

TEST(Vectorizer, SimpleLoopFullyVectorizes) {
  std::vector<VectorizationPlan> Plans = plansFor(R"(
do i = 1, 100
  a(i) = b(i) + c(i)
end do
)");
  ASSERT_EQ(Plans.size(), 1u);
  EXPECT_EQ(Plans[0].FullyVectorized, 1u);
  EXPECT_EQ(Plans[0].Sequentialized, 0u);
  ASSERT_EQ(Plans[0].Pieces.size(), 1u);
  EXPECT_EQ(Plans[0].Pieces[0].TheKind,
            VectorPlanNode::Kind::VectorStatement);
}

TEST(Vectorizer, RecurrenceSequentializes) {
  std::vector<VectorizationPlan> Plans = plansFor(R"(
do i = 2, 100
  a(i) = a(i-1) + 1
end do
)");
  ASSERT_EQ(Plans.size(), 1u);
  EXPECT_EQ(Plans[0].FullyVectorized, 0u);
  EXPECT_EQ(Plans[0].Sequentialized, 1u);
  ASSERT_EQ(Plans[0].Pieces.size(), 1u);
  EXPECT_EQ(Plans[0].Pieces[0].TheKind, VectorPlanNode::Kind::SerialLoop);
  EXPECT_EQ(Plans[0].Pieces[0].LoopIndex, "i");
}

TEST(Vectorizer, DistributionSplitsLoop) {
  // S1 feeds S2 across iterations, but neither is self-cyclic: the
  // loop distributes into two vector statements in dependence order.
  std::vector<VectorizationPlan> Plans = plansFor(R"(
do i = 2, 100
  a(i) = b(i) + 1
  c(i) = a(i-1) + a(i)
end do
)");
  ASSERT_EQ(Plans.size(), 1u);
  EXPECT_EQ(Plans[0].FullyVectorized, 2u);
  ASSERT_EQ(Plans[0].Pieces.size(), 2u);
  // Topological order: the a-defining statement first.
  EXPECT_TRUE(Plans[0].Pieces[0].Statement->getArrayTarget()
                  ->getArrayName() == "a");
  EXPECT_TRUE(Plans[0].Pieces[1].Statement->getArrayTarget()
                  ->getArrayName() == "c");
}

TEST(Vectorizer, TwoStatementCycleSerializes) {
  // a depends on d of the previous iteration and vice versa: a genuine
  // two-statement recurrence.
  std::vector<VectorizationPlan> Plans = plansFor(R"(
do i = 2, 100
  a(i) = d(i-1) + 1
  d(i) = a(i-1) + a(i)
end do
)");
  ASSERT_EQ(Plans.size(), 1u);
  EXPECT_EQ(Plans[0].FullyVectorized, 0u);
  EXPECT_EQ(Plans[0].Sequentialized, 2u);
  ASSERT_EQ(Plans[0].Pieces.size(), 1u);
  EXPECT_EQ(Plans[0].Pieces[0].Children.size(), 2u);
}

TEST(Vectorizer, OuterSerialInnerVector) {
  // Recurrence on i only: serial i loop, vector j statement (the
  // layered result PFC produced).
  std::vector<VectorizationPlan> Plans = plansFor(R"(
do i = 2, 100
  do j = 1, 100
    a(i, j) = a(i-1, j) + 1
  end do
end do
)");
  ASSERT_EQ(Plans.size(), 1u);
  ASSERT_EQ(Plans[0].Pieces.size(), 1u);
  const VectorPlanNode &Outer = Plans[0].Pieces[0];
  EXPECT_EQ(Outer.TheKind, VectorPlanNode::Kind::SerialLoop);
  EXPECT_EQ(Outer.LoopIndex, "i");
  ASSERT_EQ(Outer.Children.size(), 1u);
  EXPECT_EQ(Outer.Children[0].TheKind,
            VectorPlanNode::Kind::VectorStatement);
  EXPECT_EQ(Outer.Children[0].Level, 1u);
  EXPECT_EQ(Plans[0].Sequentialized, 0u);
}

TEST(Vectorizer, ScalarReductionStaysSerial) {
  std::vector<VectorizationPlan> Plans = plansFor(R"(
do i = 1, 100
  s = s + x(i)
end do
)");
  ASSERT_EQ(Plans.size(), 1u);
  EXPECT_EQ(Plans[0].FullyVectorized, 0u);
  EXPECT_EQ(Plans[0].Sequentialized, 1u);
}

TEST(Vectorizer, PlanRendering) {
  std::vector<VectorizationPlan> Plans = plansFor(R"(
do i = 2, 100
  a(i) = a(i-1) + b(i)
  c(i) = b(i) + 1
end do
)");
  ASSERT_EQ(Plans.size(), 1u);
  std::string S = planToString(Plans[0]);
  EXPECT_NE(S.find("serial loop i"), std::string::npos) << S;
  EXPECT_NE(S.find("vectorize"), std::string::npos) << S;
}

TEST(Vectorizer, ReadModifyWriteVectorizes) {
  // dy(i) = dy(i) + da*dx(i): the same-instance read-before-write is
  // not a recurrence; vector semantics fetch before storing.
  std::vector<VectorizationPlan> Plans = plansFor(R"(
do i = 1, 100
  dy(i) = dy(i) + da*dx(i)
end do
)");
  ASSERT_EQ(Plans.size(), 1u);
  EXPECT_EQ(Plans[0].FullyVectorized, 1u);
  EXPECT_EQ(Plans[0].Sequentialized, 0u);
}

TEST(Vectorizer, MultipleNests) {
  std::vector<VectorizationPlan> Plans = plansFor(R"(
do i = 1, 100
  a(i) = b(i)
end do
do j = 2, 100
  c(j) = c(j-1)
end do
)");
  ASSERT_EQ(Plans.size(), 2u);
  EXPECT_EQ(Plans[0].FullyVectorized, 1u);
  EXPECT_EQ(Plans[1].Sequentialized, 1u);
}
