//===- tests/support/FailureTest.cpp ------------------------------------------===//
//
// The failure taxonomy, Expected<T>, the deterministic fault injector,
// and the thread pool's exception containment contract.
//
//===----------------------------------------------------------------------===//

#include "support/Failure.h"

#include "support/FaultInjector.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

using namespace pdt;

namespace {

/// Every robustness test must leave the process-global injector
/// disarmed, or later tests would trip on leftover state.
struct InjectorGuard {
  ~InjectorGuard() { FaultInjector::disarm(); }
};

TEST(Failure, KindNamesAreStableAndDistinct) {
  EXPECT_STREQ(failureKindName(FailureKind::Overflow), "overflow");
  EXPECT_STREQ(failureKindName(FailureKind::BudgetExhausted),
               "budget-exhausted");
  EXPECT_STREQ(failureKindName(FailureKind::SymbolicUnknown),
               "symbolic-unknown");
  EXPECT_STREQ(failureKindName(FailureKind::InternalInvariant),
               "internal-invariant");
  EXPECT_STREQ(failureKindName(FailureKind::MalformedInput),
               "malformed-input");
}

TEST(Failure, StrRendersKindAndMessage) {
  AnalysisFailure F{FailureKind::Overflow, "coefficient overflow"};
  EXPECT_EQ(F.str(), "overflow: coefficient overflow");
}

TEST(Failure, RaiseFailureThrowsAnalysisError) {
  try {
    raiseFailure(FailureKind::BudgetExhausted, "out of steps");
    FAIL() << "raiseFailure returned";
  } catch (const AnalysisError &E) {
    EXPECT_EQ(E.kind(), FailureKind::BudgetExhausted);
    EXPECT_EQ(E.failure().Message, "out of steps");
    EXPECT_STREQ(E.what(), "budget-exhausted: out of steps");
  }
}

TEST(Failure, PdtCheckRaisesOnFalseOnly) {
  EXPECT_NO_THROW(pdt_check(1 + 1 == 2, "arithmetic works"));
  EXPECT_THROW(pdt_check(false, "impossible"), AnalysisError);
}

TEST(Failure, FailureFromExceptionFoldsAnyException) {
  AnalysisFailure A = failureFromException(std::make_exception_ptr(
      AnalysisError(AnalysisFailure{FailureKind::Overflow, "x"})));
  EXPECT_EQ(A.Kind, FailureKind::Overflow);
  EXPECT_EQ(A.Message, "x");

  AnalysisFailure B = failureFromException(
      std::make_exception_ptr(std::runtime_error("boom")));
  EXPECT_EQ(B.Kind, FailureKind::InternalInvariant);
  EXPECT_EQ(B.Message, "boom");
}

TEST(Failure, ExpectedHoldsValueOrFailure) {
  Expected<int> Good(42);
  ASSERT_TRUE(Good.hasValue());
  EXPECT_EQ(*Good, 42);
  EXPECT_EQ(Good.valueOr(7), 42);

  Expected<int> Bad =
      Expected<int>::failure(FailureKind::SymbolicUnknown, "unknown n");
  EXPECT_FALSE(Bad);
  EXPECT_EQ(Bad.error().Kind, FailureKind::SymbolicUnknown);
  EXPECT_EQ(Bad.valueOr(7), 7);
}

TEST(FaultInjector, CountModeCountsWithoutTripping) {
  InjectorGuard G;
  FaultInjector::arm(FailureKind::Overflow, /*TargetSite=*/0);
  EXPECT_TRUE(FaultInjector::armed());
  for (int I = 0; I != 5; ++I)
    EXPECT_NO_THROW(FaultInjector::checkpoint());
  EXPECT_EQ(FaultInjector::siteCount(), 5u);
}

TEST(FaultInjector, TripsExactlyAtTheTargetSite) {
  InjectorGuard G;
  FaultInjector::arm(FailureKind::BudgetExhausted, /*TargetSite=*/3);
  EXPECT_NO_THROW(FaultInjector::checkpoint()); // site 1
  EXPECT_NO_THROW(FaultInjector::checkpoint()); // site 2
  try {
    FaultInjector::checkpoint(); // site 3: boom
    FAIL() << "target site did not trip";
  } catch (const AnalysisError &E) {
    EXPECT_EQ(E.kind(), FailureKind::BudgetExhausted);
  }
  // Sites beyond the target do not trip again.
  EXPECT_NO_THROW(FaultInjector::checkpoint());
}

TEST(FaultInjector, DisarmMakesCheckpointFree) {
  InjectorGuard G;
  FaultInjector::arm(FailureKind::Overflow, 1);
  FaultInjector::disarm();
  EXPECT_FALSE(FaultInjector::armed());
  EXPECT_NO_THROW(FaultInjector::checkpoint());
}

TEST(FaultInjector, SpecParsing) {
  InjectorGuard G;
  EXPECT_TRUE(FaultInjector::armFromSpec("overflow@17"));
  EXPECT_TRUE(FaultInjector::armed());
  FaultInjector::disarm();
  EXPECT_TRUE(FaultInjector::armFromSpec("budget@1"));
  EXPECT_TRUE(FaultInjector::armFromSpec("symbolic@2"));
  EXPECT_TRUE(FaultInjector::armFromSpec("internal@3"));
  EXPECT_TRUE(FaultInjector::armFromSpec("malformed@4"));
  FaultInjector::disarm();

  EXPECT_FALSE(FaultInjector::armFromSpec(""));
  EXPECT_FALSE(FaultInjector::armFromSpec("overflow"));
  EXPECT_FALSE(FaultInjector::armFromSpec("overflow@"));
  EXPECT_FALSE(FaultInjector::armFromSpec("overflow@x"));
  EXPECT_FALSE(FaultInjector::armFromSpec("nosuchkind@1"));
  EXPECT_FALSE(FaultInjector::armed());
}

TEST(ThreadPoolContainment, ExceptionRethrownOnCallerAfterAllItemsRun) {
  for (unsigned Threads : {1u, 4u}) {
    ThreadPool Pool(Threads);
    constexpr size_t N = 1000;
    std::atomic<size_t> Ran{0};
    bool Caught = false;
    try {
      Pool.parallelFor(N, [&](size_t I, unsigned) {
        ++Ran;
        if (I == 137)
          throw AnalysisError(
              AnalysisFailure{FailureKind::InternalInvariant, "poisoned"});
      });
    } catch (const AnalysisError &E) {
      Caught = true;
      EXPECT_EQ(E.kind(), FailureKind::InternalInvariant);
    }
    EXPECT_TRUE(Caught) << Threads << " threads";
    // One poisoned item must not cancel its siblings.
    EXPECT_EQ(Ran.load(), N) << Threads << " threads";

    // The pool survives and stays usable.
    std::atomic<size_t> Sum{0};
    Pool.parallelFor(100, [&](size_t I, unsigned) { Sum += I; });
    EXPECT_EQ(Sum.load(), 4950u);
  }
}

TEST(ThreadPoolContainment, NonStdExceptionAlsoContained) {
  ThreadPool Pool(2);
  bool Caught = false;
  try {
    Pool.parallelFor(10, [&](size_t I, unsigned) {
      if (I == 5)
        throw 42; // Not derived from std::exception.
    });
  } catch (int V) {
    Caught = true;
    EXPECT_EQ(V, 42);
  }
  EXPECT_TRUE(Caught);
}

} // namespace
