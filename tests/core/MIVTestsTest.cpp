//===- tests/core/MIVTestsTest.cpp ------------------------------------------===//
//
// Unit tests for the GCD test and Banerjee's inequalities with
// direction-vector refinement (paper section 4.4).
//
//===----------------------------------------------------------------------===//

#include "core/MIVTests.h"

#include "../TestHelpers.h"
#include "core/Subscript.h"

#include <gtest/gtest.h>

using namespace pdt;
using namespace pdt::test;

namespace {

LinearExpr idx(const char *N, int64_t C = 1) {
  return LinearExpr::index(N, C);
}

LinearExpr eq(const LinearExpr &Src, const LinearExpr &Dst) {
  return SubscriptPair(Src, Dst).equation();
}

} // namespace

//===----------------------------------------------------------------------===//
// GCD
//===----------------------------------------------------------------------===//

TEST(GCDTest, PaperExample) {
  // 2i - 2j' = 5: gcd 2 does not divide 5 (the section 5 example after
  // propagation).
  LoopNestContext Ctx = doubleLoop("i", 1, 10, "j", 1, 10);
  MIVResult R = testGCD(
      eq(idx("i", 2) + idx("j", 2), idx("i", 2) + idx("j", 4) + LinearExpr(5)),
      Ctx);
  EXPECT_EQ(R.TheVerdict, Verdict::Independent);
}

TEST(GCDTest, DivisibleIsMaybe) {
  LoopNestContext Ctx = doubleLoop("i", 1, 10, "j", 1, 10);
  MIVResult R =
      testGCD(eq(idx("i", 2) + idx("j", 4), idx("j", 2) + LinearExpr(6)), Ctx);
  EXPECT_EQ(R.TheVerdict, Verdict::Maybe);
}

TEST(GCDTest, SymbolWithDivisibleCoefficientStillApplies) {
  // 2i - 2j' + 2n + 1 = 0: residue 1 mod 2 regardless of n.
  LoopNestContext Ctx = doubleLoop("i", 1, 10, "j", 1, 10);
  LinearExpr Eq = eq(idx("i", 2) + LinearExpr::symbol("n", 2),
                     idx("j", 2) - LinearExpr(1));
  MIVResult R = testGCD(Eq, Ctx);
  EXPECT_EQ(R.TheVerdict, Verdict::Independent);
}

TEST(GCDTest, SymbolWithIndivisibleCoefficientInconclusive) {
  // 2i - 2j' + n + 1 = 0: n can absorb any residue.
  LoopNestContext Ctx = doubleLoop("i", 1, 10, "j", 1, 10);
  LinearExpr Eq = eq(idx("i", 2) + LinearExpr::symbol("n"),
                     idx("j", 2) - LinearExpr(1));
  MIVResult R = testGCD(Eq, Ctx);
  EXPECT_EQ(R.TheVerdict, Verdict::Maybe);
}

//===----------------------------------------------------------------------===//
// Banerjee bounds
//===----------------------------------------------------------------------===//

TEST(BanerjeeBounds, UnconstrainedBox) {
  // i - j' over i, j in [1, 10]: [-9, 9] under (*, *).
  LoopNestContext Ctx = doubleLoop("i", 1, 10, "j", 1, 10);
  LinearExpr Eq = eq(idx("i"), idx("j"));
  Interval B = banerjeeBounds(Eq, Ctx, {DirAll, DirAll});
  EXPECT_EQ(B, Interval(-9, 9));
}

TEST(BanerjeeBounds, EqualDirectionCollapses) {
  // i - i' under '=': exactly 0.
  LoopNestContext Ctx = singleLoop("i", 1, 10);
  LinearExpr Eq = eq(idx("i"), idx("i"));
  Interval B = banerjeeBounds(Eq, Ctx, {DirEQ});
  EXPECT_EQ(B, Interval(0, 0));
}

TEST(BanerjeeBounds, LessDirectionTriangle) {
  // h = i - i' with i < i': h in [-9, -1] over [1, 10].
  LoopNestContext Ctx = singleLoop("i", 1, 10);
  LinearExpr Eq = eq(idx("i"), idx("i"));
  Interval B = banerjeeBounds(Eq, Ctx, {DirLT});
  EXPECT_EQ(B, Interval(-9, -1));
}

TEST(BanerjeeBounds, GreaterDirectionTriangle) {
  LoopNestContext Ctx = singleLoop("i", 1, 10);
  LinearExpr Eq = eq(idx("i"), idx("i"));
  Interval B = banerjeeBounds(Eq, Ctx, {DirGT});
  EXPECT_EQ(B, Interval(1, 9));
}

TEST(BanerjeeBounds, SingleIterationLoopForbidsStrictDirections) {
  LoopNestContext Ctx = singleLoop("i", 3, 3);
  LinearExpr Eq = eq(idx("i"), idx("i"));
  EXPECT_TRUE(banerjeeBounds(Eq, Ctx, {DirLT}).isEmpty());
  EXPECT_TRUE(banerjeeBounds(Eq, Ctx, {DirGT}).isEmpty());
  EXPECT_FALSE(banerjeeBounds(Eq, Ctx, {DirEQ}).isEmpty());
}

TEST(BanerjeeBounds, SymbolContribution) {
  LoopBounds B;
  B.Index = "i";
  B.Lower = LinearExpr(1);
  B.Upper = LinearExpr(10);
  SymbolRangeMap Symbols;
  Symbols["n"] = Interval(5, 7);
  LoopNestContext Ctx({B}, Symbols);
  // i - i' + n: under '=', [5, 7].
  LinearExpr Eq = eq(idx("i") + LinearExpr::symbol("n"), idx("i"));
  EXPECT_EQ(banerjeeBounds(Eq, Ctx, {DirEQ}), Interval(5, 7));
}

//===----------------------------------------------------------------------===//
// Banerjee direction hierarchy
//===----------------------------------------------------------------------===//

TEST(Banerjee, IndependenceByBounds) {
  // i + j' = 100 over [1,10]^2: max is 20 < 100... as an equation:
  // Src = i, Dst = -j + 100: i + j' - 100 = 0.
  LoopNestContext Ctx = doubleLoop("i", 1, 10, "j", 1, 10);
  MIVResult R = testBanerjee(
      eq(idx("i"), idx("j", -1) + LinearExpr(100)), Ctx);
  EXPECT_EQ(R.TheVerdict, Verdict::Independent);
}

TEST(Banerjee, DirectionRefinement) {
  // i - i' - 2j' + 2 = 0 over i in [1,10], j in [1,10]: feasible, but
  // i' = i + 2 - 2j' <= i: the '<' direction on i is impossible
  // (2 - 2j' <= 0), so only '=' (j'=1) and '>' survive.
  LoopNestContext Ctx = doubleLoop("i", 1, 10, "j", 1, 10);
  MIVResult R = testBanerjee(
      eq(idx("i") + LinearExpr(2), idx("i") + idx("j", 2)), Ctx);
  ASSERT_EQ(R.TheVerdict, Verdict::Maybe);
  ASSERT_FALSE(R.Vectors.empty());
  DirectionSet SeenAtI = DirNone;
  for (const DependenceVector &V : R.Vectors)
    SeenAtI |= V.Directions[0];
  EXPECT_FALSE(SeenAtI & DirLT);
  EXPECT_TRUE(SeenAtI & (DirEQ | DirGT));
}

TEST(Banerjee, UntouchedLevelsStayStar) {
  // Equation only involves j; the i level stays '*'.
  LoopNestContext Ctx = doubleLoop("i", 1, 10, "j", 1, 10);
  MIVResult R = testBanerjee(
      eq(idx("j") + idx("i") - idx("i"), idx("j", 2)), Ctx);
  // Note: i cancels entirely, leaving j - 2j' = 0 (still "MIV" to
  // Banerjee if called directly).
  ASSERT_EQ(R.TheVerdict, Verdict::Maybe);
  for (const DependenceVector &V : R.Vectors)
    EXPECT_EQ(V.Directions[0], DirAll);
}

TEST(Banerjee, TriangularNestUsesMaximalRanges) {
  // Triangular nest: do i = 1, 10 / do j = 1, i. The j range is
  // [1, 10] maximal. Equation j - j' - 15 = 0 is infeasible.
  Program P = parseOrDie(R"(
do i = 1, 10
  do j = 1, i
    a(j) = a(j) + 1
  end do
end do
)");
  LoopNestContext Ctx(firstLoopPath(P), SymbolRangeMap());
  MIVResult R = testBanerjee(
      eq(idx("j") + LinearExpr(15), idx("j")), Ctx);
  EXPECT_EQ(R.TheVerdict, Verdict::Independent);

  // j - j' - 5 = 0 is feasible in the maximal range.
  R = testBanerjee(eq(idx("j") + LinearExpr(5), idx("j")), Ctx);
  EXPECT_EQ(R.TheVerdict, Verdict::Maybe);
}

TEST(Banerjee, MIVStrategyGCDFirst) {
  // testMIV runs GCD before Banerjee: parity disproof wins even though
  // Banerjee bounds are feasible.
  LoopNestContext Ctx = doubleLoop("i", 1, 10, "j", 1, 10);
  MIVResult R = testMIV(
      eq(idx("i", 2) + idx("j", 2), idx("i", 2) + idx("j", 4) + LinearExpr(1)),
      Ctx);
  EXPECT_EQ(R.TheVerdict, Verdict::Independent);
  EXPECT_EQ(R.Test, TestKind::GCD);
}

TEST(Banerjee, StatsCounted) {
  TestStats Stats;
  LoopNestContext Ctx = doubleLoop("i", 1, 10, "j", 1, 10);
  testMIV(eq(idx("i") + idx("j"), idx("i")), Ctx, &Stats);
  EXPECT_EQ(Stats.applications(TestKind::GCD), 1u);
  EXPECT_EQ(Stats.applications(TestKind::Banerjee), 1u);
}
