//===- ir/LinearExpr.h - Canonical affine subscript form --------*- C++ -*-===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The canonical affine form every dependence test consumes:
///
///   a1*i1 + a2*i2 + ... + b1*N1 + b2*N2 + ... + c
///
/// where the i's are loop index variables, the N's are loop-invariant
/// symbolic constants (the paper's "symbolic additive constants"), and
/// all coefficients are integers. Subscript expressions that do not fit
/// this form (index*index, index*symbol, non-exact division) are
/// *nonlinear*; building a LinearExpr from them fails and the driver
/// classifies the subscript pair as untestable, exactly as PFC did.
///
//===----------------------------------------------------------------------===//

#ifndef PDT_IR_LINEAREXPR_H
#define PDT_IR_LINEAREXPR_H

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace pdt {

class Expr;

/// An affine expression over loop indices and symbolic constants.
/// Terms with zero coefficients are never stored, so structural
/// equality is semantic equality. Maps are ordered by name to keep
/// every downstream iteration deterministic.
class LinearExpr {
public:
  /// The zero expression.
  LinearExpr() = default;

  /// The constant expression \p C.
  explicit LinearExpr(int64_t C) : Constant(C) {}

  /// Builds c + sum(coeff * name) term by term.
  static LinearExpr constant(int64_t C) { return LinearExpr(C); }
  static LinearExpr index(const std::string &Name, int64_t Coeff = 1);
  static LinearExpr symbol(const std::string &Name, int64_t Coeff = 1);

  int64_t getConstant() const { return Constant; }

  /// Coefficient of loop index \p Name (0 if absent).
  int64_t indexCoeff(const std::string &Name) const;

  /// Coefficient of symbolic constant \p Name (0 if absent).
  int64_t symbolCoeff(const std::string &Name) const;

  const std::map<std::string, int64_t> &indexTerms() const {
    return IndexCoeffs;
  }
  const std::map<std::string, int64_t> &symbolTerms() const {
    return SymbolCoeffs;
  }

  /// Number of distinct loop indices appearing (with non-zero
  /// coefficient). This is the paper's ZIV/SIV/MIV discriminator when
  /// applied to the union of the two subscripts of a pair.
  unsigned numIndices() const { return IndexCoeffs.size(); }

  /// True iff no loop index appears (symbols are still allowed; the
  /// result is loop-invariant).
  bool isLoopInvariant() const { return IndexCoeffs.empty(); }

  /// True iff the expression is a literal integer constant (no indices
  /// and no symbols).
  bool isPureConstant() const {
    return IndexCoeffs.empty() && SymbolCoeffs.empty();
  }

  /// True iff the expression is identically zero.
  bool isZero() const { return isPureConstant() && Constant == 0; }

  /// The single index name when exactly one index appears.
  const std::string &singleIndex() const;

  /// All index names appearing in the expression.
  std::set<std::string> indexNames() const;

  /// Mentions of a particular index?
  bool usesIndex(const std::string &Name) const {
    return IndexCoeffs.count(Name) != 0;
  }

  LinearExpr operator+(const LinearExpr &RHS) const;
  LinearExpr operator-(const LinearExpr &RHS) const;
  LinearExpr operator-() const;

  /// Multiplication by an integer constant.
  LinearExpr scale(int64_t Factor) const;

  /// Exact division by an integer constant: succeeds only when every
  /// coefficient (and the constant) is divisible by \p Divisor.
  std::optional<LinearExpr> divideExactly(int64_t Divisor) const;

  /// Replaces index \p Name with the affine expression \p Replacement.
  /// This is how Delta-test constraint propagation rewrites i' as i+d
  /// inside coupled MIV subscripts.
  LinearExpr substituteIndex(const std::string &Name,
                             const LinearExpr &Replacement) const;

  /// Drops the index term for \p Name (used when a point constraint
  /// fixes an index to a constant: substitute then erase).
  LinearExpr withoutIndex(const std::string &Name) const;

  bool operator==(const LinearExpr &RHS) const {
    return Constant == RHS.Constant && IndexCoeffs == RHS.IndexCoeffs &&
           SymbolCoeffs == RHS.SymbolCoeffs;
  }
  bool operator!=(const LinearExpr &RHS) const { return !(*this == RHS); }

  /// Deterministic ordering (for use as a map key).
  bool operator<(const LinearExpr &RHS) const;

  /// Renders e.g. "2*i - j + N + 3".
  std::string str() const;

private:
  std::map<std::string, int64_t> IndexCoeffs;
  std::map<std::string, int64_t> SymbolCoeffs;
  int64_t Constant = 0;

  void addIndexTerm(const std::string &Name, int64_t Coeff);
  void addSymbolTerm(const std::string &Name, int64_t Coeff);
};

/// Converts AST expression \p E into affine form. Names in
/// \p IndexNames become index terms; any other variable becomes a
/// symbolic constant. Returns std::nullopt for nonlinear expressions.
std::optional<LinearExpr>
buildLinearExpr(const Expr *E, const std::set<std::string> &IndexNames);

class ASTContext;

/// Builds an AST expression computing \p E (indices and symbols both
/// become variable references). Inverse of buildLinearExpr up to
/// normalization.
const Expr *linearToExpr(ASTContext &Ctx, const LinearExpr &E);

} // namespace pdt

#endif // PDT_IR_LINEAREXPR_H
