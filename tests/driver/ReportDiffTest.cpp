//===- tests/driver/ReportDiffTest.cpp - Report diff and history tests ----===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//
//
// The regression-detection rules, key class by key class: stats keys
// gate on any change, counters on tolerated relative drift, scheduling
// splits never, wall-clock values only on opt-in increase. Plus the
// perf-history ledger: curation, JSONL round-trip, and the median+MAD
// spike scan.
//
//===----------------------------------------------------------------------===//

#include "driver/ReportDiff.h"

#include "support/Json.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

using namespace pdt;

namespace {

json::Value parsed(const std::string &Text) {
  std::string Error;
  std::optional<json::Value> V = json::parse(Text, &Error);
  EXPECT_TRUE(V) << Error << " in: " << Text;
  return V ? *V : json::Value();
}

/// A minimal but structurally faithful report.
std::string reportText(uint64_t Pairs, uint64_t MemoHits, uint64_t BuildNs) {
  return "{\"schema\": \"pdt-report-v1\","
         "\"meta\": {\"tool\": \"t\", \"threads\": 4},"
         "\"stats\": {\"reference_pairs\": " +
         std::to_string(Pairs) +
         "},"
         "\"metrics\": {\"counters\": {"
         "\"graph.pairs.tested\": " +
         std::to_string(Pairs) +
         ", \"lowering.memo.hits\": " + std::to_string(MemoHits) +
         ", \"graph.build_ns\": " + std::to_string(BuildNs) +
         "}},"
         "\"timing\": {\"wall_ns\": " +
         std::to_string(BuildNs + 1000) + "}}";
}

const DiffEntry *entryFor(const DiffResult &R, const std::string &Key) {
  for (const DiffEntry &E : R.Changed)
    if (E.Key == Key)
      return &E;
  return nullptr;
}

} // namespace

TEST(ReportDiff, ClassifyKey) {
  EXPECT_EQ(classifyKey("stats.reference_pairs"), KeyClass::Stat);
  EXPECT_EQ(classifyKey("stats.tests.StrongSIV.applications"),
            KeyClass::Stat);
  EXPECT_EQ(classifyKey("metrics.counters.pool.steals"), KeyClass::Sched);
  EXPECT_EQ(classifyKey("metrics.counters.lowering.memo.hits"),
            KeyClass::Sched);
  EXPECT_EQ(classifyKey("metrics.gauges.pool.workers"), KeyClass::Sched);
  EXPECT_EQ(classifyKey("metrics.derived.pairs_per_sec"), KeyClass::Sched);
  EXPECT_EQ(classifyKey("metrics.counters.budget.deadline_skips"),
            KeyClass::Sched);
  EXPECT_EQ(classifyKey("metrics.counters.graph.build_ns"), KeyClass::Time);
  EXPECT_EQ(classifyKey("metrics.histograms.latency.pair_test_ns.p95_ns"),
            KeyClass::Time);
  EXPECT_EQ(classifyKey("timing.wall_ns"), KeyClass::Time);
  EXPECT_EQ(classifyKey("profile.total_self_ns"), KeyClass::Time);
  EXPECT_EQ(classifyKey("metrics.counters.graph.pairs.tested"),
            KeyClass::Counter);
  EXPECT_EQ(classifyKey("metrics.counters.budget.pair_skips"),
            KeyClass::Counter);
}

TEST(ReportDiff, FlattenSkipsMetaStringsAndIndexesArrays) {
  json::Value V = parsed("{\"meta\": {\"threads\": 4, \"tool\": \"t\"},"
                         "\"stats\": {\"dimension_histogram\": [5, 3],"
                         "\"name\": \"ignored\", \"flag\": true}}");
  std::vector<FlatValue> Flat = flattenReport(V);
  ASSERT_EQ(Flat.size(), 3u);
  EXPECT_EQ(Flat[0].Key, "stats.dimension_histogram[0]");
  EXPECT_EQ(Flat[0].Value, 5.0);
  EXPECT_EQ(Flat[1].Key, "stats.dimension_histogram[1]");
  EXPECT_EQ(Flat[2].Key, "stats.flag");
  EXPECT_EQ(Flat[2].Value, 1.0);
}

TEST(ReportDiff, IdenticalReportsDiffEmpty) {
  json::Value A = parsed(reportText(100, 40, 5000000));
  DiffResult R = diffReports(A, A);
  EXPECT_TRUE(R.Changed.empty());
  EXPECT_EQ(R.Regressions, 0u);
}

TEST(ReportDiff, AnyStatChangeIsARegression) {
  json::Value A = parsed(reportText(100, 40, 5000000));
  json::Value B = parsed(reportText(101, 40, 5000000));
  DiffResult R = diffReports(A, B);
  const DiffEntry *E = entryFor(R, "stats.reference_pairs");
  ASSERT_TRUE(E);
  EXPECT_TRUE(E->Regression);
}

TEST(ReportDiff, CounterDriftWithinToleranceIsNotARegression) {
  // graph.pairs.tested moves by 2% (default tolerance 5%): changed,
  // but not a regression. It also changes stats.reference_pairs here,
  // so diff purely synthetic counter documents instead.
  json::Value A = parsed("{\"metrics\": {\"counters\": "
                         "{\"graph.pairs.tested\": 1000}}}");
  json::Value B = parsed("{\"metrics\": {\"counters\": "
                         "{\"graph.pairs.tested\": 1020}}}");
  DiffResult R = diffReports(A, B);
  const DiffEntry *E = entryFor(R, "metrics.counters.graph.pairs.tested");
  ASSERT_TRUE(E);
  EXPECT_FALSE(E->Regression);
}

TEST(ReportDiff, CounterDriftBeyondToleranceRegresses) {
  json::Value A = parsed("{\"metrics\": {\"counters\": "
                         "{\"graph.pairs.tested\": 1000}}}");
  json::Value B = parsed("{\"metrics\": {\"counters\": "
                         "{\"graph.pairs.tested\": 1100}}}");
  EXPECT_EQ(diffReports(A, B).Regressions, 1u);
  // Shrinking counters regress too: "fewer pairs tested" can mean the
  // analysis silently skipped work.
  EXPECT_EQ(diffReports(B, A).Regressions, 1u);
}

TEST(ReportDiff, AbsoluteFloorSuppressesTinyCounterDrift) {
  // 10 -> 20 is 100% relative drift but only 10 absolute (floor 16):
  // noise on a near-zero counter, not a regression.
  json::Value A = parsed("{\"metrics\": {\"counters\": "
                         "{\"graph.pairs.tested\": 10}}}");
  json::Value B = parsed("{\"metrics\": {\"counters\": "
                         "{\"graph.pairs.tested\": 20}}}");
  EXPECT_EQ(diffReports(A, B).Regressions, 0u);
}

TEST(ReportDiff, SchedulingSplitsNeverRegress) {
  json::Value A = parsed("{\"metrics\": {\"counters\": "
                         "{\"lowering.memo.hits\": 10, \"pool.steals\": 0}}}");
  json::Value B = parsed("{\"metrics\": {\"counters\": "
                         "{\"lowering.memo.hits\": 900000,"
                         " \"pool.steals\": 12345}}}");
  DiffResult R = diffReports(A, B);
  EXPECT_EQ(R.Changed.size(), 2u);
  EXPECT_EQ(R.Regressions, 0u);
}

TEST(ReportDiff, TimeIsExcludedByDefaultAndOptIn) {
  json::Value A = parsed(reportText(100, 40, 5000000));
  json::Value B = parsed(reportText(100, 40, 50000000)); // 10x slower
  EXPECT_EQ(diffReports(A, B).Regressions, 0u);
  DiffOptions WithTime;
  WithTime.IncludeTime = true;
  EXPECT_GE(diffReports(A, B, WithTime).Regressions, 1u);
  // Getting faster is never a regression, even opted in.
  EXPECT_EQ(diffReports(B, A, WithTime).Regressions, 0u);
}

TEST(ReportDiff, SmallTimeIncreasesStayInsideTheTolerance) {
  DiffOptions WithTime;
  WithTime.IncludeTime = true;
  // +20% on 5ms: inside the default 30% wall-clock tolerance.
  json::Value A = parsed(reportText(100, 40, 5000000));
  json::Value B = parsed(reportText(100, 40, 6000000));
  EXPECT_EQ(diffReports(A, B, WithTime).Regressions, 0u);
  // +50% but only 150us absolute: under the 250us floor.
  json::Value C = parsed(reportText(100, 40, 300000));
  json::Value D = parsed(reportText(100, 40, 450000));
  EXPECT_EQ(diffReports(C, D, WithTime).Regressions, 0u);
}

TEST(ReportDiff, OneSidedKeysRegressOnlyForDeterministicClasses) {
  json::Value A = parsed("{\"stats\": {\"reference_pairs\": 5},"
                         "\"metrics\": {\"counters\": {\"graph.edges\": 9}},"
                         "\"timing\": {\"wall_ns\": 1000}}");
  json::Value B = parsed("{\"stats\": {\"reference_pairs\": 5}}");
  DiffResult R = diffReports(A, B);
  const DiffEntry *Edges = entryFor(R, "metrics.counters.graph.edges");
  const DiffEntry *Wall = entryFor(R, "timing.wall_ns");
  ASSERT_TRUE(Edges && Wall);
  EXPECT_TRUE(Edges->Regression); // a counter vanished: regression
  EXPECT_FALSE(Wall->Regression); // a timing section vanished: fine
}

//===----------------------------------------------------------------------===//
// History
//===----------------------------------------------------------------------===//

TEST(ReportHistory, CurationKeepsSummariesAndDropsShape) {
  json::Value R = parsed(
      "{\"schema\": \"pdt-report-v1\","
      "\"meta\": {\"threads\": 4},"
      "\"stats\": {\"reference_pairs\": 9, \"independent_pairs\": 3,"
      " \"coupled_groups\": 2},"
      "\"metrics\": {\"counters\": {\"graph.pairs.tested\": 9,"
      " \"graph.edges\": 4, \"graph.build_ns\": 777,"
      " \"pool.steals\": 5},"
      "\"histograms\": {\"latency.pair_test_ns\": {\"p95_ns\": 12.5,"
      " \"log2_buckets\": [0, 3, 1]}}},"
      "\"profile\": {\"total_self_ns\": 700,"
      " \"stacks\": [{\"self_ns\": 1}]},"
      "\"timing\": {\"wall_ns\": 800}}");
  HistoryLine L = historyLineFromReport("b", "c", "t", R);
  auto Has = [&](const char *Key) {
    for (const FlatValue &F : L.Values)
      if (F.Key == Key)
        return true;
    return false;
  };
  EXPECT_TRUE(Has("stats.reference_pairs"));
  EXPECT_TRUE(Has("stats.independent_pairs"));
  EXPECT_TRUE(Has("metrics.counters.graph.pairs.tested"));
  EXPECT_TRUE(Has("metrics.counters.graph.edges"));
  EXPECT_TRUE(Has("metrics.counters.graph.build_ns"));
  EXPECT_TRUE(Has("metrics.histograms.latency.pair_test_ns.p95_ns"));
  EXPECT_TRUE(Has("profile.total_self_ns"));
  EXPECT_TRUE(Has("timing.wall_ns"));
  // Shape and scheduling noise stays out of the ledger.
  EXPECT_FALSE(Has("stats.coupled_groups"));
  EXPECT_FALSE(Has("metrics.counters.pool.steals"));
  EXPECT_FALSE(Has(
      "metrics.histograms.latency.pair_test_ns.log2_buckets[1]"));
  EXPECT_FALSE(Has("profile.stacks[0].self_ns"));
  EXPECT_FALSE(Has("meta.threads"));
}

TEST(ReportHistory, LineRoundTripsThroughJsonl) {
  HistoryLine L;
  L.Bench = "bench_x7_profile";
  L.Config = "RelWithDebInfo";
  L.Timestamp = "2026-08-05T00:00:00Z";
  L.Values = {{"metrics.counters.graph.build_ns", 11847247.0},
              {"timing.wall_ns", 12345678.5}};
  std::string Line = renderHistoryLine(L);
  EXPECT_EQ(Line.find('\n'), std::string::npos);
  std::string Error;
  std::optional<HistoryLine> Back = parseHistoryLine(Line, &Error);
  ASSERT_TRUE(Back) << Error;
  EXPECT_EQ(Back->Bench, L.Bench);
  EXPECT_EQ(Back->Config, L.Config);
  EXPECT_EQ(Back->Timestamp, L.Timestamp);
  ASSERT_EQ(Back->Values.size(), 2u);
  EXPECT_EQ(Back->Values[0].Key, "metrics.counters.graph.build_ns");
  EXPECT_EQ(Back->Values[0].Value, 11847247.0);
  EXPECT_EQ(Back->Values[1].Value, 12345678.5);
}

TEST(ReportHistory, AppendAndLoadTolerateMalformedLines) {
  const char *Path = "report_history_test.jsonl";
  std::remove(Path);
  HistoryLine L;
  L.Bench = "b";
  L.Config = "c";
  L.Timestamp = "t";
  L.Values = {{"timing.wall_ns", 100.0}};
  ASSERT_TRUE(appendHistoryLine(Path, L));
  {
    std::ofstream File(Path, std::ios::app);
    File << "this is not json\n";
    File << "{\"bench\": \"missing-the-rest\"}\n";
  }
  ASSERT_TRUE(appendHistoryLine(Path, L));
  HistoryLoad Load = loadHistory(Path);
  EXPECT_EQ(Load.Lines.size(), 2u);
  EXPECT_EQ(Load.Malformed, 2u);
  std::remove(Path);
}

namespace {

std::vector<HistoryLine> ledger(std::initializer_list<double> WallValues) {
  std::vector<HistoryLine> Lines;
  for (double V : WallValues) {
    HistoryLine L;
    L.Bench = "b";
    L.Config = "c";
    L.Timestamp = "t";
    L.Values = {{"metrics.counters.graph.pairs.tested", 1000.0},
                {"timing.wall_ns", V}};
    Lines.push_back(std::move(L));
  }
  return Lines;
}

} // namespace

TEST(ReportHistory, ScanNeedsFourComparableSamples) {
  HistoryScan Scan = scanHistory(ledger({1e6, 1e6, 9e9}), "b", "c");
  EXPECT_EQ(Scan.Considered, 3u);
  EXPECT_TRUE(Scan.Flags.empty());
}

TEST(ReportHistory, ScanFlagsASpikeAboveTheNoiseBand) {
  // Four stable priors around 1ms, then a 10x spike.
  HistoryScan Scan =
      scanHistory(ledger({1.00e6, 1.02e6, 0.99e6, 1.01e6, 1.0e7}), "b", "c");
  EXPECT_EQ(Scan.Considered, 5u);
  ASSERT_EQ(Scan.Flags.size(), 1u);
  EXPECT_EQ(Scan.Flags[0].Key, "timing.wall_ns");
  EXPECT_EQ(Scan.Flags[0].Latest, 1.0e7);
}

TEST(ReportHistory, ScanToleratesDriftInsideTheBand) {
  // +2% on a noisy series: inside NoiseK * max(MAD, 1% of median).
  HistoryScan Scan =
      scanHistory(ledger({1.00e6, 1.02e6, 0.98e6, 1.01e6, 1.02e6}), "b", "c");
  EXPECT_EQ(Scan.Considered, 5u);
  EXPECT_TRUE(Scan.Flags.empty());
}

TEST(ReportHistory, ScanIgnoresCounterKeysAndOtherBenches) {
  // The counter key is identical here; only wall time spikes, and a
  // non-matching bench/config must not be considered at all.
  std::vector<HistoryLine> Lines = ledger({1e6, 1e6, 1e6, 1e6, 1e6});
  HistoryScan Other = scanHistory(Lines, "different-bench", "c");
  EXPECT_EQ(Other.Considered, 0u);
  EXPECT_TRUE(Other.Flags.empty());
  HistoryScan Stable = scanHistory(Lines, "b", "c");
  EXPECT_EQ(Stable.Considered, 5u);
  EXPECT_TRUE(Stable.Flags.empty());
}
