//===- tests/transforms/LocalityAdvisorTest.cpp ----------------------------===//
//
// Unit tests for the dependence-driven locality advisor.
//
//===----------------------------------------------------------------------===//

#include "transforms/LocalityAdvisor.h"

#include "driver/Analyzer.h"

#include <gtest/gtest.h>

using namespace pdt;

namespace {

struct Analyzed {
  AnalysisResult R;
  std::vector<LocalityAdvice> Advice;
};

Analyzed advise(const char *Source) {
  Analyzed A;
  A.R = analyzeSource(Source, "t");
  EXPECT_TRUE(A.R.Parsed);
  A.Advice = adviseLocality(A.R.Graph);
  return A;
}

} // namespace

TEST(LocalityAdvisor, ColumnMajorPrefersFirstSubscriptLoop) {
  // a(j, i) walks memory consecutively in j (column-major): j should
  // be innermost; the current order has i innermost.
  Analyzed A = advise(R"(
do i = 1, 100
  do j = 1, 100
    a(j, i) = b(j, i) + 1
  end do
end do
)");
  ASSERT_EQ(A.Advice.size(), 1u);
  EXPECT_EQ(A.Advice[0].RecommendedInner->getIndexName(), "j");
  EXPECT_FALSE(A.Advice[0].InterchangeSuggested); // j is already inner.
}

TEST(LocalityAdvisor, SuggestsInterchangeForRowMajorWalk) {
  // a(i, j) with j innermost strides by the column: recommend i inner.
  Analyzed A = advise(R"(
do i = 1, 100
  do j = 1, 100
    a(i, j) = b(i, j) + 1
  end do
end do
)");
  ASSERT_EQ(A.Advice.size(), 1u);
  EXPECT_EQ(A.Advice[0].RecommendedInner->getIndexName(), "i");
  EXPECT_TRUE(A.Advice[0].InterchangeSuggested);
}

TEST(LocalityAdvisor, TemporalReuseCounts) {
  // x(j) is invariant in i: making i innermost keeps x(j) in a
  // register; but a(i, j)'s spatial locality also favors i. Verify
  // the temporal hit is scored.
  Analyzed A = advise(R"(
do i = 1, 100
  do j = 1, 100
    a(i, j) = x(j) + 1
  end do
end do
)");
  ASSERT_EQ(A.Advice.size(), 1u);
  const LoopLocalityScore &IScore = A.Advice[0].Scores[0];
  EXPECT_EQ(IScore.Loop->getIndexName(), "i");
  EXPECT_EQ(IScore.TemporalHits, 1u); // x(j) invariant in i.
  EXPECT_EQ(A.Advice[0].RecommendedInner->getIndexName(), "i");
}

TEST(LocalityAdvisor, DependenceBlocksInterchange) {
  // The skewed dependence (1, -1) forbids interchange; even though i
  // would be the better innermost loop for a(i, j), the advisor must
  // keep the legal order and report the block.
  Analyzed A = advise(R"(
do i = 2, 100
  do j = 1, 99
    a(i, j) = a(i-1, j+1) + 1
  end do
end do
)");
  ASSERT_EQ(A.Advice.size(), 1u);
  EXPECT_FALSE(A.Advice[0].InterchangeSuggested);
  EXPECT_TRUE(A.Advice[0].BlockedByDependence);
  EXPECT_EQ(A.Advice[0].RecommendedInner->getIndexName(), "j");
}

TEST(LocalityAdvisor, SingleLoopNestsSkipped) {
  Analyzed A = advise("do i = 1, 10\n  a(i) = 0\nend do\n");
  EXPECT_TRUE(A.Advice.empty());
}

TEST(LocalityAdvisor, ReportContainsScores) {
  Analyzed A = advise(R"(
do i = 1, 100
  do j = 1, 100
    a(i, j) = b(i, j)
  end do
end do
)");
  std::string Report = localityReport(A.Advice);
  EXPECT_NE(Report.find("nest i j"), std::string::npos) << Report;
  EXPECT_NE(Report.find("recommended innermost: i"), std::string::npos)
      << Report;
  EXPECT_NE(Report.find("interchange suggested"), std::string::npos)
      << Report;
}

TEST(LocalityAdvisor, ThreeDeepNest) {
  // Classic matmul c(i, j) += a(i, k) * b(k, j): i innermost gives
  // unit stride on c and a and invariance of b(k, j).
  Analyzed A = advise(R"(
do j = 1, 50
  do k = 1, 50
    do i = 1, 50
      c(i, j) = c(i, j) + a(i, k)*b(k, j)
    end do
  end do
end do
)");
  ASSERT_EQ(A.Advice.size(), 1u);
  EXPECT_EQ(A.Advice[0].RecommendedInner->getIndexName(), "i");
  EXPECT_FALSE(A.Advice[0].InterchangeSuggested); // Already innermost.
}
