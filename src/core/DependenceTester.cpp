//===- core/DependenceTester.cpp - Partition-based testing ----------------===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/DependenceTester.h"

#include "core/Explain.h"
#include "core/MIVTests.h"
#include "core/Partition.h"
#include "core/ResultStore.h"
#include "core/SIVTests.h"
#include "support/Casting.h"
#include "support/FaultInjector.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <map>

#include <cassert>

using namespace pdt;

namespace {

/// Intersects a vector set with another set (cross product, dropping
/// empty results).
void applyVectorSet(std::vector<DependenceVector> &Vectors,
                    const std::vector<DependenceVector> &Set) {
  std::vector<DependenceVector> Out;
  for (const DependenceVector &V : Vectors) {
    for (const DependenceVector &F : Set) {
      DependenceVector Combined = V.intersectWith(F);
      if (!Combined.isEmpty())
        Out.push_back(std::move(Combined));
    }
  }
  Vectors = std::move(Out);
}

/// Harvests peel/split hints from one SIV result.
void collectHints(const SIVResult &R, std::vector<TransformHint> &Hints) {
  if (R.PeelFirst)
    Hints.push_back({TransformHint::Kind::PeelFirst, R.Index, std::nullopt,
                     std::nullopt});
  if (R.PeelLast)
    Hints.push_back({TransformHint::Kind::PeelLast, R.Index, std::nullopt,
                     std::nullopt});
  if (R.CrossingPoint)
    Hints.push_back({TransformHint::Kind::Split, R.Index, R.CrossingPoint,
                     std::nullopt});
  if (R.SymbolicCrossingSum)
    Hints.push_back({TransformHint::Kind::Split, R.Index, std::nullopt,
                     R.SymbolicCrossingSum});
}

} // namespace

DependenceTestResult pdt::degradedTestResult(unsigned Depth,
                                             AnalysisFailure Failure,
                                             TestStats *Stats) {
  DependenceTestResult Result;
  Result.TheVerdict = Verdict::Maybe;
  Result.Exact = false;
  Result.Degraded = true;
  Result.Vectors.assign(1, DependenceVector(Depth));
  if (Stats)
    Stats->noteDegraded(Failure.Kind);
  Metrics::count(Metric::PairsDegraded);
  Metrics::countDegraded(static_cast<unsigned>(Failure.Kind));
  Result.Failure = std::move(Failure);
  return Result;
}

namespace {

/// Renders a Delta constraint map as "i: dist 1; j: point (3, 5)".
std::string constraintMapString(const std::map<std::string, Constraint> &M) {
  std::string Out;
  for (const auto &[Index, C] : M) {
    if (!Out.empty())
      Out += "; ";
    Out += Index;
    Out += ": ";
    Out += C.str();
  }
  return Out;
}

/// Renders the constraint values an SIV result derived:
/// "index i: direction <, distance 1, lattice dist 1".
std::string sivConstraintString(const SIVResult &R) {
  if (R.Index.empty())
    return std::string();
  std::string Out = "index " + R.Index + ": direction " +
                    directionSetString(R.Directions);
  if (R.Distance)
    Out += ", distance " + std::to_string(*R.Distance);
  if (!R.IndexConstraint.isAny())
    Out += ", lattice " + R.IndexConstraint.str();
  return Out;
}

/// The uncontained algorithm body; may raise AnalysisError.
DependenceTestResult
testDependenceImpl(const std::vector<SubscriptPair> &Subscripts,
                   const LoopNestContext &Ctx, TestStats *Stats,
                   PairExplanation *Ex) {
  DependenceTestResult Result;
  unsigned Depth = Ctx.depth();
  std::vector<DependenceVector> Vectors{DependenceVector(Depth)};
  bool AllExact = true;

  auto Independent = [&](TestKind By) {
    Result.TheVerdict = Verdict::Independent;
    Result.DecidedBy = By;
    Result.Exact = true;
    Result.Vectors.clear();
    if (Stats)
      Stats->noteIndependence(By);
    return Result;
  };

  // A loop that provably cannot iterate (empty computed index range,
  // e.g. constant bounds with Upper < Lower) executes no statement
  // instance: every pair in the nest is independent regardless of the
  // subscripts. Symbolic and non-affine bounds evaluate to non-empty
  // conservative ranges, so only certainly-empty nests short-circuit.
  for (const LoopBounds &L : Ctx.loops())
    if (Ctx.indexRange(L.Index).isEmpty())
      return Independent(TestKind::EmptyNest);

  // Step 1: partition into separable subscripts and minimal coupled
  // groups.
  std::vector<SubscriptPartition> Partitions = partitionSubscripts(Subscripts);
  if (Stats) {
    for (const SubscriptPartition &P : Partitions) {
      if (P.isSeparable())
        ++Stats->SeparableSubscripts;
      else
        Stats->CoupledSubscripts += P.Positions.size();
    }
    for (const SubscriptPair &S : Subscripts) {
      switch (S.classify()) {
      case SubscriptClass::ZIV:
        ++Stats->ZIVSubscripts;
        break;
      case SubscriptClass::SIV:
        ++Stats->SIVSubscripts;
        break;
      case SubscriptClass::MIV:
        ++Stats->MIVSubscripts;
        break;
      }
    }
  }

  // The explain recorder shadows the control flow below: each
  // partition contributes one ExplainStep, pushed just before any
  // early Independent return so the report shows which test ended the
  // algorithm.
  ExplainStep Step;
  auto BeginStep = [&](const SubscriptPartition &P) {
    if (!Ex)
      return;
    Step = ExplainStep();
    Step.Coupled = !P.isSeparable();
    for (unsigned Pos : P.Positions) {
      Step.Dims.push_back(Subscripts[Pos].Dim);
      Step.Subscripts.push_back(Subscripts[Pos].str());
    }
  };
  auto RecordSIV = [&](const SIVResult &R) {
    if (!Ex)
      return;
    Step.Applied = R.Test;
    Step.StepVerdict = R.TheVerdict;
    Step.Exact = R.Exact;
    Step.Constraints = sivConstraintString(R);
    Ex->Steps.push_back(Step);
  };
  auto RecordMIV = [&](const MIVResult &M) {
    if (!Ex)
      return;
    Step.Applied = M.Test;
    Step.StepVerdict = M.TheVerdict;
    Step.Exact = false;
    Ex->Steps.push_back(Step);
  };

  for (const SubscriptPartition &P : Partitions) {
    BeginStep(P);
    if (!P.isSeparable()) {
      // Step 4: Delta test on the coupled group.
      std::vector<SubscriptPair> Group;
      Group.reserve(P.Positions.size());
      for (unsigned Pos : P.Positions)
        Group.push_back(Subscripts[Pos]);
      Span DeltaSpan("DeltaTest::run", "delta", testKindTag(TestKind::Delta));
      LatencyTimer DeltaLatency(Histo::DeltaNs);
      std::string DeltaLog;
      DeltaResult D = runDeltaTest(Group, Ctx, Stats, Ex ? &DeltaLog : nullptr);
      if (Ex) {
        Step.Applied = D.DecidedBy;
        Step.StepVerdict = D.TheVerdict;
        Step.Exact = D.Exact;
        Step.Constraints = constraintMapString(D.Constraints);
        Step.Detail = "passes: " + std::to_string(D.Passes);
        if (D.ResidualMIV)
          Step.Detail += "; residual MIV handed to GCD/Banerjee fallback";
        if (!DeltaLog.empty())
          Step.Detail += "\n" + DeltaLog;
        Ex->Steps.push_back(Step);
      }
      if (D.TheVerdict == Verdict::Independent)
        return Independent(D.DecidedBy);
      if (!D.Exact)
        AllExact = false;
      applyVectorSet(Vectors, D.Vectors);
      continue;
    }

    // Steps 2-3: classify the separable subscript and apply the
    // matching single-subscript test.
    const SubscriptPair &S = Subscripts[P.Positions.front()];
    LinearExpr Eq = S.equation();
    SubscriptShape Shape = shapeOfEquation(Eq);
    if (Ex) {
      Step.Shape = Shape;
      Step.Detail = "dependence equation: " + Eq.str() + " = 0";
    }
    switch (Shape) {
    case SubscriptShape::ZIV: {
      SIVResult R = testZIV(Eq, Ctx, Stats);
      RecordSIV(R);
      if (R.TheVerdict == Verdict::Independent)
        return Independent(R.Test);
      if (!R.Exact)
        AllExact = false;
      break;
    }
    case SubscriptShape::StrongSIV:
    case SubscriptShape::WeakZeroSIV:
    case SubscriptShape::WeakCrossingSIV:
    case SubscriptShape::GeneralSIV: {
      SIVResult R = testSIV(Eq, Ctx, Stats);
      RecordSIV(R);
      if (R.TheVerdict == Verdict::Independent)
        return Independent(R.Test);
      if (!R.Exact)
        AllExact = false;
      collectHints(R, Result.Hints);
      if (std::optional<unsigned> Level = Ctx.levelOf(R.Index)) {
        DependenceVector Filter(Depth);
        Filter.Directions[*Level] = R.Directions;
        Filter.Distances[*Level] = R.Distance;
        applyVectorSet(Vectors, {Filter});
      }
      break;
    }
    case SubscriptShape::RDIV: {
      // Exact existence check first, then Banerjee for directions.
      SIVResult R = testRDIV(Eq, Ctx, Stats);
      if (R.TheVerdict == Verdict::Independent) {
        RecordSIV(R);
        return Independent(R.Test);
      }
      AllExact = false; // Directions below are conservative.
      MIVResult M = testBanerjee(Eq, Ctx, Stats);
      if (Ex) {
        Step.Detail += "; RDIV existence check " +
                       std::string(R.TheVerdict == Verdict::Dependent
                                       ? "proved a solution exists"
                                       : "could not decide") +
                       ", Banerjee directions are conservative";
        RecordMIV(M);
      }
      if (M.TheVerdict == Verdict::Independent)
        return Independent(M.Test);
      if (!M.Vectors.empty())
        applyVectorSet(Vectors, M.Vectors);
      break;
    }
    case SubscriptShape::GeneralMIV: {
      MIVResult M = testMIV(Eq, Ctx, Stats);
      RecordMIV(M);
      if (M.TheVerdict == Verdict::Independent)
        return Independent(M.Test);
      AllExact = false; // Banerjee directions are conservative.
      if (!M.Vectors.empty())
        applyVectorSet(Vectors, M.Vectors);
      break;
    }
    }
  }

  // Step 6: the surviving merged vectors. Partitions constrain
  // disjoint levels, so emptiness here would indicate a partition
  // returning an empty (non-independent) set, which cannot happen.
  pdt_check(!Vectors.empty(), "merge of non-empty partition results is empty");
  Result.Vectors = std::move(Vectors);
  Result.Exact = AllExact && !Result.HasNonlinear;
  Result.TheVerdict = Result.Exact ? Verdict::Dependent : Verdict::Maybe;
  return Result;
}

} // namespace

namespace {

/// The containment boundary proper: collapse any failure raised by the
/// tests into the conservative all-directions dependence. Degradation
/// only ever widens the answer (a failure can never prove
/// independence), so soundness is preserved by construction.
DependenceTestResult
containedTestDependence(const std::vector<SubscriptPair> &Subscripts,
                        const LoopNestContext &Ctx, TestStats *Stats,
                        PairExplanation *Explain) {
  try {
    return testDependenceImpl(Subscripts, Ctx, Stats, Explain);
  } catch (const AnalysisError &E) {
    return degradedTestResult(Ctx.depth(), E.failure(), Stats);
  } catch (const std::exception &E) {
    return degradedTestResult(
        Ctx.depth(),
        AnalysisFailure{FailureKind::InternalInvariant, E.what()}, Stats);
  }
}

} // namespace

DependenceTestResult
pdt::testDependence(const std::vector<SubscriptPair> &Subscripts,
                    const LoopNestContext &Ctx, TestStats *Stats,
                    PairExplanation *Explain) {
  Span TestSpan("testDependence", "tester");
  // The persistent store sits beside the in-process memo: probed only
  // when active, never under --explain (a hit would skip the recorded
  // steps) and never with the arithmetic fault injector armed (hits
  // would renumber the injection sites between runs). Store failures
  // of any kind surface as misses, so this path cannot widen, narrow,
  // or crash the analysis.
  std::shared_ptr<ResultStore> Store;
  if (!Explain && !FaultInjector::armed())
    Store = ResultStore::active();
  if (!Store)
    return containedTestDependence(Subscripts, Ctx, Stats, Explain);
  std::optional<CanonicalPair> Q = ResultStore::canonicalize(Subscripts, Ctx);
  if (!Q)
    return containedTestDependence(Subscripts, Ctx, Stats, Explain);
  if (std::optional<DependenceTestResult> Hit = Store->lookup(*Q, Stats))
    return std::move(*Hit);
  TestStats Delta;
  DependenceTestResult Result =
      containedTestDependence(Subscripts, Ctx, &Delta, nullptr);
  if (Stats)
    Stats->merge(Delta);
  if (!Result.Degraded)
    Store->insert(*Q, Result, Delta);
  return Result;
}

//===----------------------------------------------------------------------===//
// Access-pair front end
//===----------------------------------------------------------------------===//

namespace {

/// Converts one access's subscript expression to affine form over the
/// *common* nest: indices of loops enclosing only this access become
/// fresh symbols (suffix "#src"/"#snk") ranging over their loop, since
/// they may take any value independently on each side.
std::optional<LinearExpr>
affineOverCommonNest(const Expr *Subscript, const ArrayAccess &Access,
                     const LoopNestContext &CommonCtx, const char *Suffix,
                     SymbolRangeMap &ExtraRanges,
                     const std::set<std::string> *VaryingScalars) {
  std::set<std::string> OwnIndices;
  for (const DoLoop *L : Access.LoopStack)
    OwnIndices.insert(L->getIndexName());
  std::optional<LinearExpr> Linear = buildLinearExpr(Subscript, OwnIndices);
  if (!Linear)
    return std::nullopt;
  // A scalar assigned somewhere in the program is not a loop-invariant
  // symbol; the subscript is effectively nonlinear.
  if (VaryingScalars)
    for (const auto &[Name, Coeff] : Linear->symbolTerms())
      if (VaryingScalars->count(Name))
        return std::nullopt;

  // Ranges of the access's own loops (for the renamed symbols).
  LoopNestContext OwnCtx(Access.LoopStack, CommonCtx.symbolRanges());

  LinearExpr Result(Linear->getConstant());
  for (const auto &[Name, Coeff] : Linear->symbolTerms())
    Result = Result + LinearExpr::symbol(Name, Coeff);
  for (const auto &[Name, Coeff] : Linear->indexTerms()) {
    if (CommonCtx.isIndex(Name)) {
      Result = Result + LinearExpr::index(Name, Coeff);
      continue;
    }
    std::string Renamed = Name + Suffix;
    Result = Result + LinearExpr::symbol(Renamed, Coeff);
    ExtraRanges[Renamed] = OwnCtx.indexRange(Name);
  }
  return Result;
}

} // namespace

std::set<std::string> pdt::collectVaryingScalars(const Program &P) {
  // Scalars assigned inside a loop (an unrecognized induction
  // variable) or assigned more than once are not loop-invariant
  // symbols; a single top-level definition (m = n - 1 before a nest)
  // is effectively a symbolic constant and stays usable.
  std::set<std::string> VaryingScalars;
  std::map<std::string, unsigned> DefCounts;
  auto CollectDefs = [&](auto &&Self, const Stmt *S, bool InLoop) -> void {
    if (const auto *A = dyn_cast<AssignStmt>(S)) {
      if (!A->isArrayAssign()) {
        if (InLoop || ++DefCounts[A->getScalarTarget()] > 1)
          VaryingScalars.insert(A->getScalarTarget());
      }
      return;
    }
    for (const Stmt *Child : cast<DoLoop>(S)->getBody())
      Self(Self, Child, /*InLoop=*/true);
  };
  for (const Stmt *S : P.TopLevel)
    CollectDefs(CollectDefs, S, /*InLoop=*/false);
  return VaryingScalars;
}

std::optional<PreparedPair>
pdt::prepareAccessPair(const ArrayAccess &A, const ArrayAccess &B,
                       const SymbolRangeMap &Symbols,
                       const std::set<std::string> *VaryingScalars) {
  assert(A.Ref && B.Ref && "null access");
  assert(A.Ref->getArrayName() == B.Ref->getArrayName() &&
         "testing accesses to different arrays");
  if (A.Ref->getNumDims() != B.Ref->getNumDims())
    return std::nullopt;

  std::vector<const DoLoop *> Common = commonLoops(A, B);
  LoopNestContext PreCtx(Common, Symbols);

  SymbolRangeMap AllSymbols = Symbols;
  PreparedPair Prepared;
  for (unsigned Dim = 0; Dim != A.Ref->getNumDims(); ++Dim) {
    std::optional<LinearExpr> Src =
        affineOverCommonNest(A.Ref->getSubscript(Dim), A, PreCtx, "#src",
                             AllSymbols, VaryingScalars);
    std::optional<LinearExpr> Dst =
        affineOverCommonNest(B.Ref->getSubscript(Dim), B, PreCtx, "#snk",
                             AllSymbols, VaryingScalars);
    if (!Src || !Dst) {
      Prepared.HasNonlinear = true;
      continue; // Contributes no information.
    }
    Prepared.Subscripts.emplace_back(std::move(*Src), std::move(*Dst), Dim);
  }
  for (const SubscriptPartition &P : partitionSubscripts(Prepared.Subscripts))
    if (!P.isSeparable())
      Prepared.HasCoupledGroup = true;

  // Rebuild the context including ranges for the renamed symbols.
  Prepared.Ctx = LoopNestContext(Common, AllSymbols);
  return Prepared;
}

DependenceTestResult
pdt::testPreparedAccessPair(const ArrayAccess &A, const ArrayAccess &B,
                            const std::optional<PreparedPair> &Prepared,
                            TestStats *Stats) {
  if (Stats) {
    ++Stats->ReferencePairs;
    unsigned Dims = std::min(A.Ref->getNumDims(), B.Ref->getNumDims());
    ++Stats->DimensionHistogram[std::min(Dims - 1, 3u)];
  }

  // Mismatched dimensionality (legal Fortran through equivalence-style
  // tricks): treat conservatively.
  if (!Prepared) {
    DependenceTestResult R;
    std::vector<const DoLoop *> Common = commonLoops(A, B);
    R.Vectors.assign(1, DependenceVector(Common.size()));
    return R;
  }
  if (Stats && Prepared->HasNonlinear)
    Stats->NonlinearSubscripts +=
        A.Ref->getNumDims() - Prepared->Subscripts.size();

  DependenceTestResult Result =
      testDependence(Prepared->Subscripts, Prepared->Ctx, Stats);
  Result.HasNonlinear = Prepared->HasNonlinear;
  if (Prepared->HasNonlinear && Result.TheVerdict == Verdict::Dependent)
    Result.TheVerdict = Verdict::Maybe;
  if (Prepared->HasNonlinear)
    Result.Exact = false;
  if (Stats && Result.isIndependent())
    ++Stats->IndependentPairs;
  return Result;
}

DependenceTestResult
pdt::testAccessPair(const ArrayAccess &A, const ArrayAccess &B,
                    const SymbolRangeMap &Symbols, TestStats *Stats,
                    const std::set<std::string> *VaryingScalars) {
  // Containment boundary for the lowering half: an overflow while
  // building the affine forms degrades the pair, mirroring what
  // testDependence does for failures inside the tests.
  std::optional<PreparedPair> Prepared;
  try {
    Prepared = prepareAccessPair(A, B, Symbols, VaryingScalars);
  } catch (const AnalysisError &E) {
    if (Stats) {
      ++Stats->ReferencePairs;
      unsigned Dims = std::min(A.Ref->getNumDims(), B.Ref->getNumDims());
      ++Stats->DimensionHistogram[std::min(Dims - 1, 3u)];
    }
    return degradedTestResult(commonLoops(A, B).size(), E.failure(), Stats);
  }
  return testPreparedAccessPair(A, B, Prepared, Stats);
}
