//===- support/Metrics.cpp - Per-thread-sharded metrics registry ----------===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Metrics.h"

#include "support/CrashSafety.h"
#include "support/Env.h"
#include "support/ErrorHandling.h"

#include <bit>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <vector>

using namespace pdt;

std::atomic<bool> Metrics::EnabledFlag{false};

const char *pdt::metricName(Metric M) {
  switch (M) {
  case Metric::GraphBuilds:
    return "graph.builds";
  case Metric::GraphBuildNs:
    return "graph.build_ns";
  case Metric::PairsEnumerated:
    return "graph.pairs.enumerated";
  case Metric::PairsTested:
    return "graph.pairs.tested";
  case Metric::PairsIndependent:
    return "graph.pairs.independent";
  case Metric::PairsDegraded:
    return "graph.pairs.degraded";
  case Metric::EdgesEmitted:
    return "graph.edges";
  case Metric::AccessesLowered:
    return "lowering.accesses";
  case Metric::MemoHits:
    return "lowering.memo.hits";
  case Metric::MemoMisses:
    return "lowering.memo.misses";
  case Metric::PoolParallelFors:
    return "pool.parallel_fors";
  case Metric::PoolChunksRun:
    return "pool.chunks_run";
  case Metric::PoolSteals:
    return "pool.steals";
  case Metric::BudgetPairSkips:
    return "budget.pair_skips";
  case Metric::BudgetDeadlineSkips:
    return "budget.deadline_skips";
  case Metric::FMBudgetHits:
    return "budget.fm_hits";
  case Metric::DegradedOverflow:
    return "degraded.overflow";
  case Metric::DegradedBudget:
    return "degraded.budget-exhausted";
  case Metric::DegradedSymbolic:
    return "degraded.symbolic-unknown";
  case Metric::DegradedInternal:
    return "degraded.internal-invariant";
  case Metric::DegradedMalformed:
    return "degraded.malformed-input";
  case Metric::FuzzKernels:
    return "fuzz.kernels";
  case Metric::FuzzPairsChecked:
    return "fuzz.pairs_checked";
  case Metric::FuzzDiscrepancies:
    return "fuzz.discrepancies";
  case Metric::FuzzExactnessLosses:
    return "fuzz.exactness_losses";
  case Metric::FuzzShrinkSteps:
    return "fuzz.shrink_steps";
  case Metric::StoreHits:
    return "store.hits";
  case Metric::StoreMisses:
    return "store.misses";
  case Metric::StoreInserts:
    return "store.inserts";
  case Metric::StoreRecordsLoaded:
    return "store.recovery.records_loaded";
  case Metric::StoreCorruptRecords:
    return "store.recovery.corrupt_records";
  case Metric::StoreTornTails:
    return "store.recovery.torn_tails";
  case Metric::StoreStaleSegments:
    return "store.recovery.stale_segments";
  case Metric::StoreQuarantined:
    return "store.recovery.quarantined";
  case Metric::StoreRebuilds:
    return "store.recovery.rebuilds";
  case Metric::StoreWriteFailures:
    return "store.write_failures";
  case Metric::TraceSpanDrops:
    return "trace.dropped_spans";
  case Metric::FlightDumps:
    return "monitor.flight.dumps";
  case Metric::WatchdogStalls:
    return "monitor.watchdog.stalls";
  case Metric::EventsEmitted:
    return "monitor.events.emitted";
  case Metric::EventsSuppressed:
    return "monitor.events.suppressed";
  case Metric::SamplerSamples:
    return "monitor.sampler.samples";
  case Metric::ServeConnections:
    return "serve.connections";
  case Metric::ServeRejected:
    return "serve.rejected_429";
  case Metric::ServeRequests:
    return "serve.requests";
  case Metric::ServeClientErrors:
    return "serve.errors.client";
  case Metric::ServeServerErrors:
    return "serve.errors.server";
  case Metric::ServeAnalyses:
    return "serve.analyses";
  }
  pdt_unreachable("covered switch");
}

const char *pdt::gaugeName(Gauge G) {
  switch (G) {
  case Gauge::PoolWorkers:
    return "pool.workers.max";
  case Gauge::PoolQueueDepth:
    return "pool.queue_depth.max";
  }
  pdt_unreachable("covered switch");
}

const char *pdt::histoName(Histo H) {
  switch (H) {
  case Histo::PairTestNs:
    return "latency.pair_test_ns";
  case Histo::DeltaNs:
    return "latency.delta_ns";
  case Histo::FMNs:
    return "latency.fm_ns";
  case Histo::FuzzKernelNs:
    return "latency.fuzz_kernel_ns";
  case Histo::ServeRequestNs:
    return "latency.serve_request_ns";
  }
  pdt_unreachable("covered switch");
}

double MetricsSnapshot::Histogram::quantileNs(double Q) const {
  if (Count == 0)
    return 0.0;
  if (Q < 0.0)
    Q = 0.0;
  if (Q > 1.0)
    Q = 1.0;
  double Rank = Q * static_cast<double>(Count - 1);
  uint64_t Before = 0;
  for (unsigned B = 0; B != HistoBuckets; ++B) {
    uint64_t N = Buckets[B];
    if (!N) {
      continue;
    }
    if (Rank < static_cast<double>(Before + N)) {
      if (B == 0)
        return 0.0;
      double Lo = std::ldexp(1.0, static_cast<int>(B) - 1);
      double Hi = std::ldexp(1.0, static_cast<int>(B));
      double Fraction =
          (Rank - static_cast<double>(Before) + 0.5) / static_cast<double>(N);
      double V = Lo + Fraction * (Hi - Lo);
      return MaxNs && V > static_cast<double>(MaxNs)
                 ? static_cast<double>(MaxNs)
                 : V;
    }
    Before += N;
  }
  return static_cast<double>(MaxNs);
}

namespace {

/// One thread's metric cells. The owning thread is the only writer
/// (plain relaxed read-modify-write, no RMW instructions needed);
/// snapshot() reads the cells with relaxed loads from any thread.
struct MetricsShard {
  std::array<std::atomic<uint64_t>, NumMetrics> Counters{};
  std::array<std::atomic<uint64_t>, NumGauges> Gauges{};
  struct HistoCells {
    std::atomic<uint64_t> Count{0};
    std::atomic<uint64_t> SumNs{0};
    std::atomic<uint64_t> MaxNs{0};
    std::array<std::atomic<uint64_t>, HistoBuckets> Buckets{};
  };
  std::array<HistoCells, NumHistos> Histograms{};

  void reset() {
    for (auto &C : Counters)
      C.store(0, std::memory_order_relaxed);
    for (auto &G : Gauges)
      G.store(0, std::memory_order_relaxed);
    for (HistoCells &H : Histograms) {
      H.Count.store(0, std::memory_order_relaxed);
      H.SumNs.store(0, std::memory_order_relaxed);
      H.MaxNs.store(0, std::memory_order_relaxed);
      for (auto &B : H.Buckets)
        B.store(0, std::memory_order_relaxed);
    }
  }
};

struct MetricsCollector {
  std::mutex M;
  std::vector<std::shared_ptr<MetricsShard>> Shards;
  std::string Path;
};

MetricsCollector &metricsCollector() {
  // Immortal, like the trace collector: exit-time report writers may
  // snapshot metrics after this TU's static destructors would have
  // run.
  static MetricsCollector *C = new MetricsCollector;
  return *C;
}

MetricsShard &threadShard() {
  thread_local std::shared_ptr<MetricsShard> Shard = [] {
    auto S = std::make_shared<MetricsShard>();
    MetricsCollector &C = metricsCollector();
    std::lock_guard<std::mutex> Lock(C.M);
    C.Shards.push_back(S);
    return S;
  }();
  return *Shard;
}

/// Single-writer relaxed increment: cheaper than a fetch_add and race-
/// free because only the owning thread stores to its shard.
void relaxedAdd(std::atomic<uint64_t> &Cell, uint64_t N) {
  Cell.store(Cell.load(std::memory_order_relaxed) + N,
             std::memory_order_relaxed);
}

void relaxedMax(std::atomic<uint64_t> &Cell, uint64_t V) {
  if (Cell.load(std::memory_order_relaxed) < V)
    Cell.store(V, std::memory_order_relaxed);
}

} // namespace

void Metrics::countImpl(Metric M, uint64_t N) {
  relaxedAdd(threadShard().Counters[static_cast<unsigned>(M)], N);
}

void Metrics::gaugeMaxImpl(Gauge G, uint64_t Value) {
  relaxedMax(threadShard().Gauges[static_cast<unsigned>(G)], Value);
}

void Metrics::observeImpl(Histo H, uint64_t Ns) {
  MetricsShard::HistoCells &Cells =
      threadShard().Histograms[static_cast<unsigned>(H)];
  relaxedAdd(Cells.Count, 1);
  relaxedAdd(Cells.SumNs, Ns);
  relaxedMax(Cells.MaxNs, Ns);
  unsigned Bucket = std::bit_width(Ns);
  if (Bucket >= HistoBuckets)
    Bucket = HistoBuckets - 1;
  relaxedAdd(Cells.Buckets[Bucket], 1);
}

bool Metrics::enable(std::string Path) {
  if (!compiledIn())
    return false;
  reset();
  {
    MetricsCollector &C = metricsCollector();
    std::lock_guard<std::mutex> Lock(C.M);
    C.Path = std::move(Path);
  }
  // Touch the span clock so its one-time calibration is paid here, at
  // arming time, not inside the first LatencyTimer.
  Trace::nowNs();
  EnabledFlag.store(true, std::memory_order_relaxed);
  return true;
}

bool Metrics::stop() {
  EnabledFlag.store(false, std::memory_order_relaxed);
  std::string Path;
  {
    MetricsCollector &C = metricsCollector();
    std::lock_guard<std::mutex> Lock(C.M);
    Path = C.Path;
  }
  if (Path.empty())
    return true;
  return writeTo(Path);
}

void Metrics::reset() {
  MetricsCollector &C = metricsCollector();
  std::lock_guard<std::mutex> Lock(C.M);
  for (const std::shared_ptr<MetricsShard> &S : C.Shards)
    S->reset();
}

MetricsSnapshot Metrics::snapshot() {
  MetricsSnapshot Out;
  MetricsCollector &C = metricsCollector();
  std::lock_guard<std::mutex> Lock(C.M);
  for (const std::shared_ptr<MetricsShard> &S : C.Shards) {
    MetricsSnapshot Part;
    for (unsigned I = 0; I != NumMetrics; ++I)
      Part.Counters[I] = S->Counters[I].load(std::memory_order_relaxed);
    for (unsigned I = 0; I != NumGauges; ++I)
      Part.Gauges[I] = S->Gauges[I].load(std::memory_order_relaxed);
    for (unsigned I = 0; I != NumHistos; ++I) {
      MetricsSnapshot::Histogram &H = Part.Histograms[I];
      const MetricsShard::HistoCells &Cells = S->Histograms[I];
      H.Count = Cells.Count.load(std::memory_order_relaxed);
      H.SumNs = Cells.SumNs.load(std::memory_order_relaxed);
      H.MaxNs = Cells.MaxNs.load(std::memory_order_relaxed);
      for (unsigned B = 0; B != HistoBuckets; ++B)
        H.Buckets[B] = Cells.Buckets[B].load(std::memory_order_relaxed);
    }
    Out.merge(Part);
  }
  return Out;
}

std::string Metrics::toJson(const MetricsSnapshot &S) {
  std::string Out;
  Out += "{\n  \"counters\": {\n";
  for (unsigned I = 0; I != NumMetrics; ++I) {
    Out += "    \"";
    Out += metricName(static_cast<Metric>(I));
    Out += "\": " + std::to_string(S.Counters[I]);
    Out += I + 1 == NumMetrics ? "\n" : ",\n";
  }
  Out += "  },\n  \"gauges\": {\n";
  for (unsigned I = 0; I != NumGauges; ++I) {
    Out += "    \"";
    Out += gaugeName(static_cast<Gauge>(I));
    Out += "\": " + std::to_string(S.Gauges[I]);
    Out += I + 1 == NumGauges ? "\n" : ",\n";
  }
  Out += "  },\n  \"histograms\": {\n";
  for (unsigned I = 0; I != NumHistos; ++I) {
    const MetricsSnapshot::Histogram &H = S.Histograms[I];
    Out += "    \"";
    Out += histoName(static_cast<Histo>(I));
    Out += "\": {\"count\": " + std::to_string(H.Count);
    Out += ", \"sum_ns\": " + std::to_string(H.SumNs);
    Out += ", \"max_ns\": " + std::to_string(H.MaxNs);
    char Quantiles[128];
    std::snprintf(Quantiles, sizeof(Quantiles),
                  ", \"p50_ns\": %.1f, \"p95_ns\": %.1f, \"p99_ns\": %.1f",
                  H.quantileNs(0.50), H.quantileNs(0.95), H.quantileNs(0.99));
    Out += Quantiles;
    Out += ", \"log2_buckets\": [";
    for (unsigned B = 0; B != HistoBuckets; ++B) {
      Out += std::to_string(H.Buckets[B]);
      if (B + 1 != HistoBuckets)
        Out += ", ";
    }
    Out += "]}";
    Out += I + 1 == NumHistos ? "\n" : ",\n";
  }
  Out += "  },\n  \"derived\": {\n";
  double BuildSecs = S.counter(Metric::GraphBuildNs) / 1e9;
  double PairsPerSec =
      BuildSecs > 0 ? S.counter(Metric::PairsTested) / BuildSecs : 0;
  uint64_t Lookups =
      S.counter(Metric::MemoHits) + S.counter(Metric::MemoMisses);
  double HitRate =
      Lookups ? static_cast<double>(S.counter(Metric::MemoHits)) / Lookups : 0;
  char Buffer[128];
  std::snprintf(Buffer, sizeof(Buffer),
                "    \"pairs_per_sec\": %.1f,\n"
                "    \"memo_hit_rate\": %.4f\n",
                PairsPerSec, HitRate);
  Out += Buffer;
  Out += "  }\n}\n";
  return Out;
}

namespace {

/// "graph.pairs.tested" -> "pdt_graph_pairs_tested": the registry's
/// dotted names mangled into the Prometheus metric-name alphabet
/// [a-zA-Z_:][a-zA-Z0-9_:]*.
std::string promName(const char *Registry) {
  std::string Out = "pdt_";
  for (const char *P = Registry; *P; ++P) {
    char C = *P;
    bool Ok = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
              (C >= '0' && C <= '9') || C == '_';
    Out += Ok ? C : '_';
  }
  return Out;
}

void promHeader(std::string &Out, const std::string &Name,
                const char *Registry, const char *Type) {
  Out += "# HELP " + Name + " pdt registry ";
  Out += Type;
  Out += " ";
  Out += Registry;
  Out += "\n# TYPE " + Name + " ";
  Out += Type;
  Out += "\n";
}

} // namespace

std::string Metrics::toPrometheus(const MetricsSnapshot &S) {
  std::string Out;
  Out.reserve(8192);
  for (unsigned I = 0; I != NumMetrics; ++I) {
    const char *Registry = metricName(static_cast<Metric>(I));
    std::string Name = promName(Registry);
    promHeader(Out, Name, Registry, "counter");
    Out += Name + " " + std::to_string(S.Counters[I]) + "\n";
  }
  for (unsigned I = 0; I != NumGauges; ++I) {
    const char *Registry = gaugeName(static_cast<Gauge>(I));
    std::string Name = promName(Registry);
    promHeader(Out, Name, Registry, "gauge");
    Out += Name + " " + std::to_string(S.Gauges[I]) + "\n";
  }
  for (unsigned I = 0; I != NumHistos; ++I) {
    const char *Registry = histoName(static_cast<Histo>(I));
    std::string Name = promName(Registry);
    const MetricsSnapshot::Histogram &H = S.Histograms[I];
    promHeader(Out, Name, Registry, "histogram");
    // Exact cumulative upper bounds: bucket B counts bit_width == B,
    // i.e. integers in [2^(B-1), 2^B - 1], so the running total
    // through B is the count of samples <= 2^B - 1. The clamped
    // overflow bucket (B = HistoBuckets - 1) has no finite bound and
    // is covered by +Inf alone.
    uint64_t Cumulative = 0;
    for (unsigned B = 0; B + 1 != HistoBuckets; ++B) {
      Cumulative += H.Buckets[B];
      uint64_t Le = B == 0 ? 0 : (uint64_t(1) << B) - 1;
      Out += Name + "_bucket{le=\"" + std::to_string(Le) + "\"} " +
             std::to_string(Cumulative) + "\n";
    }
    Out += Name + "_bucket{le=\"+Inf\"} " + std::to_string(H.Count) + "\n";
    Out += Name + "_sum " + std::to_string(H.SumNs) + "\n";
    Out += Name + "_count " + std::to_string(H.Count) + "\n";
  }
  return Out;
}

bool Metrics::writeTo(const std::string &Path) {
  std::ofstream File(Path);
  if (!File)
    return false;
  File << toJson(snapshot());
  File.flush();
  return File.good();
}

void Metrics::initFromEnvironment() {
  static bool Done = false;
  if (Done)
    return;
  Done = true;
  std::optional<std::string> Path = envPath("PDT_METRICS");
  if (!Path)
    return;
  if (!compiledIn()) {
    std::fprintf(stderr, "pdt: warning: PDT_METRICS is set but metrics were "
                         "compiled out (PDT_TRACING=OFF); no report will be "
                         "written\n");
    return;
  }
  if (Metrics::enable(std::move(*Path))) {
    std::atexit([] { Metrics::stop(); });
    // Aborting runs skip atexit; flush on terminate/SIGABRT too.
    registerCrashFlush("PDT_METRICS", [] {
      if (Metrics::enabled())
        Metrics::stop();
    });
  }
}

namespace {
[[maybe_unused]] const bool MetricsEnvInitialized =
    (Metrics::initFromEnvironment(), true);
} // namespace
