//===- core/Constraint.cpp - Delta test constraint lattice ----------------===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Constraint.h"

#include "support/ErrorHandling.h"
#include "support/MathExtras.h"

#include <cassert>

using namespace pdt;

Constraint Constraint::empty() {
  Constraint R;
  R.TheKind = Kind::Empty;
  return R;
}

Constraint Constraint::distance(int64_t D) {
  Constraint R;
  R.TheKind = Kind::Distance;
  R.A = D;
  return R;
}

Constraint Constraint::point(int64_t X, int64_t Y) {
  Constraint R;
  R.TheKind = Kind::Point;
  R.A = X;
  R.B = Y;
  return R;
}

Constraint Constraint::line(int64_t LA, int64_t LB, int64_t LC) {
  if (LA == 0 && LB == 0)
    return LC == 0 ? any() : empty();
  // Normalize: divide by gcd, make the first non-zero coefficient
  // positive.
  int64_t G = gcd64(gcd64(LA, LB), LC);
  if (G > 1) {
    LA /= G;
    LB /= G;
    LC /= G;
  }
  int64_t Lead = LA != 0 ? LA : LB;
  if (Lead < 0) {
    LA = -LA;
    LB = -LB;
    LC = -LC;
  }
  // The distance form i' - i = d normalizes to i - i' = -d.
  if (LA == 1 && LB == -1)
    return distance(-LC);
  Constraint R;
  R.TheKind = Kind::Line;
  R.A = LA;
  R.B = LB;
  R.C = LC;
  return R;
}

int64_t Constraint::getDistance() const {
  assert(TheKind == Kind::Distance && "not a distance constraint");
  return A;
}

int64_t Constraint::lineA() const {
  int64_t LA, LB, LC;
  asLine(LA, LB, LC);
  return LA;
}

int64_t Constraint::lineB() const {
  int64_t LA, LB, LC;
  asLine(LA, LB, LC);
  return LB;
}

int64_t Constraint::lineC() const {
  int64_t LA, LB, LC;
  asLine(LA, LB, LC);
  return LC;
}

int64_t Constraint::pointX() const {
  assert(TheKind == Kind::Point && "not a point constraint");
  return A;
}

int64_t Constraint::pointY() const {
  assert(TheKind == Kind::Point && "not a point constraint");
  return B;
}

void Constraint::asLine(int64_t &LA, int64_t &LB, int64_t &LC) const {
  switch (TheKind) {
  case Kind::Distance:
    // i' = i + d  <=>  -i + i' = d.
    LA = -1;
    LB = 1;
    LC = A;
    return;
  case Kind::Line:
    LA = A;
    LB = B;
    LC = C;
    return;
  case Kind::Any:
  case Kind::Point:
  case Kind::Empty:
    break;
  }
  pdt_unreachable("constraint has no line form");
}

bool Constraint::contains(int64_t X, int64_t Y) const {
  switch (TheKind) {
  case Kind::Any:
    return true;
  case Kind::Empty:
    return false;
  case Kind::Point:
    return X == A && Y == B;
  case Kind::Distance:
    return Y - X == A;
  case Kind::Line: {
    std::optional<int64_t> AX = checkedMul(A, X);
    std::optional<int64_t> BY = checkedMul(B, Y);
    if (!AX || !BY)
      return false;
    std::optional<int64_t> Sum = checkedAdd(*AX, *BY);
    return Sum && *Sum == C;
  }
  }
  pdt_unreachable("covered switch");
}

Constraint Constraint::intersect(const Constraint &RHS) const {
  if (isAny())
    return RHS;
  if (RHS.isAny())
    return *this;
  if (isEmpty() || RHS.isEmpty())
    return empty();

  // Point against anything: membership test.
  if (TheKind == Kind::Point)
    return RHS.contains(A, B) ? *this : empty();
  if (RHS.TheKind == Kind::Point)
    return contains(RHS.A, RHS.B) ? RHS : empty();

  // Two lines (Distance is a line).
  int64_t A1, B1, C1, A2, B2, C2;
  asLine(A1, B1, C1);
  RHS.asLine(A2, B2, C2);

  // 128-bit products: normalized coefficients are small, but the
  // constant terms come from user subscripts and may be large.
  __int128 Det = static_cast<__int128>(A1) * B2 -
                 static_cast<__int128>(A2) * B1;

  if (Det == 0) {
    // Parallel lines: identical iff the full triples are proportional.
    auto Prop = [](int64_t X1, int64_t Y1, int64_t X2, int64_t Y2) {
      return static_cast<__int128>(X1) * Y2 ==
             static_cast<__int128>(X2) * Y1;
    };
    if (Prop(A1, C1, A2, C2) && Prop(B1, C1, B2, C2))
      return *this;
    return empty();
  }

  // Unique rational intersection; integral => Point, else Empty.
  __int128 NumX = static_cast<__int128>(C1) * B2 -
                  static_cast<__int128>(C2) * B1;
  __int128 NumY = static_cast<__int128>(A1) * C2 -
                  static_cast<__int128>(A2) * C1;
  if (NumX % Det != 0 || NumY % Det != 0)
    return empty();
  __int128 X = NumX / Det;
  __int128 Y = NumY / Det;
  // An intersection point outside the int64 range cannot be a real
  // iteration pair; treat it as no intersection.
  if (X < INT64_MIN || X > INT64_MAX || Y < INT64_MIN || Y > INT64_MAX)
    return empty();
  return point(static_cast<int64_t>(X), static_cast<int64_t>(Y));
}

bool Constraint::operator==(const Constraint &RHS) const {
  return TheKind == RHS.TheKind && A == RHS.A && B == RHS.B && C == RHS.C;
}

std::string Constraint::str() const {
  switch (TheKind) {
  case Kind::Any:
    return "any";
  case Kind::Empty:
    return "empty";
  case Kind::Distance:
    return "dist " + std::to_string(A);
  case Kind::Point:
    return "point (" + std::to_string(A) + ", " + std::to_string(B) + ")";
  case Kind::Line: {
    auto Term = [](int64_t Coeff, const char *Var, bool First) {
      std::string S;
      if (Coeff == 0)
        return S;
      if (!First)
        S += Coeff < 0 ? " - " : " + ";
      else if (Coeff < 0)
        S += "-";
      int64_t Abs = Coeff < 0 ? -Coeff : Coeff;
      if (Abs != 1)
        S += std::to_string(Abs) + "*";
      S += Var;
      return S;
    };
    std::string S = "line ";
    S += Term(A, "i", true);
    S += Term(B, "i'", A == 0);
    S += " = " + std::to_string(C);
    return S;
  }
  }
  pdt_unreachable("covered switch");
}
