//===- core/PowerTest.cpp - Wolfe-Tseng Power test core -------------------===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/PowerTest.h"

#include "core/FourierMotzkin.h"
#include "core/MultidimGCD.h"

#include <cassert>
#include <map>

using namespace pdt;

Verdict pdt::powerTest(const std::vector<SubscriptPair> &Subscripts,
                       const LoopNestContext &Ctx, TestStats *Stats) {
  if (Stats)
    Stats->noteApplication(TestKind::Power);

  // Iteration variables: the source and sink instance of every loop
  // index, whether or not a subscript mentions it (bounds of inner
  // loops may reference outer indices).
  unsigned Depth = Ctx.depth();
  std::map<std::string, unsigned> VarSlot;
  for (unsigned L = 0; L != Depth; ++L) {
    const std::string &Name = Ctx.loop(L).Index;
    VarSlot.try_emplace(Name, VarSlot.size());
    VarSlot.try_emplace(sinkName(Name), VarSlot.size());
  }

  // Assemble the integer system from the symbol-free equations.
  std::vector<LinearExpr> Eqs;
  for (const SubscriptPair &S : Subscripts) {
    LinearExpr Eq = S.equation();
    if (!Eq.symbolTerms().empty())
      continue; // Cannot constrain the lattice; sound to drop.
    bool AllKnown = true;
    for (const auto &[Name, Coeff] : Eq.indexTerms())
      AllKnown &= VarSlot.count(Name) != 0;
    if (!AllKnown)
      continue; // References an index outside this nest.
    Eqs.push_back(std::move(Eq));
  }
  if (Eqs.empty())
    return Verdict::Maybe;

  unsigned NumVars = VarSlot.size();
  std::vector<std::vector<int64_t>> A;
  std::vector<int64_t> B;
  for (const LinearExpr &Eq : Eqs) {
    std::vector<int64_t> Row(NumVars, 0);
    for (const auto &[Name, Coeff] : Eq.indexTerms())
      Row[VarSlot[Name]] = Coeff;
    A.push_back(std::move(Row));
    B.push_back(-Eq.getConstant());
  }

  // Phase 1: dense integer elimination (the multidimensional GCD
  // test): every integer solution is x = X0 + Basis * t.
  std::optional<ParametricSolution> Solution =
      solveIntegerSystem(std::move(A), std::move(B));
  if (!Solution) {
    if (Stats)
      Stats->noteIndependence(TestKind::Power);
    return Verdict::Independent;
  }
  unsigned NumLattice = Solution->Basis.size();

  // Phase 2: apply the loop bounds (including triangular/trapezoidal
  // coupling between levels and symbolic extents) to the lattice with
  // Fourier-Motzkin elimination over the parameters: the lattice
  // coordinates t, plus one variable per symbolic constant in bounds.
  std::map<std::string, unsigned> SymbolParam;
  unsigned NumParams = NumLattice; // Symbols appended on demand.
  auto SymbolIndex = [&](const std::string &Name) {
    auto [It, Inserted] = SymbolParam.try_emplace(Name, NumParams);
    if (Inserted)
      ++NumParams;
    return It->second;
  };
  // Pre-scan bound expressions so NumParams is final before rows are
  // emitted.
  for (unsigned L = 0; L != Depth; ++L) {
    if (!Ctx.loop(L).Affine)
      continue;
    for (const LinearExpr *E : {&Ctx.loop(L).Lower, &Ctx.loop(L).Upper})
      for (const auto &[Name, Coeff] : E->symbolTerms())
        SymbolIndex(Name);
  }

  FMSystem System(NumParams);

  // Expands variable slot \p Slot into parameter space: appends
  // Scale * x_Slot to (Coeffs, Const).
  auto AddVar = [&](std::vector<Rational> &Coeffs, Rational &Const,
                    unsigned Slot, int64_t Scale) {
    Const = Const + Rational(Scale * Solution->X0[Slot]);
    for (unsigned K = 0; K != NumLattice; ++K)
      Coeffs[K] = Coeffs[K] + Rational(Scale * Solution->Basis[K][Slot]);
  };

  // Emits x_v - Bound >= 0 (Sense=+1) or Bound - x_v >= 0 (Sense=-1)
  // for the given side instance of level \p L.
  auto AddBoundRow = [&](unsigned L, bool Snk, const LinearExpr &Bound,
                         int Sense) {
    std::vector<Rational> Coeffs(NumParams, Rational(0));
    Rational Const(0);
    const std::string &Index = Ctx.loop(L).Index;
    std::string VarName = Snk ? sinkName(Index) : Index;
    AddVar(Coeffs, Const, VarSlot[VarName], Sense);
    // Subtract (Sense=+1) or add (Sense=-1) the bound expression.
    Const = Const + Rational(-Sense * Bound.getConstant());
    for (const auto &[Name, Coeff] : Bound.indexTerms()) {
      std::string Outer = Snk ? sinkName(Name) : Name;
      assert(VarSlot.count(Outer) && "bound uses unknown outer index");
      AddVar(Coeffs, Const, VarSlot[Outer], -Sense * Coeff);
    }
    for (const auto &[Name, Coeff] : Bound.symbolTerms()) {
      unsigned P = SymbolIndex(Name);
      Coeffs[P] = Coeffs[P] + Rational(-Sense * Coeff);
    }
    System.addInequality(std::move(Coeffs), Const);
  };

  for (unsigned L = 0; L != Depth; ++L) {
    const LoopBounds &LB = Ctx.loop(L);
    if (!LB.Affine)
      continue; // Unknown bounds constrain nothing.
    for (bool Snk : {false, true}) {
      AddBoundRow(L, Snk, LB.Lower, +1);
      AddBoundRow(L, Snk, LB.Upper, -1);
    }
  }

  // Symbol range assumptions.
  for (const auto &[Name, Param] : SymbolParam) {
    auto It = Ctx.symbolRanges().find(Name);
    if (It == Ctx.symbolRanges().end())
      continue;
    if (It->second.lower()) {
      std::vector<Rational> Coeffs(NumParams, Rational(0));
      Coeffs[Param] = Rational(1);
      System.addInequality(std::move(Coeffs),
                           Rational(-*It->second.lower()));
    }
    if (It->second.upper()) {
      std::vector<Rational> Coeffs(NumParams, Rational(0));
      Coeffs[Param] = Rational(-1);
      System.addInequality(std::move(Coeffs),
                           Rational(*It->second.upper()));
    }
  }

  if (!System.isRationallyFeasible()) {
    if (Stats)
      Stats->noteIndependence(TestKind::Power);
    return Verdict::Independent;
  }
  return Verdict::Maybe;
}
