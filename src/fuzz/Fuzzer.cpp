//===- fuzz/Fuzzer.cpp - Differential fuzzing campaigns -------------------===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"

#include "fuzz/Repro.h"
#include "fuzz/Shrinker.h"
#include "support/Env.h"
#include "support/FaultInjector.h"
#include "support/Metrics.h"
#include "support/Sampler.h"
#include "support/ThreadPool.h"
#include "support/Watchdog.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <sstream>

using namespace pdt;

namespace {

/// One worker's private accumulator; merged after the parallel loop.
struct WorkerState {
  uint64_t Checked = 0;
  uint64_t Skipped = 0;
  uint64_t Pairs = 0;
  uint64_t ExactnessLosses = 0;
  uint64_t GroundTruth = 0;
  uint64_t Dynamic = 0;
  uint64_t StoreCross = 0;
  uint64_t Discrepancies = 0;
  uint64_t Aborts = 0;
  std::array<uint64_t, NumFuzzStrata> StratumKernels{};
  std::array<uint64_t, NumFuzzStrata> StratumGroundTruth{};
  /// Failed kernels, capped to keep memory bounded.
  std::vector<std::pair<FuzzKernel, FuzzKernelVerdict>> Failures;
};

std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 8);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

} // namespace

FuzzCampaignReport pdt::runFuzzCampaign(const FuzzCampaignConfig &Config) {
  auto Start = std::chrono::steady_clock::now();
  BudgetTracker Tracker(Config.Budget);
  ThreadPool Pool(Config.NumThreads);

  std::vector<WorkerState> Workers(Pool.numWorkers());
  const unsigned FailureCap = std::max(Config.MaxFindings, 1u);

  // Campaign watchdog probe (beats per kernel) plus live per-stratum
  // kernel counts published to the time-series sampler, so a
  // multi-hour campaign's progress is visible while it runs, not just
  // in the final report.
  Heartbeat CampaignBeat("fuzz.campaign",
                         Config.Budget.Deadline
                             ? static_cast<uint64_t>(
                                   Config.Budget.Deadline->count())
                             : 0);
  std::array<std::atomic<uint64_t>, NumFuzzStrata> LiveStratum{};
  struct SeriesGuard {
    std::vector<size_t> Ids;
    ~SeriesGuard() {
      for (size_t Id : Ids)
        Sampler::unregisterSeries(Id);
    }
  } Series;
  if (Sampler::enabled())
    for (unsigned S = 0; S != NumFuzzStrata; ++S)
      Series.Ids.push_back(Sampler::registerSeries(
          std::string("fuzz.stratum.") +
              fuzzStratumName(static_cast<FuzzStratum>(S)),
          [&LiveStratum, S] {
            return LiveStratum[S].load(std::memory_order_relaxed);
          }));
  const bool LiveSeries = !Series.Ids.empty();

  Pool.parallelFor(Config.Count, [&](size_t Index, unsigned Worker) {
    WorkerState &W = Workers[Worker];
    CampaignBeat.beat();
    if (Tracker.deadlineExpired()) {
      W.Skipped += 1;
      Metrics::count(Metric::BudgetDeadlineSkips);
      return;
    }
    FuzzKernel K = generateFuzzKernel(Config.Seed, Index, Config.Gen);
    FuzzKernelVerdict V;
    {
      LatencyTimer T(Histo::FuzzKernelNs);
      V = checkFuzzKernel(K, Config.Check);
    }
    Metrics::count(Metric::FuzzKernels);
    W.Checked += 1;
    W.Pairs += V.PairsChecked;
    W.ExactnessLosses += V.ExactnessLosses;
    W.StratumKernels[static_cast<unsigned>(K.Stratum)] += 1;
    if (LiveSeries)
      LiveStratum[static_cast<unsigned>(K.Stratum)].fetch_add(
          1, std::memory_order_relaxed);
    if (V.GroundTruth) {
      W.GroundTruth += 1;
      W.StratumGroundTruth[static_cast<unsigned>(K.Stratum)] += 1;
    }
    if (V.DynamicChecked)
      W.Dynamic += 1;
    if (V.StoreCrossChecked)
      W.StoreCross += 1;
    if (V.failed()) {
      W.Discrepancies += V.Discrepancies.size();
      for (const FuzzDiscrepancy &D : V.Discrepancies)
        if (D.Kind == FuzzDiscrepancyKind::Abort)
          W.Aborts += 1;
      if (W.Failures.size() < FailureCap)
        W.Failures.emplace_back(std::move(K), std::move(V));
    }
  });

  FuzzCampaignReport Report;
  std::vector<std::pair<FuzzKernel, FuzzKernelVerdict>> Failures;
  for (WorkerState &W : Workers) {
    Report.KernelsChecked += W.Checked;
    Report.KernelsSkipped += W.Skipped;
    Report.PairsChecked += W.Pairs;
    Report.ExactnessLosses += W.ExactnessLosses;
    Report.GroundTruthKernels += W.GroundTruth;
    Report.DynamicChecks += W.Dynamic;
    Report.StoreCrossChecks += W.StoreCross;
    Report.Discrepancies += W.Discrepancies;
    Report.Aborts += W.Aborts;
    for (unsigned S = 0; S != NumFuzzStrata; ++S) {
      Report.StratumKernels[S] += W.StratumKernels[S];
      Report.StratumGroundTruth[S] += W.StratumGroundTruth[S];
    }
    for (auto &F : W.Failures)
      Failures.push_back(std::move(F));
  }

  // Kernel order, not worker order, so findings are deterministic.
  std::sort(Failures.begin(), Failures.end(),
            [](const auto &A, const auto &B) {
              return A.first.Index < B.first.Index;
            });
  if (Failures.size() > Config.MaxFindings)
    Failures.resize(Config.MaxFindings);

  // Shrink sequentially: deterministic, and fault-injection predicates
  // depend on single-threaded site numbering.
  for (auto &[Kernel, Verdict] : Failures) {
    FuzzFinding Finding;
    Finding.Original = Kernel;
    Finding.Discrepancies = Verdict.Discrepancies;
    Finding.Shrunk = Kernel;
    if (Config.Shrink && !Tracker.deadlineExpired()) {
      FuzzDiscrepancyKind Kind = Verdict.Discrepancies.front().Kind;
      FuzzPredicate SameKind = [&](const FuzzKernel &Candidate) {
        FuzzKernelVerdict V = checkFuzzKernel(Candidate, Config.Check);
        for (const FuzzDiscrepancy &D : V.Discrepancies)
          if (D.Kind == Kind)
            return true;
        return false;
      };
      FuzzShrinkResult Shrunk =
          shrinkFuzzKernel(Kernel, SameKind, Config.ShrinkMaxSteps);
      Finding.Shrunk = std::move(Shrunk.Kernel);
      Finding.ShrinkSteps = Shrunk.StepsTried;
      Finding.ShrunkMinimal = Shrunk.Minimal;
      Finding.Discrepancies =
          checkFuzzKernel(Finding.Shrunk, Config.Check).Discrepancies;
      if (Finding.Discrepancies.empty()) // Deadline mid-shrink, etc.
        Finding.Discrepancies = Verdict.Discrepancies;
    }
    if (!Config.ReproDir.empty()) {
      std::string Path =
          Config.ReproDir + "/" + fuzzReproFileName(Finding.Shrunk);
      if (writeFuzzReproFile(Path, Finding.Shrunk, Finding.Discrepancies))
        Finding.ReproPath = std::move(Path);
    }
    Report.Findings.push_back(std::move(Finding));
  }

  Report.ElapsedSec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  return Report;
}

FuzzCampaignConfig pdt::fuzzCampaignConfigFromEnv(FuzzCampaignConfig Defaults) {
  if (std::optional<int64_t> V = envInt("PDT_FUZZ_SEED", 0, INT64_MAX))
    Defaults.Seed = static_cast<uint64_t>(*V);
  if (std::optional<int64_t> V = envInt("PDT_FUZZ_COUNT", 1, INT64_MAX))
    Defaults.Count = static_cast<uint64_t>(*V);
  if (std::optional<int64_t> V = envInt("PDT_FUZZ_THREADS", 1, 1024))
    Defaults.NumThreads = static_cast<unsigned>(*V);
  if (std::optional<int64_t> V = envInt("PDT_FUZZ_DEADLINE_MS", 1, INT64_MAX))
    Defaults.Budget.Deadline = std::chrono::milliseconds(*V);
  if (std::optional<int64_t> V = envInt("PDT_FUZZ_ORACLE_PAIRS", 1, INT64_MAX))
    Defaults.Check.OracleMaxPairs = static_cast<uint64_t>(*V);
  if (std::optional<int64_t> V = envInt("PDT_FUZZ_SHRINK_STEPS", 1, INT32_MAX))
    Defaults.ShrinkMaxSteps = static_cast<unsigned>(*V);
  if (std::optional<std::string> P = envPath("PDT_FUZZ_REPRO_DIR"))
    Defaults.ReproDir = *P;
  return Defaults;
}

std::optional<FuzzFinding>
pdt::runFaultInjectionSelfCheck(const FuzzCampaignConfig &Config,
                                const std::string &Spec) {
  FuzzCheckConfig Check = Config.Check;
  Check.FailOnDegraded = true;
  // The injected fault must surface through the static deciders; the
  // interpreter leg only adds schedule-dependent checkpoints.
  Check.RunInterpreterCheck = false;

  // Validate the spec once before the scan.
  if (!FaultInjector::armFromSpec(Spec))
    return std::nullopt;
  FaultInjector::disarm();

  auto Evaluate = [&](const FuzzKernel &K) {
    FaultInjector::armFromSpec(Spec);
    FuzzKernelVerdict V = checkFuzzKernel(K, Check);
    FaultInjector::disarm();
    return V;
  };
  auto Trips = [](const FuzzKernelVerdict &V) {
    for (const FuzzDiscrepancy &D : V.Discrepancies)
      if (D.Kind == FuzzDiscrepancyKind::DegradedResult)
        return true;
    return false;
  };

  for (uint64_t Index = 0; Index != Config.Count; ++Index) {
    FuzzKernel K = generateFuzzKernel(Config.Seed, Index, Config.Gen);
    FuzzKernelVerdict V = Evaluate(K);
    if (!Trips(V))
      continue;
    FuzzFinding Finding;
    Finding.Original = K;
    Finding.Shrunk = K;
    Finding.Discrepancies = V.Discrepancies;
    if (Config.Shrink) {
      FuzzPredicate StillTrips = [&](const FuzzKernel &Candidate) {
        return Trips(Evaluate(Candidate));
      };
      FuzzShrinkResult Shrunk =
          shrinkFuzzKernel(K, StillTrips, Config.ShrinkMaxSteps);
      Finding.Shrunk = std::move(Shrunk.Kernel);
      Finding.ShrinkSteps = Shrunk.StepsTried;
      Finding.ShrunkMinimal = Shrunk.Minimal;
      Finding.Discrepancies = Evaluate(Finding.Shrunk).Discrepancies;
    }
    if (!Config.ReproDir.empty()) {
      std::string Path =
          Config.ReproDir + "/" + fuzzReproFileName(Finding.Shrunk);
      if (writeFuzzReproFile(Path, Finding.Shrunk, Finding.Discrepancies))
        Finding.ReproPath = std::move(Path);
    }
    return Finding;
  }
  return std::nullopt;
}

std::string pdt::fuzzReportJson(const FuzzCampaignConfig &Config,
                                const FuzzCampaignReport &Report) {
  std::ostringstream OS;
  OS << "  \"config\": {\n"
     << "    \"seed\": " << Config.Seed << ",\n"
     << "    \"count\": " << Config.Count << ",\n"
     << "    \"shrink\": " << (Config.Shrink ? "true" : "false") << "\n"
     << "  },\n";
  OS << "  \"kernels_checked\": " << Report.KernelsChecked << ",\n"
     << "  \"kernels_skipped\": " << Report.KernelsSkipped << ",\n"
     << "  \"pairs_checked\": " << Report.PairsChecked << ",\n"
     << "  \"ground_truth_kernels\": " << Report.GroundTruthKernels << ",\n"
     << "  \"dynamic_checks\": " << Report.DynamicChecks << ",\n"
     << "  \"store_cross_checks\": " << Report.StoreCrossChecks << ",\n"
     << "  \"exactness_losses\": " << Report.ExactnessLosses << ",\n"
     << "  \"discrepancies\": " << Report.Discrepancies << ",\n"
     << "  \"aborts\": " << Report.Aborts << ",\n"
     << "  \"elapsed_sec\": " << Report.ElapsedSec << ",\n"
     << "  \"kernels_per_sec\": "
     << (Report.ElapsedSec > 0.0 ? Report.KernelsChecked / Report.ElapsedSec
                                 : 0.0)
     << ",\n";
  OS << "  \"strata\": {\n";
  for (unsigned S = 0; S != NumFuzzStrata; ++S) {
    OS << "    \"" << fuzzStratumName(static_cast<FuzzStratum>(S))
       << "\": { \"kernels\": " << Report.StratumKernels[S]
       << ", \"ground_truth\": " << Report.StratumGroundTruth[S] << " }"
       << (S + 1 != NumFuzzStrata ? "," : "") << "\n";
  }
  OS << "  },\n";
  OS << "  \"findings\": [\n";
  for (unsigned I = 0; I != Report.Findings.size(); ++I) {
    const FuzzFinding &F = Report.Findings[I];
    OS << "    {\n"
       << "      \"kernel_index\": " << F.Original.Index << ",\n"
       << "      \"stratum\": \"" << fuzzStratumName(F.Original.Stratum)
       << "\",\n"
       << "      \"kinds\": [";
    for (unsigned D = 0; D != F.Discrepancies.size(); ++D)
      OS << (D ? ", " : "") << "\""
         << fuzzDiscrepancyKindName(F.Discrepancies[D].Kind) << "\"";
    OS << "],\n"
       << "      \"detail\": \""
       << jsonEscape(F.Discrepancies.empty() ? ""
                                             : F.Discrepancies.front().Detail)
       << "\",\n"
       << "      \"shrunk_statements\": " << F.Shrunk.Stmts.size() << ",\n"
       << "      \"shrunk_loops\": " << F.Shrunk.Loops.size() << ",\n"
       << "      \"shrink_steps\": " << F.ShrinkSteps << ",\n"
       << "      \"minimal\": " << (F.ShrunkMinimal ? "true" : "false")
       << ",\n"
       << "      \"repro\": \"" << jsonEscape(F.ReproPath) << "\",\n"
       << "      \"source\": \"" << jsonEscape(fuzzKernelToSource(F.Shrunk))
       << "\"\n"
       << "    }" << (I + 1 != Report.Findings.size() ? "," : "") << "\n";
  }
  OS << "  ]";
  return OS.str();
}
