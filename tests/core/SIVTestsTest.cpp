//===- tests/core/SIVTestsTest.cpp ------------------------------------------===//
//
// Unit tests for the exact single-subscript tests (paper section 4).
//
//===----------------------------------------------------------------------===//

#include "core/SIVTests.h"

#include "../TestHelpers.h"

#include <gtest/gtest.h>

using namespace pdt;
using namespace pdt::test;

namespace {

LinearExpr idx(const char *N, int64_t C = 1) {
  return LinearExpr::index(N, C);
}

/// The tagged equation of <Src, Dst>.
LinearExpr eq(const LinearExpr &Src, const LinearExpr &Dst) {
  return SubscriptPair(Src, Dst).equation();
}

} // namespace

//===----------------------------------------------------------------------===//
// ZIV (section 4.1)
//===----------------------------------------------------------------------===//

TEST(ZIVTest, ConstantDisproof) {
  LoopNestContext Ctx = singleLoop("i", 1, 10);
  SIVResult R = testZIV(eq(LinearExpr(3), LinearExpr(5)), Ctx);
  EXPECT_EQ(R.TheVerdict, Verdict::Independent);
  EXPECT_EQ(R.Test, TestKind::ZIV);
  EXPECT_TRUE(R.Exact);
}

TEST(ZIVTest, ConstantEqualIsDependent) {
  LoopNestContext Ctx = singleLoop("i", 1, 10);
  SIVResult R = testZIV(eq(LinearExpr(4), LinearExpr(4)), Ctx);
  EXPECT_EQ(R.TheVerdict, Verdict::Dependent);
  EXPECT_TRUE(R.Exact);
}

TEST(ZIVTest, SymbolicDifferenceNonZero) {
  // n+1 vs n: the symbols cancel in the canonical difference, leaving
  // the constant 1 (the paper's symbolic ZIV extension, section 4.1;
  // LinearExpr performs the simplification at construction time).
  LoopNestContext Ctx = singleLoop("i", 1, 10);
  SIVResult R = testZIV(
      eq(LinearExpr::symbol("n") + LinearExpr(1), LinearExpr::symbol("n")),
      Ctx);
  EXPECT_EQ(R.TheVerdict, Verdict::Independent);
  EXPECT_EQ(R.Test, TestKind::ZIV);
  EXPECT_TRUE(R.Exact);
}

TEST(ZIVTest, SymbolicCancellationIsDependent) {
  LoopNestContext Ctx = singleLoop("i", 1, 10);
  SIVResult R = testZIV(
      eq(LinearExpr::symbol("n"), LinearExpr::symbol("n")), Ctx);
  EXPECT_EQ(R.TheVerdict, Verdict::Dependent);
}

TEST(ZIVTest, DistinctSymbolsAreMaybe) {
  LoopNestContext Ctx = singleLoop("i", 1, 10);
  SIVResult R = testZIV(
      eq(LinearExpr::symbol("n"), LinearExpr::symbol("m")), Ctx);
  EXPECT_EQ(R.TheVerdict, Verdict::Maybe);
}

TEST(ZIVTest, SymbolRangeDisproof) {
  // n in [1, inf): n + 5 vs 3 differs by n + 2 >= 3 > 0.
  LoopBounds B;
  B.Index = "i";
  B.Lower = LinearExpr(1);
  B.Upper = LinearExpr(10);
  SymbolRangeMap Symbols;
  Symbols["n"] = Interval(1, std::nullopt);
  LoopNestContext Ctx({B}, Symbols);
  SIVResult R = testZIV(
      eq(LinearExpr::symbol("n") + LinearExpr(5), LinearExpr(3)), Ctx);
  EXPECT_EQ(R.TheVerdict, Verdict::Independent);
}

//===----------------------------------------------------------------------===//
// Strong SIV (section 4.2.1)
//===----------------------------------------------------------------------===//

TEST(StrongSIV, BasicDistance) {
  // <i + 1, i>: d = i' - i = 1.
  LoopNestContext Ctx = singleLoop("i", 1, 10);
  SIVResult R = testSIV(eq(idx("i") + LinearExpr(1), idx("i")), Ctx);
  EXPECT_EQ(R.Test, TestKind::StrongSIV);
  EXPECT_EQ(R.TheVerdict, Verdict::Dependent);
  EXPECT_TRUE(R.Exact);
  EXPECT_EQ(R.Distance, std::optional<int64_t>(1));
  EXPECT_EQ(R.Directions, DirLT);
  EXPECT_EQ(R.IndexConstraint, Constraint::distance(1));
}

TEST(StrongSIV, NonIntegerDistanceIndependent) {
  // <2i, 2i + 1>: d = -1/2.
  LoopNestContext Ctx = singleLoop("i", 1, 10);
  SIVResult R = testSIV(eq(idx("i", 2), idx("i", 2) + LinearExpr(1)), Ctx);
  EXPECT_EQ(R.TheVerdict, Verdict::Independent);
  EXPECT_EQ(R.Test, TestKind::StrongSIV);
}

TEST(StrongSIV, DistanceExceedsRange) {
  // d = 20 but the loop spans only 9 iterations apart.
  LoopNestContext Ctx = singleLoop("i", 1, 10);
  SIVResult R = testSIV(eq(idx("i") + LinearExpr(20), idx("i")), Ctx);
  EXPECT_EQ(R.TheVerdict, Verdict::Independent);
}

TEST(StrongSIV, NegativeDistance) {
  LoopNestContext Ctx = singleLoop("i", 1, 10);
  SIVResult R = testSIV(eq(idx("i"), idx("i") + LinearExpr(2)), Ctx);
  EXPECT_EQ(R.TheVerdict, Verdict::Dependent);
  EXPECT_EQ(R.Distance, std::optional<int64_t>(-2));
  EXPECT_EQ(R.Directions, DirGT);
}

TEST(StrongSIV, ZeroDistanceLoopIndependent) {
  LoopNestContext Ctx = singleLoop("i", 1, 10);
  SIVResult R = testSIV(eq(idx("i"), idx("i")), Ctx);
  EXPECT_EQ(R.TheVerdict, Verdict::Dependent);
  EXPECT_EQ(R.Distance, std::optional<int64_t>(0));
  EXPECT_EQ(R.Directions, DirEQ);
}

TEST(StrongSIV, UnboundedLoopIsMaybeWithDistance) {
  LoopNestContext Ctx = symbolicLoop("i");
  SIVResult R = testSIV(eq(idx("i") + LinearExpr(1), idx("i")), Ctx);
  EXPECT_EQ(R.TheVerdict, Verdict::Maybe);
  EXPECT_EQ(R.Distance, std::optional<int64_t>(1));
}

TEST(StrongSIV, SymbolicDistanceSignKnown) {
  // <i + n, i> with n in [1, inf): d = n >= 1, so only '<' and, with a
  // 10-iteration loop, independence cannot be proven but the direction
  // is pinned.
  LoopBounds B;
  B.Index = "i";
  B.Lower = LinearExpr(1);
  B.Upper = LinearExpr(10);
  SymbolRangeMap Symbols;
  Symbols["n"] = Interval(1, std::nullopt);
  LoopNestContext Ctx({B}, Symbols);
  SIVResult R = testSIV(
      eq(idx("i") + LinearExpr::symbol("n"), idx("i")), Ctx);
  EXPECT_EQ(R.Test, TestKind::SymbolicSIV);
  EXPECT_EQ(R.TheVerdict, Verdict::Maybe);
  EXPECT_EQ(R.Directions, DirLT);
}

TEST(StrongSIV, SymbolicDistanceTooLarge) {
  // <i + n, i> with n in [100, inf) in a 10-iteration loop: |d| > 9.
  LoopBounds B;
  B.Index = "i";
  B.Lower = LinearExpr(1);
  B.Upper = LinearExpr(10);
  SymbolRangeMap Symbols;
  Symbols["n"] = Interval(100, std::nullopt);
  LoopNestContext Ctx({B}, Symbols);
  SIVResult R = testSIV(
      eq(idx("i") + LinearExpr::symbol("n"), idx("i")), Ctx);
  EXPECT_EQ(R.TheVerdict, Verdict::Independent);
  EXPECT_EQ(R.Test, TestKind::SymbolicSIV);
}

//===----------------------------------------------------------------------===//
// Weak-zero SIV (section 4.2.2)
//===----------------------------------------------------------------------===//

TEST(WeakZeroSIV, FirstIterationPeel) {
  // <i, 1>: only source iteration 1 is involved (y(i) = y(1) pattern
  // reversed); peel-first flagged.
  LoopNestContext Ctx = singleLoop("i", 1, 10);
  SIVResult R = testSIV(eq(idx("i"), LinearExpr(1)), Ctx);
  EXPECT_EQ(R.Test, TestKind::WeakZeroSIV);
  EXPECT_EQ(R.TheVerdict, Verdict::Dependent);
  EXPECT_TRUE(R.PeelFirst);
  EXPECT_FALSE(R.PeelLast);
  // The equation i - 1 = 0 pins the *source* side; the sink is
  // unconstrained, and '>' drops out only because no sink iteration
  // lies below 1.
  EXPECT_EQ(R.Directions, DirectionSet(DirLT | DirEQ));
}

TEST(WeakZeroSIV, LastIterationPeel) {
  LoopNestContext Ctx = singleLoop("i", 1, 10);
  SIVResult R = testSIV(eq(idx("i"), LinearExpr(10)), Ctx);
  EXPECT_EQ(R.TheVerdict, Verdict::Dependent);
  EXPECT_TRUE(R.PeelLast);
  EXPECT_EQ(R.Directions, DirectionSet(DirGT | DirEQ));
}

TEST(WeakZeroSIV, MidIterationAllDirections) {
  LoopNestContext Ctx = singleLoop("i", 1, 10);
  SIVResult R = testSIV(eq(idx("i"), LinearExpr(5)), Ctx);
  EXPECT_EQ(R.TheVerdict, Verdict::Dependent);
  EXPECT_FALSE(R.PeelFirst);
  EXPECT_FALSE(R.PeelLast);
  EXPECT_EQ(R.Directions, DirAll);
  EXPECT_EQ(R.IndexConstraint, Constraint::line(1, 0, 5));
}

TEST(WeakZeroSIV, OutOfRangeIndependent) {
  LoopNestContext Ctx = singleLoop("i", 1, 10);
  EXPECT_EQ(testSIV(eq(idx("i"), LinearExpr(11)), Ctx).TheVerdict,
            Verdict::Independent);
  EXPECT_EQ(testSIV(eq(idx("i"), LinearExpr(0)), Ctx).TheVerdict,
            Verdict::Independent);
}

TEST(WeakZeroSIV, NonDivisibleIndependent) {
  // 2i = 5 has no integer solution.
  LoopNestContext Ctx = singleLoop("i", 1, 10);
  SIVResult R = testSIV(eq(idx("i", 2), LinearExpr(5)), Ctx);
  EXPECT_EQ(R.TheVerdict, Verdict::Independent);
}

TEST(WeakZeroSIV, SinkPinned) {
  // <3, i>: the sink iteration is pinned at 3.
  LoopNestContext Ctx = singleLoop("i", 1, 10);
  SIVResult R = testSIV(eq(LinearExpr(3), idx("i")), Ctx);
  EXPECT_EQ(R.TheVerdict, Verdict::Dependent);
  EXPECT_EQ(R.IndexConstraint, Constraint::line(0, 1, 3));
  EXPECT_EQ(R.Directions, DirAll);
}

TEST(WeakZeroSIV, SymbolicUpperBoundPeelLast) {
  // The tomcatv pattern: <i, n> in a loop 1..n pins the source to the
  // last iteration (symbolically).
  LoopNestContext Ctx = symbolicLoop("i", "n");
  SIVResult R = testSIV(eq(idx("i"), LinearExpr::symbol("n")), Ctx);
  EXPECT_EQ(R.Test, TestKind::SymbolicSIV);
  EXPECT_TRUE(R.PeelLast);
  // No sink iteration lies above n: '<' is impossible.
  EXPECT_EQ(R.Directions, DirectionSet(DirGT | DirEQ));
}

TEST(WeakZeroSIV, SymbolicOutOfRange) {
  // <i, n + 1> in a loop 1..n: the pinned iteration exceeds the bound.
  LoopNestContext Ctx = symbolicLoop("i", "n");
  SIVResult R = testSIV(
      eq(idx("i"), LinearExpr::symbol("n") + LinearExpr(1)), Ctx);
  EXPECT_EQ(R.TheVerdict, Verdict::Independent);
}

//===----------------------------------------------------------------------===//
// Weak-crossing SIV (section 4.2.3)
//===----------------------------------------------------------------------===//

TEST(WeakCrossingSIV, CDLExample) {
  // A(i) = A(N-i+1) with N = 10: i + i' = 11, crossing at 5.5.
  LoopNestContext Ctx = singleLoop("i", 1, 10);
  SIVResult R = testSIV(
      eq(idx("i"), idx("i", -1) + LinearExpr(11)), Ctx);
  EXPECT_EQ(R.Test, TestKind::WeakCrossingSIV);
  EXPECT_EQ(R.TheVerdict, Verdict::Dependent);
  ASSERT_TRUE(R.CrossingPoint.has_value());
  EXPECT_EQ(*R.CrossingPoint, Rational(11, 2));
  // Odd sum: no '=' direction.
  EXPECT_EQ(R.Directions, DirectionSet(DirLT | DirGT));
  EXPECT_EQ(R.IndexConstraint, Constraint::line(1, 1, 11));
}

TEST(WeakCrossingSIV, IntegerCrossingIncludesEqual) {
  // i + i' = 10: crossing at 5, '=' possible at i = i' = 5.
  LoopNestContext Ctx = singleLoop("i", 1, 10);
  SIVResult R = testSIV(
      eq(idx("i"), idx("i", -1) + LinearExpr(10)), Ctx);
  EXPECT_EQ(R.TheVerdict, Verdict::Dependent);
  EXPECT_EQ(*R.CrossingPoint, Rational(5));
  EXPECT_EQ(R.Directions, DirAll);
}

TEST(WeakCrossingSIV, CrossingOutsideBounds) {
  // i + i' = 30 needs iterations above 10 on one side.
  LoopNestContext Ctx = singleLoop("i", 1, 10);
  SIVResult R = testSIV(
      eq(idx("i"), idx("i", -1) + LinearExpr(30)), Ctx);
  EXPECT_EQ(R.TheVerdict, Verdict::Independent);
}

TEST(WeakCrossingSIV, NonIntegerSumIndependent) {
  // 2i + 2i' = 5: the sum would be 5/2.
  LoopNestContext Ctx = singleLoop("i", 1, 10);
  SIVResult R = testSIV(
      eq(idx("i", 2), idx("i", -2) + LinearExpr(5)), Ctx);
  EXPECT_EQ(R.TheVerdict, Verdict::Independent);
}

TEST(WeakCrossingSIV, BoundaryCrossingOnlyEqual) {
  // i + i' = 2 in [1, 10]: only i = i' = 1.
  LoopNestContext Ctx = singleLoop("i", 1, 10);
  SIVResult R = testSIV(
      eq(idx("i"), idx("i", -1) + LinearExpr(2)), Ctx);
  EXPECT_EQ(R.TheVerdict, Verdict::Dependent);
  EXPECT_EQ(R.Directions, DirEQ);
}

TEST(WeakCrossingSIV, HalfIntegralAtBoundaryIndependentDirections) {
  // i + i' = 21 in [1, 10]: i = 10.5 needed... actually i=10,i'=11 out
  // of range either way: independent.
  LoopNestContext Ctx = singleLoop("i", 1, 10);
  SIVResult R = testSIV(
      eq(idx("i"), idx("i", -1) + LinearExpr(21)), Ctx);
  EXPECT_EQ(R.TheVerdict, Verdict::Independent);
}

//===----------------------------------------------------------------------===//
// Exact (general) SIV
//===----------------------------------------------------------------------===//

TEST(ExactSIV, GcdDisproof) {
  // 2i = 2i' + 1: parity.
  LoopNestContext Ctx = singleLoop("i", 1, 100);
  SIVResult R = testSIV(
      eq(idx("i", 2), idx("i", 2) + LinearExpr(1)), Ctx);
  // This is strong-SIV-shaped; use different coefficients instead:
  // 2i vs 4i' + 1.
  R = testSIV(eq(idx("i", 2), idx("i", 4) + LinearExpr(1)), Ctx);
  EXPECT_EQ(R.Test, TestKind::ExactSIV);
  EXPECT_EQ(R.TheVerdict, Verdict::Independent);
}

TEST(ExactSIV, SolutionWithinBounds) {
  // i = 2i': solutions (2,1), (4,2), ... within [1, 10].
  LoopNestContext Ctx = singleLoop("i", 1, 10);
  SIVResult R = testSIV(eq(idx("i"), idx("i", 2)), Ctx);
  EXPECT_EQ(R.Test, TestKind::ExactSIV);
  EXPECT_EQ(R.TheVerdict, Verdict::Dependent);
  EXPECT_TRUE(R.Exact);
  // d = i' - i = -i' < 0 always: direction '>'.
  EXPECT_EQ(R.Directions, DirGT);
}

TEST(ExactSIV, SolutionOutsideBounds) {
  // i = 2i' - 40: needs i' >= 21 for i >= 2... check [1, 10]:
  // i = 2i' - 40 <= -20 < 1. Independent.
  LoopNestContext Ctx = singleLoop("i", 1, 10);
  SIVResult R = testSIV(
      eq(idx("i"), idx("i", 2) - LinearExpr(40)), Ctx);
  EXPECT_EQ(R.TheVerdict, Verdict::Independent);
}

TEST(ExactSIV, MixedDirections) {
  // i = 2i' - 6: solutions (2,4),(4,5),(6,6),(8,7),(10,8) in [1,10]:
  // d = i' - i takes 2,1,0,-1,-2: all three directions.
  LoopNestContext Ctx = singleLoop("i", 1, 10);
  SIVResult R = testSIV(
      eq(idx("i"), idx("i", 2) - LinearExpr(6)), Ctx);
  EXPECT_EQ(R.TheVerdict, Verdict::Dependent);
  EXPECT_EQ(R.Directions, DirAll);
}

TEST(ExactSIV, ConstraintIsLine) {
  LoopNestContext Ctx = singleLoop("i", 1, 10);
  SIVResult R = testSIV(eq(idx("i"), idx("i", 2)), Ctx);
  // i - 2i' = 0.
  EXPECT_EQ(R.IndexConstraint, Constraint::line(1, -2, 0));
}

//===----------------------------------------------------------------------===//
// RDIV (section 4.4)
//===----------------------------------------------------------------------===//

TEST(RDIV, BasicFeasible) {
  // i = j' + 1 over i in [1,10], j in [1,10].
  LoopNestContext Ctx = doubleLoop("i", 1, 10, "j", 1, 10);
  SIVResult R = testRDIV(eq(idx("i"), idx("j") + LinearExpr(1)), Ctx);
  EXPECT_EQ(R.Test, TestKind::RDIV);
  EXPECT_EQ(R.TheVerdict, Verdict::Dependent);
  EXPECT_TRUE(R.Exact);
}

TEST(RDIV, DisjointRanges) {
  // i = j' + 100: ranges cannot meet.
  LoopNestContext Ctx = doubleLoop("i", 1, 10, "j", 1, 10);
  SIVResult R = testRDIV(
      eq(idx("i"), idx("j") + LinearExpr(100)), Ctx);
  EXPECT_EQ(R.TheVerdict, Verdict::Independent);
}

TEST(RDIV, GcdDisproof) {
  // 2i = 2j' + 1.
  LoopNestContext Ctx = doubleLoop("i", 1, 10, "j", 1, 10);
  SIVResult R = testRDIV(
      eq(idx("i", 2), idx("j", 2) + LinearExpr(1)), Ctx);
  EXPECT_EQ(R.TheVerdict, Verdict::Independent);
}

TEST(RDIV, AsymmetricRanges) {
  // The paper's point: RDIV observes *different* bounds per index.
  // i = j' with i in [1, 5], j in [6, 10]: independent.
  LoopNestContext Ctx = doubleLoop("i", 1, 5, "j", 6, 10);
  SIVResult R = testRDIV(eq(idx("i"), idx("j")), Ctx);
  EXPECT_EQ(R.TheVerdict, Verdict::Independent);
}

//===----------------------------------------------------------------------===//
// Dispatcher
//===----------------------------------------------------------------------===//

TEST(SingleSubscript, DispatchesByShape) {
  LoopNestContext Ctx = doubleLoop("i", 1, 10, "j", 1, 10);
  EXPECT_EQ(testSingleSubscript(eq(LinearExpr(1), LinearExpr(2)), Ctx).Test,
            TestKind::ZIV);
  EXPECT_EQ(
      testSingleSubscript(eq(idx("i") + LinearExpr(1), idx("i")), Ctx).Test,
      TestKind::StrongSIV);
  EXPECT_EQ(testSingleSubscript(eq(idx("i"), idx("j")), Ctx).Test,
            TestKind::RDIV);
  // MIV equations are not single-subscript testable.
  EXPECT_EQ(
      testSingleSubscript(eq(idx("i") + idx("j"), idx("i")), Ctx).TheVerdict,
      Verdict::Maybe);
}

//===----------------------------------------------------------------------===//
// Two-variable Diophantine engine
//===----------------------------------------------------------------------===//

TEST(TwoVarEquation, ExhaustiveAgreement) {
  // Compare against brute force for a sweep of coefficients.
  Interval X(1, 6), Y(2, 5);
  for (int64_t A = -3; A <= 3; ++A) {
    for (int64_t B = -3; B <= 3; ++B) {
      for (int64_t C = -10; C <= 10; ++C) {
        bool Exists = false;
        for (int64_t XV = 1; XV <= 6 && !Exists; ++XV)
          for (int64_t YV = 2; YV <= 5 && !Exists; ++YV)
            Exists = A * XV + B * YV + C == 0;
        Verdict V = solveTwoVariableEquation(A, X, B, Y, C);
        if (Exists)
          EXPECT_EQ(V, Verdict::Dependent)
              << A << "x + " << B << "y + " << C;
        else
          EXPECT_EQ(V, Verdict::Independent)
              << A << "x + " << B << "y + " << C;
      }
    }
  }
}

TEST(TwoVarEquation, UnboundedIsMaybe) {
  Interval X(1, std::nullopt), Y(1, 10);
  EXPECT_EQ(solveTwoVariableEquation(1, X, -1, Y, 0), Verdict::Maybe);
}

TEST(TwoVarEquation, EmptyRangeIndependent) {
  EXPECT_EQ(solveTwoVariableEquation(1, Interval::empty(), -1,
                                     Interval(1, 10), 0),
            Verdict::Independent);
}
