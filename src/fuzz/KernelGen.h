//===- fuzz/KernelGen.h - Stratified deterministic generator ----*- C++ -*-===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fuzzer's kernel generator, extending driver/WorkloadGenerator's
/// population model with explicit strata over the paper's subscript
/// taxonomy plus hostile-input classes (symbolic bounds, degenerate
/// loops, near-overflow constants).
///
/// Determinism contract: generateFuzzKernel(Seed, Index, Config) is a
/// pure function — kernel Index draws from its own RNG seeded by a
/// splitmix64 hash of (Seed, Index), never from shared generator
/// state. A campaign's kernel stream is therefore byte-identical at
/// every thread count and every work-stealing schedule, and any kernel
/// can be regenerated in isolation from its coordinates.
///
//===----------------------------------------------------------------------===//

#ifndef PDT_FUZZ_KERNELGEN_H
#define PDT_FUZZ_KERNELGEN_H

#include "fuzz/FuzzKernel.h"

#include <cstdint>

namespace pdt {

/// Shape of the generated kernel population. Defaults keep the
/// iteration space small enough for the Oracle to enumerate every
/// kernel exhaustively.
struct FuzzGenConfig {
  unsigned MaxDepth = 3;   ///< Loop nest depth drawn from [1, MaxDepth].
  unsigned MaxDims = 2;    ///< Array rank drawn from [1, MaxDims].
  unsigned MaxStmts = 3;   ///< Statements drawn from [1, MaxStmts].
  int64_t MaxBound = 4;    ///< Upper bounds drawn from [1, MaxBound].
  int64_t CoeffRange = 3;  ///< Index coefficients from [-R, R].
  int64_t ConstRange = 4;  ///< Additive constants from [-R, R].
};

/// Generates kernel \p Index of the campaign \p Seed. The stratum is
/// Index % NumFuzzStrata, so every stratum is exercised exactly
/// ceil/floor(Count / NumFuzzStrata) times in a campaign of Count
/// kernels.
FuzzKernel generateFuzzKernel(uint64_t Seed, uint64_t Index,
                              const FuzzGenConfig &Config = {});

/// The splitmix64-style per-kernel seed hash (exposed for the
/// determinism tests).
uint64_t fuzzKernelSeed(uint64_t Seed, uint64_t Index);

} // namespace pdt

#endif // PDT_FUZZ_KERNELGEN_H
