//===- tests/core/ResultStoreTest.cpp -----------------------------------------===//
//
// The persistent result cache's correctness contract: canonical keys
// unify alpha-renamed and bound-shifted nests, warm runs are
// byte-identical to cold runs (graphs and statistics), generation skew
// from an analyzer-options change invalidates wholesale, degraded
// results are never persisted, and a store killed mid-write at every
// injected I/O site recovers to byte-identical verdicts. Every test
// skips when the store is compiled out (PDT_PERSISTENT_STORE=OFF).
//
//===----------------------------------------------------------------------===//

#include "core/ResultStore.h"

#include "driver/Analyzer.h"
#include "support/FaultInjector.h"

#include "../TestHelpers.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include <sys/wait.h>
#include <unistd.h>

using namespace pdt;
using namespace pdt::test;

namespace {

namespace fs = std::filesystem;

struct TempDir {
  fs::path Path;
  explicit TempDir(const std::string &Tag) {
    static int Counter = 0;
    Path = fs::temp_directory_path() /
           ("pdt-rstore-test-" + std::to_string(::getpid()) + "-" + Tag + "-" +
            std::to_string(Counter++));
    fs::remove_all(Path);
  }
  ~TempDir() {
    std::error_code EC;
    fs::remove_all(Path, EC);
  }
  std::string str() const { return Path.string(); }
};

/// RAII activation of the process-wide store; deactivates on scope
/// exit so no test leaks a store into the next.
struct ActiveStore {
  ActiveStore(const std::string &Dir, const AnalyzerOptions &Opt) {
    EXPECT_TRUE(ResultStore::activate(Dir, analyzerOptionsFingerprint(Opt)));
  }
  ~ActiveStore() { ResultStore::deactivate(); }
};

AnalyzerOptions plainOptions() {
  AnalyzerOptions Opt;
  Opt.NumThreads = 1; // Deterministic pair order for stat comparisons.
  return Opt;
}

AnalysisResult analyze(const std::string &Source) {
  AnalysisResult R = analyzeSource(Source, "store-test", plainOptions());
  EXPECT_TRUE(R.Parsed);
  return R;
}

/// A kernel exercising SIV distances, a coupled group, and an MIV
/// subscript — enough shape variety that hint dehydration runs too.
const char *const Kernel = R"(
do i = 2, 60
  do j = 1, 40
    a(i, j) = a(i-1, j+2) + b(i+j) + c(j)
    b(i) = a(i, j) + c(j-1)
  end do
end do
)";

/// The same kernel alpha-renamed (i,j -> p,q) and bound-shifted
/// (p starts at 7 instead of 2, every use compensated by -5): its
/// canonical content is identical to Kernel's.
const char *const RenamedShiftedKernel = R"(
do p = 7, 65
  do q = 1, 40
    a(p-5, q) = a(p-6, q+2) + b(p+q-5) + c(q)
    b(p-5) = a(p-5, q) + c(q-1)
  end do
end do
)";

#define SKIP_WITHOUT_STORE()                                                   \
  if (!resultStoreCompiledIn())                                                \
    GTEST_SKIP() << "PDT_PERSISTENT_STORE is compiled out"

TEST(ResultStore, CanonicalizeUnifiesRenamedShiftedNests) {
  SKIP_WITHOUT_STORE();
  LoopNestContext A = singleLoop("i", 2, 11);
  LoopNestContext B = singleLoop("k", 5, 14);
  // A(i) = A(i-1) over i in [2,11]  vs  A(k-3) = A(k-4) over k in [5,14]:
  // both normalize to level %0 in [0,9].
  std::vector<SubscriptPair> SubsA = {
      SubscriptPair(LinearExpr::index("i"),
                    LinearExpr::index("i") - LinearExpr(1), 0)};
  std::vector<SubscriptPair> SubsB = {
      SubscriptPair(LinearExpr::index("k") - LinearExpr(3),
                    LinearExpr::index("k") - LinearExpr(4), 0)};
  std::optional<CanonicalPair> QA = ResultStore::canonicalize(SubsA, A);
  std::optional<CanonicalPair> QB = ResultStore::canonicalize(SubsB, B);
  ASSERT_TRUE(QA);
  ASSERT_TRUE(QB);
  EXPECT_EQ(QA->Key, QB->Key);
  EXPECT_EQ(QA->Shift, (std::vector<int64_t>{2}));
  EXPECT_EQ(QB->Shift, (std::vector<int64_t>{5}));

  // A genuinely different access must not collide.
  std::vector<SubscriptPair> SubsC = {
      SubscriptPair(LinearExpr::index("i"),
                    LinearExpr::index("i") - LinearExpr(2), 0)};
  std::optional<CanonicalPair> QC = ResultStore::canonicalize(SubsC, A);
  ASSERT_TRUE(QC);
  EXPECT_NE(QC->Key, QA->Key);
}

TEST(ResultStore, RenamedShiftedProgramsHitEachOthersRecords) {
  SKIP_WITHOUT_STORE();
  AnalysisResult Baseline = analyze(Kernel);
  AnalysisResult BaselineRenamed = analyze(RenamedShiftedKernel);

  TempDir Dir("alpha");
  ActiveStore Store(Dir.str(), plainOptions());
  AnalysisResult Cold = analyze(Kernel);
  EXPECT_EQ(Cold.Graph.str(), Baseline.Graph.str());
  EXPECT_GT(Cold.Stats.StoreMisses, 0u);
  EXPECT_EQ(Cold.Stats.StoreHits, 0u);

  AnalysisResult Renamed = analyze(RenamedShiftedKernel);
  EXPECT_EQ(Renamed.Graph.str(), BaselineRenamed.Graph.str());
  EXPECT_GT(Renamed.Stats.StoreHits, 0u)
      << "alpha-renamed, bound-shifted kernel missed every shared record";
  EXPECT_EQ(Renamed.Stats.StoreMisses, 0u);
  // Served answers count as results exactly like computed ones.
  EXPECT_EQ(Renamed.Stats, BaselineRenamed.Stats);
}

TEST(ResultStore, WarmRunAcrossReopenIsByteIdentical) {
  SKIP_WITHOUT_STORE();
  AnalysisResult Baseline = analyze(Kernel);

  TempDir Dir("warm");
  {
    ActiveStore Store(Dir.str(), plainOptions());
    AnalysisResult Cold = analyze(Kernel);
    EXPECT_EQ(Cold.Graph.str(), Baseline.Graph.str());
    EXPECT_EQ(Cold.Stats, Baseline.Stats);
    EXPECT_GT(Cold.Stats.StoreMisses, 0u);
  }
  // Fresh activation = fresh process: everything replayed from disk.
  ActiveStore Store(Dir.str(), plainOptions());
  AnalysisResult Warm = analyze(Kernel);
  EXPECT_EQ(Warm.Graph.str(), Baseline.Graph.str());
  EXPECT_EQ(Warm.Stats, Baseline.Stats)
      << "replayed TestStats deltas must make a warm run's statistics "
         "indistinguishable from a cold run's";
  EXPECT_GT(Warm.Stats.StoreHits, 0u);
  EXPECT_EQ(Warm.Stats.StoreMisses, 0u);
}

TEST(ResultStore, OptionsSkewInvalidatesWholesale) {
  SKIP_WITHOUT_STORE();
  TempDir Dir("skew");
  {
    ActiveStore Store(Dir.str(), plainOptions());
    analyze(Kernel);
  }
  AnalyzerOptions Other = plainOptions();
  Other.DefaultSymbolRange = Interval(0, 7);
  ASSERT_NE(analyzerOptionsFingerprint(Other),
            analyzerOptionsFingerprint(plainOptions()));
  {
    // Different options fingerprint: every record of the old
    // generation must be invalidated, so the run is fully cold.
    ActiveStore Store(Dir.str(), Other);
    std::shared_ptr<ResultStore> Active = ResultStore::active();
    ASSERT_TRUE(Active);
    EXPECT_EQ(Active->size(), 0u);
    EXPECT_GE(Active->recoveryStats().StaleSegments, 1u);
    AnalysisResult R = analyzeSource(Kernel, "store-test", Other);
    EXPECT_EQ(R.Stats.StoreHits, 0u);
    EXPECT_GT(R.Stats.StoreMisses, 0u);
  }
  // And returning to the original options does not resurrect them.
  ActiveStore Store(Dir.str(), plainOptions());
  AnalysisResult R = analyze(Kernel);
  EXPECT_EQ(R.Stats.StoreHits, 0u);
}

TEST(ResultStore, BypassGuardHidesTheStoreOnThisThread) {
  SKIP_WITHOUT_STORE();
  TempDir Dir("bypass");
  ActiveStore Store(Dir.str(), plainOptions());
  ASSERT_TRUE(ResultStore::active());
  {
    StoreBypassGuard Guard;
    EXPECT_FALSE(ResultStore::active());
    {
      StoreBypassGuard Nested;
      EXPECT_FALSE(ResultStore::active());
    }
    EXPECT_FALSE(ResultStore::active());
  }
  EXPECT_TRUE(ResultStore::active());
}

TEST(ResultStore, DegradedResultsAreNeverPersisted) {
  SKIP_WITHOUT_STORE();
  TempDir Dir("degraded");
  ActiveStore Store(Dir.str(), plainOptions());
  std::shared_ptr<ResultStore> Active = ResultStore::active();
  ASSERT_TRUE(Active);

  LoopNestContext Ctx = singleLoop("i", 1, 10);
  std::vector<SubscriptPair> Subs = {
      SubscriptPair(LinearExpr::index("i"),
                    LinearExpr::index("i") - LinearExpr(1), 0)};
  std::optional<CanonicalPair> Q = ResultStore::canonicalize(Subs, Ctx);
  ASSERT_TRUE(Q);

  DependenceTestResult Degraded;
  Degraded.TheVerdict = Verdict::Maybe;
  Degraded.Degraded = true;
  Active->insert(*Q, Degraded, TestStats());
  EXPECT_EQ(Active->size(), 0u)
      << "a degraded (possibly transient) result was persisted";

  DependenceTestResult Sound = Degraded;
  Sound.Degraded = false;
  Active->insert(*Q, Sound, TestStats());
  EXPECT_EQ(Active->size(), 1u);
}

TEST(ResultStore, CorruptedSegmentsHealToIdenticalVerdicts) {
  SKIP_WITHOUT_STORE();
  AnalysisResult Baseline = analyze(Kernel);
  TempDir Dir("corrupt");
  {
    ActiveStore Store(Dir.str(), plainOptions());
    analyze(Kernel);
  }
  // Flip one byte in the middle of every segment file.
  unsigned Flipped = 0;
  for (const auto &Entry : fs::directory_iterator(Dir.Path)) {
    if (!Entry.is_regular_file())
      continue;
    std::fstream F(Entry.path(),
                   std::ios::in | std::ios::out | std::ios::binary);
    F.seekg(0, std::ios::end);
    std::streamoff Size = F.tellg();
    ASSERT_GT(Size, 0);
    F.seekp(Size / 2);
    char C;
    F.seekg(Size / 2);
    F.get(C);
    F.seekp(Size / 2);
    F.put(static_cast<char>(C ^ 0x7F));
    ++Flipped;
  }
  ASSERT_GT(Flipped, 0u);

  ActiveStore Store(Dir.str(), plainOptions());
  std::shared_ptr<ResultStore> Active = ResultStore::active();
  ASSERT_TRUE(Active);
  EXPECT_GE(Active->recoveryStats().Quarantined, 1u);
  AnalysisResult Healed = analyze(Kernel);
  EXPECT_EQ(Healed.Graph.str(), Baseline.Graph.str());
  EXPECT_EQ(Healed.Stats, Baseline.Stats);
}

// The kill-mid-write gate: a process that dies with an io_* fault
// injected at any site must leave a directory from which the next
// activation recovers byte-identical verdicts. The child skips all
// teardown (_exit), so nothing is flushed beyond what the injected
// fault left behind.
TEST(ResultStore, KillMidWriteRecoversIdenticalVerdictsAtEverySite) {
  SKIP_WITHOUT_STORE();
  AnalysisResult Baseline = analyze(Kernel);

  constexpr IoFaultKind Kinds[] = {IoFaultKind::Open, IoFaultKind::Write,
                                   IoFaultKind::Fsync, IoFaultKind::TornTail};
  for (IoFaultKind Kind : Kinds) {
    for (uint64_t Site = 1; Site <= 4; ++Site) {
      TempDir Dir("kill");
      pid_t Child = fork();
      ASSERT_GE(Child, 0);
      if (Child == 0) {
        // In the child: die (no destructors, no flush) right after the
        // faulted analysis. Any crash here shows up as a non-zero exit.
        FaultInjector::armIo(Kind, Site);
        if (!ResultStore::activate(Dir.str(), analyzerOptionsFingerprint(
                                                  plainOptions())))
          _exit(3);
        AnalysisResult R =
            analyzeSource(Kernel, "store-test", plainOptions());
        _exit(R.Parsed && R.Graph.str() == Baseline.Graph.str() ? 0 : 4);
      }
      int Status = 0;
      ASSERT_EQ(waitpid(Child, &Status, 0), Child);
      ASSERT_TRUE(WIFEXITED(Status))
          << ioFaultKindName(Kind) << "@" << Site << " crashed the child";
      ASSERT_EQ(WEXITSTATUS(Status), 0)
          << ioFaultKindName(Kind) << "@" << Site
          << " changed verdicts or failed activation in the child";

      // The survivor image, whatever it is, must recover to the same
      // answers.
      ActiveStore Store(Dir.str(), plainOptions());
      AnalysisResult Recovered = analyze(Kernel);
      EXPECT_EQ(Recovered.Graph.str(), Baseline.Graph.str())
          << ioFaultKindName(Kind) << "@" << Site;
      EXPECT_EQ(Recovered.Stats, Baseline.Stats)
          << ioFaultKindName(Kind) << "@" << Site;
    }
  }
}

TEST(ResultStore, BrokenStoreStillServesAndAnalysisSucceeds) {
  SKIP_WITHOUT_STORE();
  AnalysisResult Baseline = analyze(Kernel);
  TempDir Dir("brokenserve");
  struct InjectorGuard {
    ~InjectorGuard() { FaultInjector::disarm(); }
  } Guard;
  FaultInjector::armIo(IoFaultKind::Write, 1);
  ActiveStore Store(Dir.str(), plainOptions());
  AnalysisResult R = analyze(Kernel);
  EXPECT_EQ(R.Graph.str(), Baseline.Graph.str());
  std::shared_ptr<ResultStore> Active = ResultStore::active();
  ASSERT_TRUE(Active);
  EXPECT_TRUE(Active->broken());
}

} // namespace
