# Empty compiler generated dependencies file for bench_micro_tests.
# This may be replaced when dependencies are built.
