
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/ASTRewriter.cpp" "src/analysis/CMakeFiles/pdt_analysis.dir/ASTRewriter.cpp.o" "gcc" "src/analysis/CMakeFiles/pdt_analysis.dir/ASTRewriter.cpp.o.d"
  "/root/repo/src/analysis/InductionSubstitution.cpp" "src/analysis/CMakeFiles/pdt_analysis.dir/InductionSubstitution.cpp.o" "gcc" "src/analysis/CMakeFiles/pdt_analysis.dir/InductionSubstitution.cpp.o.d"
  "/root/repo/src/analysis/LoopNest.cpp" "src/analysis/CMakeFiles/pdt_analysis.dir/LoopNest.cpp.o" "gcc" "src/analysis/CMakeFiles/pdt_analysis.dir/LoopNest.cpp.o.d"
  "/root/repo/src/analysis/Normalization.cpp" "src/analysis/CMakeFiles/pdt_analysis.dir/Normalization.cpp.o" "gcc" "src/analysis/CMakeFiles/pdt_analysis.dir/Normalization.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/pdt_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pdt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
