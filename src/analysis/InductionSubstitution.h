//===- analysis/InductionSubstitution.h - Auxiliary IVs ---------*- C++ -*-===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Auxiliary induction-variable substitution. The paper assumes "all
/// auxiliary induction variables have been detected and replaced by
/// linear functions of the loop indices" (section 1.5, citing
/// [2, 3, 5, 52]); this pass is that substrate.
///
/// Recognized pattern (the classical one):
///
///   k = init            ! affine in outer indices/symbols
///   do i = 1, n
///     ... uses of k ...       ! k here is init + (i-1)*c
///     k = k + c               ! single update, c loop-invariant
///     ... uses of k ...       ! k here is init + i*c
///   end do
///                              ! afterwards k = init + n*c
///
/// Uses of k inside the loop are replaced by the closed form, the
/// update statement is removed, and a final assignment after the loop
/// preserves the live-out value. Loops must be normalized (step 1)
/// first; unrecognized patterns are left untouched, which only costs
/// precision (subscripts stay nonlinear/symbolic), never soundness.
///
//===----------------------------------------------------------------------===//

#ifndef PDT_ANALYSIS_INDUCTIONSUBSTITUTION_H
#define PDT_ANALYSIS_INDUCTIONSUBSTITUTION_H

#include "ir/AST.h"

namespace pdt {

/// Returns a copy of \p P with recognized auxiliary induction
/// variables replaced by linear functions of the loop indices.
Program substituteInductionVariables(const Program &P);

} // namespace pdt

#endif // PDT_ANALYSIS_INDUCTIONSUBSTITUTION_H
