//===- bench/bench_micro_tests.cpp -----------------------------------------===//
//
// Microbenchmarks of the individual dependence tests, supporting the
// paper's per-test cost ordering: ZIV < strong SIV < weak SIV forms <
// exact SIV < GCD < Banerjee hierarchy < Delta (coupled group) <<
// Fourier-Motzkin.
//
//===----------------------------------------------------------------------===//

#include "core/DeltaTest.h"
#include "core/FourierMotzkin.h"
#include "core/MIVTests.h"
#include "core/SIVTests.h"

#include <benchmark/benchmark.h>

using namespace pdt;

namespace {

LinearExpr idx(const char *N, int64_t C = 1) {
  return LinearExpr::index(N, C);
}

const LoopNestContext &nest2() {
  static const LoopNestContext Ctx = [] {
    LoopBounds I, J;
    I.Index = "i";
    I.Lower = LinearExpr(1);
    I.Upper = LinearExpr(100);
    J.Index = "j";
    J.Lower = LinearExpr(1);
    J.Upper = LinearExpr(100);
    return LoopNestContext({I, J}, SymbolRangeMap());
  }();
  return Ctx;
}

void BM_ZIV(benchmark::State &State) {
  LinearExpr Eq = SubscriptPair(LinearExpr(3), LinearExpr(5)).equation();
  for (auto _ : State)
    benchmark::DoNotOptimize(testZIV(Eq, nest2()).TheVerdict);
}
BENCHMARK(BM_ZIV);

void BM_StrongSIV(benchmark::State &State) {
  LinearExpr Eq =
      SubscriptPair(idx("i") + LinearExpr(1), idx("i")).equation();
  for (auto _ : State)
    benchmark::DoNotOptimize(testSIV(Eq, nest2()).TheVerdict);
}
BENCHMARK(BM_StrongSIV);

void BM_WeakZeroSIV(benchmark::State &State) {
  LinearExpr Eq = SubscriptPair(idx("i"), LinearExpr(1)).equation();
  for (auto _ : State)
    benchmark::DoNotOptimize(testSIV(Eq, nest2()).TheVerdict);
}
BENCHMARK(BM_WeakZeroSIV);

void BM_WeakCrossingSIV(benchmark::State &State) {
  LinearExpr Eq =
      SubscriptPair(idx("i"), idx("i", -1) + LinearExpr(101)).equation();
  for (auto _ : State)
    benchmark::DoNotOptimize(testSIV(Eq, nest2()).TheVerdict);
}
BENCHMARK(BM_WeakCrossingSIV);

void BM_ExactSIV(benchmark::State &State) {
  LinearExpr Eq =
      SubscriptPair(idx("i", 2), idx("i", 3) + LinearExpr(1)).equation();
  for (auto _ : State)
    benchmark::DoNotOptimize(testSIV(Eq, nest2()).TheVerdict);
}
BENCHMARK(BM_ExactSIV);

void BM_RDIV(benchmark::State &State) {
  LinearExpr Eq =
      SubscriptPair(idx("i"), idx("j") + LinearExpr(1)).equation();
  for (auto _ : State)
    benchmark::DoNotOptimize(testRDIV(Eq, nest2()).TheVerdict);
}
BENCHMARK(BM_RDIV);

void BM_GCD(benchmark::State &State) {
  LinearExpr Eq = SubscriptPair(idx("i", 2) + idx("j", 2),
                                idx("i", 2) + idx("j", 4) + LinearExpr(1))
                      .equation();
  for (auto _ : State)
    benchmark::DoNotOptimize(testGCD(Eq, nest2()).TheVerdict);
}
BENCHMARK(BM_GCD);

void BM_BanerjeeHierarchy(benchmark::State &State) {
  LinearExpr Eq =
      SubscriptPair(idx("i") + idx("j"), idx("i") + idx("j", 2)).equation();
  for (auto _ : State)
    benchmark::DoNotOptimize(testBanerjee(Eq, nest2()).TheVerdict);
}
BENCHMARK(BM_BanerjeeHierarchy);

void BM_DeltaCoupledGroup(benchmark::State &State) {
  std::vector<SubscriptPair> Group = {
      SubscriptPair(idx("i") + LinearExpr(1), idx("i"), 0),
      SubscriptPair(idx("i") + idx("j"), idx("i") + idx("j"), 1)};
  for (auto _ : State)
    benchmark::DoNotOptimize(runDeltaTest(Group, nest2()).TheVerdict);
}
BENCHMARK(BM_DeltaCoupledGroup);

void BM_FourierMotzkinPair(benchmark::State &State) {
  std::vector<SubscriptPair> Subs = {
      SubscriptPair(idx("i") + LinearExpr(1), idx("i"), 0),
      SubscriptPair(idx("i") + idx("j"), idx("i") + idx("j"), 1)};
  for (auto _ : State)
    benchmark::DoNotOptimize(fourierMotzkinTest(Subs, nest2()));
}
BENCHMARK(BM_FourierMotzkinPair);

} // namespace

BENCHMARK_MAIN();
