//===- core/MIVTests.h - GCD and Banerjee MIV tests -------------*- C++ -*-===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MIV tests of paper section 4.4: the GCD test (unconstrained
/// integer solutions) and Banerjee's inequalities evaluated over a
/// direction-vector hierarchy (Burke-Cytron refinement). The Banerjee
/// bounds are computed from the maximal index ranges of the
/// index-range analysis, which is how the paper handles triangular and
/// trapezoidal nests ("triangular Banerjee", sections 4.3/4.4).
///
//===----------------------------------------------------------------------===//

#ifndef PDT_CORE_MIVTESTS_H
#define PDT_CORE_MIVTESTS_H

#include "analysis/LoopNest.h"
#include "core/DependenceTypes.h"
#include "core/TestStats.h"

#include <vector>

namespace pdt {

class LinearExpr;

/// Result of an MIV test on one tagged dependence equation.
struct MIVResult {
  Verdict TheVerdict = Verdict::Maybe;
  TestKind Test = TestKind::Banerjee;
  /// Direction vectors (over the full nest depth) under which a
  /// dependence remains possible. Levels whose index does not occur in
  /// the equation stay '*'. Populated by the Banerjee hierarchy;
  /// meaningful only when the verdict is not Independent.
  std::vector<DependenceVector> Vectors;
};

/// GCD test: the gcd of all index coefficients must divide the
/// constant term. Handles symbolic additive constants whose symbol
/// coefficients are all divisible by the gcd. Never proves dependence
/// (solutions may lie outside the loop bounds): verdict is Independent
/// or Maybe.
MIVResult testGCD(const LinearExpr &Eq, const LoopNestContext &Ctx,
                  TestStats *Stats = nullptr);

/// Banerjee's inequalities with hierarchical direction refinement:
/// bounds the equation's value under each direction-vector hypothesis
/// and prunes hypotheses that cannot reach zero. Returns Independent
/// when no direction vector survives.
MIVResult testBanerjee(const LinearExpr &Eq, const LoopNestContext &Ctx,
                       TestStats *Stats = nullptr);

/// The paper's MIV strategy: GCD first (cheap), then the Banerjee
/// hierarchy for direction vectors.
MIVResult testMIV(const LinearExpr &Eq, const LoopNestContext &Ctx,
                  TestStats *Stats = nullptr);

/// Value bounds of the equation under one direction-vector hypothesis
/// (exposed for unit tests and the geometric figure bench). \p Dirs
/// must have one entry per nest level (DirAll for unconstrained).
/// Returns the empty interval when the hypothesis itself is infeasible
/// (e.g. '<' in a single-iteration loop).
Interval banerjeeBounds(const LinearExpr &Eq, const LoopNestContext &Ctx,
                        const std::vector<DirectionSet> &Dirs);

} // namespace pdt

#endif // PDT_CORE_MIVTESTS_H
