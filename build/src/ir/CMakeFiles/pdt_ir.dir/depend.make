# Empty dependencies file for pdt_ir.
# This may be replaced when dependencies are built.
