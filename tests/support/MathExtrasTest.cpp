//===- tests/support/MathExtrasTest.cpp -----------------------------------===//
//
// Unit tests for the integer math helpers.
//
//===----------------------------------------------------------------------===//

#include "support/MathExtras.h"

#include <gtest/gtest.h>

using namespace pdt;

TEST(MathExtras, GcdBasics) {
  EXPECT_EQ(gcd64(12, 18), 6);
  EXPECT_EQ(gcd64(18, 12), 6);
  EXPECT_EQ(gcd64(7, 13), 1);
  EXPECT_EQ(gcd64(0, 5), 5);
  EXPECT_EQ(gcd64(5, 0), 5);
  EXPECT_EQ(gcd64(0, 0), 0);
}

TEST(MathExtras, GcdNegativeOperands) {
  EXPECT_EQ(gcd64(-12, 18), 6);
  EXPECT_EQ(gcd64(12, -18), 6);
  EXPECT_EQ(gcd64(-12, -18), 6);
  EXPECT_EQ(gcd64(INT64_MIN, 2), 2);
}

TEST(MathExtras, Lcm) {
  EXPECT_EQ(lcm64(4, 6), std::optional<int64_t>(12));
  EXPECT_EQ(lcm64(-4, 6), std::optional<int64_t>(12));
  EXPECT_EQ(lcm64(0, 6), std::nullopt);
  EXPECT_EQ(lcm64(INT64_MAX, INT64_MAX - 1), std::nullopt);
}

TEST(MathExtras, ExtendedGcdIdentity) {
  for (int64_t A : {12, -12, 7, 0, 1, 100}) {
    for (int64_t B : {18, -18, 13, 0, 1, 64}) {
      ExtendedGCDResult R = extendedGCD(A, B);
      EXPECT_EQ(R.Gcd, gcd64(A, B)) << A << ", " << B;
      EXPECT_EQ(A * R.CoeffA + B * R.CoeffB, R.Gcd) << A << ", " << B;
    }
  }
}

TEST(MathExtras, FloorDiv) {
  EXPECT_EQ(floorDiv(7, 2), 3);
  EXPECT_EQ(floorDiv(-7, 2), -4);
  EXPECT_EQ(floorDiv(7, -2), -4);
  EXPECT_EQ(floorDiv(-7, -2), 3);
  EXPECT_EQ(floorDiv(6, 3), 2);
  EXPECT_EQ(floorDiv(-6, 3), -2);
}

TEST(MathExtras, CeilDiv) {
  EXPECT_EQ(ceilDiv(7, 2), 4);
  EXPECT_EQ(ceilDiv(-7, 2), -3);
  EXPECT_EQ(ceilDiv(7, -2), -3);
  EXPECT_EQ(ceilDiv(-7, -2), 4);
  EXPECT_EQ(ceilDiv(6, 3), 2);
}

TEST(MathExtras, FloorCeilConsistency) {
  for (int64_t A = -12; A <= 12; ++A) {
    for (int64_t B : {-5, -2, -1, 1, 2, 5}) {
      int64_t F = floorDiv(A, B);
      int64_t C = ceilDiv(A, B);
      EXPECT_LE(F * B <= A ? F : C, C);
      EXPECT_LE(F, C);
      EXPECT_LE(C - F, 1);
      if (A % B == 0) {
        EXPECT_EQ(F, C);
      }
    }
  }
}

TEST(MathExtras, DividesExactly) {
  EXPECT_TRUE(dividesExactly(12, 3));
  EXPECT_TRUE(dividesExactly(-12, 3));
  EXPECT_TRUE(dividesExactly(0, 3));
  EXPECT_FALSE(dividesExactly(13, 3));
}

TEST(MathExtras, CheckedOps) {
  EXPECT_EQ(checkedAdd(2, 3), std::optional<int64_t>(5));
  EXPECT_EQ(checkedAdd(INT64_MAX, 1), std::nullopt);
  EXPECT_EQ(checkedSub(INT64_MIN, 1), std::nullopt);
  EXPECT_EQ(checkedMul(4'000'000'000, 4'000'000'000), std::nullopt);
  EXPECT_EQ(checkedMul(3, -4), std::optional<int64_t>(-12));
}

TEST(MathExtras, SignsAndParts) {
  EXPECT_EQ(signOf(-3), -1);
  EXPECT_EQ(signOf(0), 0);
  EXPECT_EQ(signOf(9), 1);
  EXPECT_EQ(positivePart(5), 5);
  EXPECT_EQ(positivePart(-5), 0);
  EXPECT_EQ(negativePart(5), 0);
  EXPECT_EQ(negativePart(-5), 5);
}
