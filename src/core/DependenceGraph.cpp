//===- core/DependenceGraph.cpp - Program-level dependences ---------------===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/DependenceGraph.h"

#include "core/AccessLoweringCache.h"
#include "core/BatchedSIV.h"
#include "core/PairBatch.h"
#include "ir/PrettyPrinter.h"
#include "support/Casting.h"
#include "support/EventLog.h"
#include "support/FaultInjector.h"
#include "support/JobGraph.h"
#include "support/Metrics.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"
#include "support/Watchdog.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <map>

using namespace pdt;

std::vector<OrientedVector> pdt::orientVectors(const DependenceVector &V) {
  std::vector<OrientedVector> Result;
  unsigned Depth = V.depth();

  // Walk an all-'=' prefix; at each level emit the '<' and '>'
  // components, and continue only while '=' remains possible.
  for (unsigned L = 0; L != Depth; ++L) {
    DirectionSet S = V.Directions[L];
    if (S & DirLT) {
      OrientedVector O;
      O.Vector = V;
      for (unsigned P = 0; P != L; ++P) {
        O.Vector.Directions[P] = DirEQ;
        O.Vector.Distances[P] = 0;
      }
      O.Vector.Directions[L] = DirLT;
      if (O.Vector.Distances[L] && *O.Vector.Distances[L] <= 0)
        O.Vector.Distances[L].reset();
      O.CarriedLevel = L;
      Result.push_back(std::move(O));
    }
    if (S & DirGT) {
      // A '>' leading direction is the mirrored dependence from the
      // textual sink to the textual source.
      OrientedVector O;
      O.Reversed = true;
      O.Vector.Directions.assign(Depth, DirAll);
      O.Vector.Distances.assign(Depth, std::nullopt);
      for (unsigned P = 0; P != L; ++P) {
        O.Vector.Directions[P] = DirEQ;
        O.Vector.Distances[P] = 0;
      }
      O.Vector.Directions[L] = DirLT;
      // Mirror the tail: swap < and >, negate distances.
      for (unsigned P = L + 1; P != Depth; ++P) {
        DirectionSet T = V.Directions[P];
        DirectionSet M = T & DirEQ;
        if (T & DirLT)
          M |= DirGT;
        if (T & DirGT)
          M |= DirLT;
        O.Vector.Directions[P] = M;
        if (V.Distances[P])
          O.Vector.Distances[P] = -*V.Distances[P];
      }
      if (V.Distances[L] && *V.Distances[L] < 0)
        O.Vector.Distances[L] = -*V.Distances[L];
      O.CarriedLevel = L;
      Result.push_back(std::move(O));
    }
    if (!(S & DirEQ))
      return Result;
    // Distances contradict a continued '=' prefix when non-zero.
    if (V.Distances[L] && *V.Distances[L] != 0)
      return Result;
  }

  // All levels admit '=': the loop-independent component.
  OrientedVector O;
  O.Vector = V;
  for (unsigned P = 0; P != Depth; ++P) {
    O.Vector.Directions[P] = DirEQ;
    O.Vector.Distances[P] = 0;
  }
  Result.push_back(std::move(O));
  return Result;
}

namespace {

/// Converts one pair's test result into directed dependence edges.
/// Shared by the tested path and the budget-exhausted conservative
/// path, so degraded edges orient and classify exactly like real ones.
std::vector<Dependence> emitEdges(const std::vector<ArrayAccess> &Accesses,
                                  unsigned I, unsigned J,
                                  const DependenceTestResult &R) {
  const ArrayAccess &A = Accesses[I];
  const ArrayAccess &B = Accesses[J];
  bool SelfPair = I == J;
  std::vector<Dependence> Out;

  if (R.isIndependent())
    return Out;

  std::vector<const DoLoop *> Common = commonLoops(A, B);
  for (const DependenceVector &V : R.Vectors) {
    for (const OrientedVector &O : orientVectors(V)) {
      Dependence D;
      D.Source = O.Reversed ? J : I;
      D.Sink = O.Reversed ? I : J;
      // Loop-independent dependences flow with textual order; the
      // collection order (reads before the write of the same
      // statement, statements in program order) encodes it.
      if (!O.CarriedLevel && O.Reversed)
        continue; // Covered by the forward all-'=' component.
      // For a self pair, the same instance is not a dependence and
      // the reversed carried component mirrors the forward one.
      if (SelfPair && (!O.CarriedLevel || O.Reversed))
        continue;
      D.Vector = O.Vector;
      D.CarriedLevel = O.CarriedLevel;
      D.Carrier = O.CarriedLevel ? Common[*O.CarriedLevel] : nullptr;
      D.Exact = R.Exact;
      D.Degraded = R.Degraded;
      if (R.Degraded && R.Failure)
        D.DegradedReason = R.Failure->Kind;
      const ArrayAccess &Src = Accesses[D.Source];
      const ArrayAccess &Snk = Accesses[D.Sink];
      if (Src.IsWrite && Snk.IsWrite)
        D.Kind = DependenceKind::Output;
      else if (Src.IsWrite)
        D.Kind = DependenceKind::Flow;
      else if (Snk.IsWrite)
        D.Kind = DependenceKind::Anti;
      else
        D.Kind = DependenceKind::Input;
      Out.push_back(std::move(D));
    }
  }
  return Out;
}

/// Tests one access pair against the cached lowered forms and emits
/// its dependence edges. Pure function of (Accesses, I, J, Cache), so
/// pairs may run on any worker in any order.
std::vector<Dependence> testPairEdges(const std::vector<ArrayAccess> &Accesses,
                                      unsigned I, unsigned J,
                                      const AccessLoweringCache &Cache,
                                      TestStats *Stats) {
  return emitEdges(Accesses, I, J, Cache.testPair(I, J, Stats));
}

/// The conservative edges for a pair that was never tested (exhausted
/// budget) or whose testing failed past every inner containment layer.
/// \p CountPair adds the pair to the structural statistics; pass false
/// when the failed test already counted it.
std::vector<Dependence>
degradedPairEdges(const std::vector<ArrayAccess> &Accesses, unsigned I,
                  unsigned J, AnalysisFailure Failure, TestStats *Stats,
                  bool CountPair) {
  unsigned Depth = commonLoops(Accesses[I], Accesses[J]).size();
  if (Stats && CountPair) {
    ++Stats->ReferencePairs;
    unsigned Dims = std::min(Accesses[I].Ref->getNumDims(),
                             Accesses[J].Ref->getNumDims());
    ++Stats->DimensionHistogram[std::min(Dims - 1, 3u)];
  }
  // Counters already record *how many* pairs degraded; the journal
  // records *which* and *why* (rate-limited, so a degradation storm
  // cannot flood it). The enabled() guard keeps the disarmed cost to
  // one relaxed load on this already-cold path.
  if (EventLog::enabled())
    EventLog::event(EventSeverity::Warn, "core", "degraded-pair",
                    std::string(failureKindName(Failure.Kind)) +
                        (Failure.Message.empty() ? "" : ": ") +
                        Failure.Message,
                    {{"src", I}, {"snk", J}});
  return emitEdges(Accesses, I, J,
                   degradedTestResult(Depth, std::move(Failure), Stats));
}

} // namespace

DependenceGraph DependenceGraph::build(const Program &P,
                                       const SymbolRangeMap &Symbols,
                                       TestStats *Stats, bool IncludeInput,
                                       unsigned NumThreads,
                                       const ResourceBudget *Budget) {
  Span BuildSpan("DependenceGraph::build", "graph");
  int64_t BuildStartNs = Metrics::enabled() ? Trace::nowNs() : 0;
  Metrics::count(Metric::GraphBuilds);

  DependenceGraph G;
  G.Prog = &P;
  G.Accesses = collectAccesses(P);

  std::set<std::string> VaryingScalars = collectVaryingScalars(P);

  // Bucket accesses by array name: only same-array pairs can ever
  // depend, so cross-array pairs are not even enumerated.
  std::map<std::string, std::vector<unsigned>> Buckets;
  for (unsigned I = 0, E = G.Accesses.size(); I != E; ++I)
    Buckets[G.Accesses[I].Ref->getArrayName()].push_back(I);

  std::vector<std::pair<unsigned, unsigned>> Pairs;
  for (const auto &[Name, Members] : Buckets) {
    for (unsigned A = 0, E = Members.size(); A != E; ++A) {
      for (unsigned B = A; B != E; ++B) {
        unsigned I = Members[A], J = Members[B];
        // A reference against itself can only produce an output
        // self-dependence (distinct iterations writing one element,
        // e.g. a(5) or a(i/2-free dims)); reads need no self edge.
        if (I == J && !G.Accesses[I].IsWrite)
          continue;
        if (!IncludeInput && !G.Accesses[I].IsWrite && !G.Accesses[J].IsWrite)
          continue;
        Pairs.emplace_back(I, J);
      }
    }
  }
  // Restore the serial (I, J) enumeration order; per-pair results are
  // emitted in this order, so the graph is byte-identical to a serial
  // build no matter how many workers test the pairs.
  std::sort(Pairs.begin(), Pairs.end());

  unsigned Workers = ThreadPool::resolveThreadCount(NumThreads);
  Workers = std::max(1u, std::min<unsigned>(Workers, Pairs.size() ? Pairs.size() : 1));
  // Tiny pair populations lose more to pool construction and chunk
  // handoff than they gain from parallel testing: stay serial when the
  // caller left the thread count to us (an explicit NumThreads is an
  // explicit request). Fault injection also forces the serial order,
  // so injection checkpoints keep their deterministic numbering.
  constexpr size_t MinPairsForPool = 32;
  bool Faulted = FaultInjector::anyArmed();
  if ((NumThreads == 0 && Pairs.size() < MinPairsForPool) || Faulted)
    Workers = 1;

  std::optional<BudgetTracker> Tracker;
  if (Budget)
    Tracker.emplace(*Budget);

  // Stall watchdog probe: beats per pair from whichever worker tests
  // it. The quiet interval follows the query deadline when one exists
  // — a build silent past a multiple of its own deadline is stuck, not
  // slow.
  Heartbeat BuildBeat("DependenceGraph::build",
                      Budget && Budget->Deadline
                          ? static_cast<uint64_t>(Budget->Deadline->count())
                          : 0);

  // Route eligible ZIV/strong-SIV pairs through the batched SoA
  // kernels unless the mode, the compile flag, a pair-skipping budget,
  // or armed fault injection says otherwise. A deadline or pair cap
  // degrades pairs mid-run in scalar enumeration order and injection
  // must hit scalar checkpoints, so those need the pure scalar order;
  // the FM caps never fire on batched pairs (ZIV/strong-SIV decide
  // without Fourier-Motzkin), so the driver's default budget does not
  // forfeit batching.
  bool BudgetSkipsPairs =
      Tracker && (Tracker->limits().Deadline || Tracker->limits().MaxPairs);
  BatchMode Mode = batchMode();
  bool Batched = batchingCompiledIn() && !BudgetSkipsPairs && !Faulted &&
                 (Mode == BatchMode::On ||
                  (Mode == BatchMode::Auto && Pairs.size() >= MinPairsForPool));

  // Deferred lowering lets the job graph lower each array's accesses
  // as that bucket's pipeline starts instead of up front; the serial
  // path keeps the eager order (and with it the exact legacy execution
  // order under fault injection).
  AccessLoweringCache Cache(G.Accesses, Symbols, &VaryingScalars,
                            /*DeferLowering=*/Workers > 1);

  std::vector<std::vector<Dependence>> PerPair(Pairs.size());
  auto ProcessScalar = [&](size_t PairIdx, TestStats *WS) {
    BuildBeat.beat();
    auto [I, J] = Pairs[PairIdx];
    // A failed lowering job leaves its accesses unready; its exception
    // is already propagating out of the build, so the pair's edges are
    // never observed.
    if (!Cache.isLowered(I) || !Cache.isLowered(J))
      return;
    // Budgets are enforced on the deterministic sorted pair order for
    // MaxPairs (so the degraded tail is identical across thread
    // counts); deadline degradation depends on wall time by nature.
    if (Tracker && (Tracker->pairBudgetExceeded(PairIdx) ||
                    Tracker->deadlineExpired())) {
      Metrics::count(Tracker->pairBudgetExceeded(PairIdx)
                         ? Metric::BudgetPairSkips
                         : Metric::BudgetDeadlineSkips);
      PerPair[PairIdx] = degradedPairEdges(
          G.Accesses, I, J,
          AnalysisFailure{FailureKind::BudgetExhausted,
                          "pair skipped: query budget exhausted"},
          WS, /*CountPair=*/true);
      return;
    }
    try {
      PerPair[PairIdx] = testPairEdges(G.Accesses, I, J, Cache, WS);
    } catch (const std::exception &E) {
      // Last-resort containment: one poisoned pair (e.g. bad_alloc or
      // an invariant violation escaping the inner boundaries) degrades
      // only its own edges.
      PerPair[PairIdx] = degradedPairEdges(
          G.Accesses, I, J,
          AnalysisFailure{FailureKind::InternalInvariant, E.what()}, WS,
          /*CountPair=*/false);
    }
  };
  auto ProcessBatched = [&](const PairBatchPlan &Plan,
                            const PairBatchPlan::PairRecord &Rec,
                            TestStats *WS) {
    BuildBeat.beat();
    try {
      PerPair[Rec.PairIdx] = emitEdges(G.Accesses, Rec.I, Rec.J,
                                       materializeBatchedPair(Plan, Rec, WS));
    } catch (const std::exception &E) {
      PerPair[Rec.PairIdx] = degradedPairEdges(
          G.Accesses, Rec.I, Rec.J,
          AnalysisFailure{FailureKind::InternalInvariant, E.what()}, WS,
          /*CountPair=*/false);
    }
  };

  // Per-job statistics sinks; a deque keeps addresses stable while
  // jobs are still being added. Merged after the run — TestStats
  // merging is additive, so the merge order cannot matter.
  std::deque<TestStats> JobStats;
  auto NewStats = [&]() -> TestStats * {
    if (!Stats)
      return nullptr;
    return &JobStats.emplace_back();
  };

  if (Workers == 1) {
    TestStats *WS = NewStats();
    if (Batched) {
      PairBatchPlan Plan;
      std::vector<size_t> Residue;
      for (size_t PairIdx = 0; PairIdx != Pairs.size(); ++PairIdx) {
        auto [I, J] = Pairs[PairIdx];
        if (!Cache.planBatchedPair(I, J, PairIdx, Plan)) {
          Residue.push_back(PairIdx);
          if (WS)
            ++WS->ScalarFallback;
        }
      }
      decidePairBatch(Plan);
      for (const PairBatchPlan::PairRecord &Rec : Plan.Pairs)
        ProcessBatched(Plan, Rec, WS);
      for (size_t PairIdx : Residue)
        ProcessScalar(PairIdx, WS);
    } else {
      for (size_t PairIdx = 0; PairIdx != Pairs.size(); ++PairIdx)
        ProcessScalar(PairIdx, WS);
    }
  } else {
    // Pipelined schedule: per array bucket, lowering -> (batched
    // classification + decide) -> batched materialization and scalar
    // residue as dependency-aware jobs on one shared pool. Buckets
    // pipeline against each other — one array can be in its decide
    // stage while another is still lowering — with no global barrier
    // between stages. Every job writes only its own PerPair slots and
    // stats sink, so the emitted graph stays byte-identical to the
    // serial build.
    ThreadPool Pool(Workers);
    JobGraph Graph;
    // Pair indices per bucket (Pairs is globally sorted, so a bucket's
    // pair list is ascending, but buckets interleave).
    std::map<std::string, std::vector<size_t>> BucketPairs;
    for (size_t PairIdx = 0; PairIdx != Pairs.size(); ++PairIdx)
      BucketPairs[G.Accesses[Pairs[PairIdx].first].Ref->getArrayName()]
          .push_back(PairIdx);

    std::deque<PairBatchPlan> Plans;
    std::deque<std::vector<size_t>> Residues;
    for (auto &[Name, Members] : Buckets) {
      auto PairsIt = BucketPairs.find(Name);
      if (PairsIt == BucketPairs.end())
        continue; // No testable pairs; nothing reads the lowerings.
      const std::vector<size_t> &Indices = PairsIt->second;

      const std::vector<unsigned> *BucketMembers = &Members;
      JobGraph::JobId Lower = Graph.add([&Cache, BucketMembers] {
        for (unsigned Access : *BucketMembers)
          Cache.lowerAccess(Access);
      });

      // Scalar work is striped over a fixed job count so the graph can
      // be built before the residue is known; stripe k takes indices
      // k, k+N, k+2N, ...
      size_t NumStripes = std::clamp<size_t>(Indices.size() / 64, 1, Workers);

      if (Batched) {
        PairBatchPlan *Plan = &Plans.emplace_back();
        std::vector<size_t> *Residue = &Residues.emplace_back();
        TestStats *ClassifyWS = NewStats();
        JobGraph::JobId Classify = Graph.add(
            [&Cache, &Pairs, Plan, Residue, ClassifyWS, &Indices] {
              for (size_t PairIdx : Indices) {
                auto [I, J] = Pairs[PairIdx];
                if (!Cache.planBatchedPair(I, J, PairIdx, *Plan)) {
                  Residue->push_back(PairIdx);
                  if (ClassifyWS)
                    ++ClassifyWS->ScalarFallback;
                }
              }
              decidePairBatch(*Plan);
            },
            {Lower});
        TestStats *DecideWS = NewStats();
        Graph.add(
            [&ProcessBatched, Plan, DecideWS] {
              for (const PairBatchPlan::PairRecord &Rec : Plan->Pairs)
                ProcessBatched(*Plan, Rec, DecideWS);
            },
            {Classify});
        for (size_t Stripe = 0; Stripe != NumStripes; ++Stripe) {
          TestStats *StripeWS = NewStats();
          Graph.add(
              [&ProcessScalar, Residue, StripeWS, Stripe, NumStripes] {
                for (size_t K = Stripe; K < Residue->size(); K += NumStripes)
                  ProcessScalar((*Residue)[K], StripeWS);
              },
              {Classify});
        }
      } else {
        for (size_t Stripe = 0; Stripe != NumStripes; ++Stripe) {
          TestStats *StripeWS = NewStats();
          Graph.add(
              [&ProcessScalar, &Indices, StripeWS, Stripe, NumStripes] {
                for (size_t K = Stripe; K < Indices.size(); K += NumStripes)
                  ProcessScalar(Indices[K], StripeWS);
              },
              {Lower});
        }
      }
    }
    Graph.run(Pool);
  }

  if (Stats)
    for (const TestStats &WS : JobStats)
      Stats->merge(WS);
  for (std::vector<Dependence> &Edges : PerPair)
    for (Dependence &D : Edges)
      G.Edges.push_back(std::move(D));

  for (const Dependence &D : G.Edges)
    if (D.Carrier)
      ++G.CarrierEdgeCount[D.Carrier];

  if (Metrics::enabled()) {
    Metrics::count(Metric::PairsEnumerated, Pairs.size());
    Metrics::count(Metric::EdgesEmitted, G.Edges.size());
    Metrics::count(Metric::GraphBuildNs,
                   static_cast<uint64_t>(Trace::nowNs() - BuildStartNs));
  }
  return G;
}

bool DependenceGraph::isLoopParallel(const DoLoop *Loop) const {
  return carriedEdgeCount(Loop) == 0;
}

unsigned DependenceGraph::carriedEdgeCount(const DoLoop *Loop) const {
  auto It = CarrierEdgeCount.find(Loop);
  return It == CarrierEdgeCount.end() ? 0 : It->second;
}

std::vector<const DoLoop *> DependenceGraph::allLoops() const {
  std::vector<const DoLoop *> Loops;
  auto Walk = [&Loops](auto &&Self, const Stmt *S) -> void {
    if (const auto *L = dyn_cast<DoLoop>(S)) {
      Loops.push_back(L);
      for (const Stmt *Child : L->getBody())
        Self(Self, Child);
    }
  };
  for (const Stmt *S : Prog->TopLevel)
    Walk(Walk, S);
  return Loops;
}

std::string DependenceGraph::str() const {
  std::string Out;
  for (const Dependence &D : Edges) {
    const ArrayAccess &Src = Accesses[D.Source];
    const ArrayAccess &Snk = Accesses[D.Sink];
    Out += dependenceKindName(D.Kind);
    Out += " dependence: ";
    Out += exprToString(Src.Ref);
    Out += " -> ";
    Out += exprToString(Snk.Ref);
    Out += "  vector ";
    Out += D.Vector.str();
    if (D.Carrier) {
      Out += "  carried by loop ";
      Out += D.Carrier->getIndexName();
    } else {
      Out += "  loop-independent";
    }
    if (D.Degraded) {
      Out += "  (degraded";
      if (D.DegradedReason) {
        Out += ": ";
        Out += failureKindName(*D.DegradedReason);
      }
      Out += ")";
    } else if (!D.Exact) {
      Out += "  (assumed)";
    }
    Out += "\n";
  }
  return Out;
}
