//===- core/AccessLoweringCache.h - Per-access lowering cache ---*- C++ -*-===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-access half of pair preparation, hoisted out of the O(n^2)
/// pair loop. For each array access the cache precomputes, once:
///
///   * the affine form of every subscript dimension over the access's
///     own loop indices (nullopt when nonlinear or when it mentions a
///     varying scalar), and
///   * the analyzed context of the access's own loop nest, whose index
///     ranges bound the fresh "#src"/"#snk" symbols that stand in for
///     non-common indices.
///
/// preparePair then reduces to a cheap combination step: intersect the
/// two loop stacks, retag non-common index terms as ranged symbols,
/// and analyze the common nest. The result is bit-for-bit identical to
/// what prepareAccessPair computes from scratch (the golden and
/// determinism tests pin this down).
///
//===----------------------------------------------------------------------===//

#ifndef PDT_CORE_ACCESSLOWERINGCACHE_H
#define PDT_CORE_ACCESSLOWERINGCACHE_H

#include "analysis/LoopNest.h"
#include "core/DependenceTester.h"
#include "ir/AccessCollector.h"
#include "ir/LinearExpr.h"

#include <memory>
#include <optional>
#include <set>
#include <vector>

namespace pdt {

struct PairBatchPlan;

/// The pair-independent lowering of one array access.
struct LoweredAccess {
  /// Affine form of each subscript dimension over the access's own
  /// loop indices; nullopt marks a nonlinear (untestable) dimension.
  std::vector<std::optional<LinearExpr>> Dims;
  /// Analyzed context of the access's own loop stack, for the ranges
  /// of renamed non-common indices. Reused outright as the pair
  /// context when the common nest is this access's whole stack and no
  /// index needed renaming.
  LoopNestContext OwnCtx;
  /// The access's own loop index names (equals the common index set
  /// whenever the common nest is the whole stack).
  std::set<std::string> OwnIndices;
  /// lowerAccess completed for this entry (always true after an eager
  /// construction; deferred entries flip it as their lowering job
  /// runs).
  bool Ready = false;
};

class AccessLoweringCache {
public:
  /// Lowers every access of \p Accesses under symbol assumptions
  /// \p Symbols. \p VaryingScalars (may be null) names scalars whose
  /// mention makes a subscript nonlinear. The accesses vector (and
  /// VaryingScalars when deferring) must outlive the cache. With
  /// \p DeferLowering the constructor only sizes the table; the caller
  /// schedules lowerAccess per access (the job-graph builder lowers
  /// each array's accesses as that bucket's pipeline starts, instead
  /// of lowering the whole program up front).
  AccessLoweringCache(const std::vector<ArrayAccess> &Accesses,
                      const SymbolRangeMap &Symbols,
                      const std::set<std::string> *VaryingScalars,
                      bool DeferLowering = false);
  ~AccessLoweringCache();

  /// Lowers one access (idempotent is NOT required: call exactly once
  /// per access, before any pair involving it is tested). Distinct
  /// accesses may be lowered concurrently.
  void lowerAccess(unsigned Access);

  bool isLowered(unsigned Access) const { return Lowered[Access].Ready; }

  const LoweredAccess &lowered(unsigned Access) const {
    return Lowered[Access];
  }

  /// Classifies the pair's subscripts and, when every dimension is a
  /// batchable constant-difference ZIV or separable strong SIV,
  /// appends its entries and a PairRecord (tagged \p PairIdx) to
  /// \p Plan. Returns false — leaving \p Plan untouched — when any
  /// dimension needs the scalar path. Thread-safe for distinct plans.
  bool planBatchedPair(unsigned I, unsigned J, size_t PairIdx,
                       PairBatchPlan &Plan) const;

  /// Combines the cached forms of accesses \p I and \p J into the same
  /// PreparedPair prepareAccessPair(Accesses[I], Accesses[J], ...)
  /// would build. Returns std::nullopt when the references have
  /// different dimensionality. Thread-safe (const).
  std::optional<PreparedPair> preparePair(unsigned I, unsigned J) const;

  /// Tests accesses \p I and \p J, combining the cached forms without
  /// materializing a PreparedPair: in the dominant same-nest case the
  /// pair borrows the cached per-access context instead of copying it.
  /// Produces exactly testAccessPair's result and statistics.
  /// Thread-safe (const).
  DependenceTestResult testPair(unsigned I, unsigned J,
                                TestStats *Stats = nullptr) const;

private:
  /// View-based lowering of one pair: subscripts plus a pointer to
  /// either a cached per-access context or \p Storage.
  struct LoweredPair {
    std::vector<SubscriptPair> Subscripts;
    const LoopNestContext *Ctx = nullptr;
    bool HasNonlinear = false;
    /// References had different dimensionality; nothing was lowered.
    bool DimMismatch = false;
  };
  LoweredPair lowerPair(unsigned I, unsigned J,
                        LoopNestContext &Storage) const;

  /// testDependence keyed by the pair's lowered content, with the
  /// cached statistics delta replayed into \p Stats on hits.
  DependenceTestResult memoizedTestDependence(const LoweredPair &Pair,
                                              TestStats *Stats) const;

  const std::vector<ArrayAccess> &Accesses;
  SymbolRangeMap Symbols;
  const std::set<std::string> *VaryingScalars = nullptr;
  std::vector<LoweredAccess> Lowered;

  /// Memoized testDependence results. Distinct access pairs often
  /// lower to identical (subscripts, context) content — stencil
  /// programs repeat the same shapes across statements and nests — so
  /// the algorithm runs once per distinct lowered form. The cached
  /// statistics delta is replayed into the caller's sink on every hit,
  /// keeping merged counters exactly equal to an uncached run
  /// (TestStats merging is additive). Sharded by key hash to keep
  /// worker contention low.
  struct MemoizedResult {
    DependenceTestResult Result;
    TestStats Delta;
  };
  struct MemoShard;
  static constexpr unsigned NumMemoShards = 16;
  std::unique_ptr<MemoShard[]> Memo;
};

} // namespace pdt

#endif // PDT_CORE_ACCESSLOWERINGCACHE_H
