//===- tests/core/DeltaTestTest.cpp -----------------------------------------===//
//
// Unit tests for the Delta test (paper section 5): constraint
// derivation, intersection, MIV reduction, multiple passes, and the
// coupled RDIV special case.
//
//===----------------------------------------------------------------------===//

#include "core/DeltaTest.h"

#include "../TestHelpers.h"

#include <gtest/gtest.h>

using namespace pdt;
using namespace pdt::test;

namespace {

LinearExpr idx(const char *N, int64_t C = 1) {
  return LinearExpr::index(N, C);
}

} // namespace

TEST(DeltaTest, ConstraintIntersectionProvesIndependence) {
  // A(i+1, i) = A(i, i+1): dim 1 gives i' = i + 1, dim 2 gives
  // i' = i - 1; the intersection is empty. Subscript-by-subscript
  // testing cannot see this (section 5.2's motivating example).
  LoopNestContext Ctx = singleLoop("i", 1, 10);
  std::vector<SubscriptPair> Group = {
      SubscriptPair(idx("i") + LinearExpr(1), idx("i"), 0),
      SubscriptPair(idx("i"), idx("i") + LinearExpr(1), 1)};
  DeltaResult R = runDeltaTest(Group, Ctx);
  EXPECT_EQ(R.TheVerdict, Verdict::Independent);
  EXPECT_EQ(R.DecidedBy, TestKind::Delta);
}

TEST(DeltaTest, ConsistentDistancesAreKept) {
  // A(i+1, i+2) = A(i, i+1): both dims give distance 1.
  LoopNestContext Ctx = singleLoop("i", 1, 10);
  std::vector<SubscriptPair> Group = {
      SubscriptPair(idx("i") + LinearExpr(1), idx("i"), 0),
      SubscriptPair(idx("i") + LinearExpr(2), idx("i") + LinearExpr(1), 1)};
  DeltaResult R = runDeltaTest(Group, Ctx);
  EXPECT_EQ(R.TheVerdict, Verdict::Dependent);
  EXPECT_TRUE(R.Exact);
  ASSERT_EQ(R.Vectors.size(), 1u);
  EXPECT_EQ(R.Vectors[0].Distances[0], std::optional<int64_t>(1));
}

TEST(DeltaTest, LinePlusDistanceYieldsPoint) {
  // Dim 1: strong SIV distance 1 (i' = i + 1). Dim 2: weak-crossing
  // i + i' = 5. Intersection: point (2, 3), still a dependence.
  LoopNestContext Ctx = singleLoop("i", 1, 10);
  std::vector<SubscriptPair> Group = {
      SubscriptPair(idx("i") + LinearExpr(1), idx("i"), 0),
      SubscriptPair(idx("i"), idx("i", -1) + LinearExpr(5), 1)};
  DeltaResult R = runDeltaTest(Group, Ctx);
  EXPECT_EQ(R.TheVerdict, Verdict::Dependent);
  ASSERT_EQ(R.Constraints.count("i"), 1u);
  EXPECT_EQ(R.Constraints.at("i"), Constraint::point(2, 3));
  ASSERT_EQ(R.Vectors.size(), 1u);
  EXPECT_EQ(R.Vectors[0].Distances[0], std::optional<int64_t>(1));
}

TEST(DeltaTest, PointOutsideRangeIsIndependent) {
  // Distance 1 with crossing sum 25: point (12, 13) exceeds the loop.
  LoopNestContext Ctx = singleLoop("i", 1, 10);
  std::vector<SubscriptPair> Group = {
      SubscriptPair(idx("i") + LinearExpr(1), idx("i"), 0),
      SubscriptPair(idx("i"), idx("i", -1) + LinearExpr(25), 1)};
  DeltaResult R = runDeltaTest(Group, Ctx);
  EXPECT_EQ(R.TheVerdict, Verdict::Independent);
}

TEST(DeltaTest, NonIntegralLineIntersectionIsIndependent) {
  // Distance 0 with crossing sum 5: i = 5/2.
  LoopNestContext Ctx = singleLoop("i", 1, 10);
  std::vector<SubscriptPair> Group = {
      SubscriptPair(idx("i"), idx("i"), 0),
      SubscriptPair(idx("i"), idx("i", -1) + LinearExpr(5), 1)};
  DeltaResult R = runDeltaTest(Group, Ctx);
  EXPECT_EQ(R.TheVerdict, Verdict::Independent);
  EXPECT_EQ(R.DecidedBy, TestKind::Delta);
}

TEST(DeltaTest, PropagationReducesMIVToSIV) {
  // The paper's propagation example: A(i+1, i+j) = A(i, i+j): the
  // strong SIV first subscript gives d_i = 1; substituting i' = i+1
  // into the MIV second subscript leaves j - j' + ... :
  //   dim2 equation: i + j - i' - j' = 0, with i' = i + 1:
  //   j - j' - 1 = 0, i.e. d_j = -1.
  LoopNestContext Ctx = doubleLoop("i", 1, 10, "j", 1, 10);
  std::vector<SubscriptPair> Group = {
      SubscriptPair(idx("i") + LinearExpr(1), idx("i"), 0),
      SubscriptPair(idx("i") + idx("j"), idx("i") + idx("j"), 1)};
  DeltaResult R = runDeltaTest(Group, Ctx);
  EXPECT_EQ(R.TheVerdict, Verdict::Dependent);
  EXPECT_TRUE(R.Exact);
  EXPECT_FALSE(R.ResidualMIV);
  ASSERT_EQ(R.Vectors.size(), 1u);
  EXPECT_EQ(R.Vectors[0].Distances[0], std::optional<int64_t>(1));
  EXPECT_EQ(R.Vectors[0].Distances[1], std::optional<int64_t>(-1));
  EXPECT_GE(R.Passes, 2u);
}

TEST(DeltaTest, PropagationProvesIndependenceViaGCD) {
  // After propagating d_i = 1 into 2i' + 2j' vs 2i + 2j ... choose:
  // dim1: <i+1, i> (d=1); dim2: <2i + 2j, 2i + 4j>: substituting
  // i' = i+1 gives 2j - 4j' - 2 = 0 => j - 2j' - 1 = 0: feasible.
  // Instead use dim2 <2i + 2j, 2i + 4j + 1>: after substitution
  // 2j - 4j' - 3 = 0: GCD 2 does not divide 3: independent.
  LoopNestContext Ctx = doubleLoop("i", 1, 10, "j", 1, 10);
  std::vector<SubscriptPair> Group = {
      SubscriptPair(idx("i") + LinearExpr(1), idx("i"), 0),
      SubscriptPair(idx("i", 2) + idx("j", 2),
                    idx("i", 2) + idx("j", 4) + LinearExpr(1), 1)};
  DeltaResult R = runDeltaTest(Group, Ctx);
  EXPECT_EQ(R.TheVerdict, Verdict::Independent);
}

TEST(DeltaTest, WeakZeroConstraintPropagates) {
  // Dim 1 pins the source iteration: <i, 3> => i = 3. Dim 2 is MIV in
  // i and j; substituting i = 3 reduces it to SIV in j.
  LoopNestContext Ctx = doubleLoop("i", 1, 10, "j", 1, 10);
  std::vector<SubscriptPair> Group = {
      SubscriptPair(idx("i"), LinearExpr(3), 0),
      SubscriptPair(idx("i") + idx("j") + LinearExpr(4),
                    idx("i") + idx("j"), 1)};
  DeltaResult R = runDeltaTest(Group, Ctx);
  // i = 3 (source); dim2: 3 + j + 4 = i' + j' with i' free... the i'
  // occurrence remains, so the reduced equation is RDIV-like; the
  // verdict must at least not be falsely independent.
  EXPECT_NE(R.TheVerdict, Verdict::Independent);
}

TEST(DeltaTest, CoupledRDIVTranspose) {
  // A(i, j) = A(j, i): d_i + d_j = 0, directions (<,>), (=,=), (>,<)
  // (paper section 5.3.2).
  LoopNestContext Ctx = doubleLoop("i", 1, 10, "j", 1, 10);
  std::vector<SubscriptPair> Group = {
      SubscriptPair(idx("i"), idx("j"), 0),
      SubscriptPair(idx("j"), idx("i"), 1)};
  DeltaResult R = runDeltaTest(Group, Ctx);
  EXPECT_EQ(R.TheVerdict, Verdict::Maybe);
  ASSERT_FALSE(R.Vectors.empty());
  // Collect the admitted (dir_i, dir_j) combinations.
  bool SawLtGt = false, SawEqEq = false, SawGtLt = false;
  bool SawIllegal = false;
  for (const DependenceVector &V : R.Vectors) {
    DirectionSet I = V.Directions[0], J = V.Directions[1];
    if ((I & DirLT) && (J & DirGT))
      SawLtGt = true;
    if ((I & DirEQ) && (J & DirEQ))
      SawEqEq = true;
    if ((I & DirGT) && (J & DirLT))
      SawGtLt = true;
    if ((I & DirLT) && (J & DirLT))
      SawIllegal = true;
    if ((I & DirEQ) && (J & DirLT) && V.Directions[1] == DirLT)
      SawIllegal = true;
  }
  EXPECT_TRUE(SawLtGt);
  EXPECT_TRUE(SawEqEq);
  EXPECT_TRUE(SawGtLt);
  EXPECT_FALSE(SawIllegal);
}

TEST(DeltaTest, CoupledRDIVWithOffset) {
  // A(i, j) = A(j+2, i): i = j' + 2 and j = i' give
  // d_i + d_j = -(k1 + k2) with k1 = 2, k2 = 0: d_i + d_j = -2.
  // (=,=) is impossible.
  LoopNestContext Ctx = doubleLoop("i", 1, 10, "j", 1, 10);
  std::vector<SubscriptPair> Group = {
      SubscriptPair(idx("i"), idx("j") + LinearExpr(2), 0),
      SubscriptPair(idx("j"), idx("i"), 1)};
  DeltaResult R = runDeltaTest(Group, Ctx);
  EXPECT_EQ(R.TheVerdict, Verdict::Maybe);
  for (const DependenceVector &V : R.Vectors)
    EXPECT_FALSE(V.Directions[0] == DirEQ && V.Directions[1] == DirEQ)
        << V.str();
}

TEST(DeltaTest, ResidualMIVFallsBackToBanerjee) {
  // Two coupled MIV subscripts that no constraint reduces: the Delta
  // test must hand them to GCD/Banerjee and mark the residue.
  LoopNestContext Ctx = doubleLoop("i", 1, 10, "j", 1, 10);
  std::vector<SubscriptPair> Group = {
      SubscriptPair(idx("i") + idx("j"), idx("i") + idx("j", 2), 0),
      SubscriptPair(idx("i") + idx("j", 2), idx("i") + idx("j"), 1)};
  DeltaResult R = runDeltaTest(Group, Ctx);
  EXPECT_TRUE(R.ResidualMIV);
  EXPECT_FALSE(R.Exact);
  EXPECT_NE(R.TheVerdict, Verdict::Independent);
}

TEST(DeltaTest, ZIVMemberDisproves) {
  // A coupled group whose ZIV-reduced member disproves: dim1 <i, i+5>
  // distance -5 OK; dim2 <i, i> distance 0: contradiction.
  LoopNestContext Ctx = singleLoop("i", 1, 20);
  std::vector<SubscriptPair> Group = {
      SubscriptPair(idx("i"), idx("i") + LinearExpr(5), 0),
      SubscriptPair(idx("i"), idx("i"), 1)};
  DeltaResult R = runDeltaTest(Group, Ctx);
  EXPECT_EQ(R.TheVerdict, Verdict::Independent);
}

TEST(DeltaTest, StatsCountGroupAndTests) {
  TestStats Stats;
  LoopNestContext Ctx = singleLoop("i", 1, 10);
  std::vector<SubscriptPair> Group = {
      SubscriptPair(idx("i") + LinearExpr(1), idx("i"), 0),
      SubscriptPair(idx("i"), idx("i") + LinearExpr(1), 1)};
  runDeltaTest(Group, Ctx, &Stats);
  EXPECT_EQ(Stats.applications(TestKind::Delta), 1u);
  EXPECT_EQ(Stats.CoupledGroups, 1u);
  EXPECT_EQ(Stats.applications(TestKind::StrongSIV), 2u);
  EXPECT_EQ(Stats.independences(TestKind::Delta), 1u);
}

TEST(DeltaTest, TraceIsProduced) {
  LoopNestContext Ctx = singleLoop("i", 1, 10);
  std::vector<SubscriptPair> Group = {
      SubscriptPair(idx("i") + LinearExpr(1), idx("i"), 0),
      SubscriptPair(idx("i"), idx("i") + LinearExpr(1), 1)};
  std::string Trace;
  runDeltaTest(Group, Ctx, nullptr, &Trace);
  EXPECT_NE(Trace.find("constraint on i"), std::string::npos) << Trace;
  EXPECT_NE(Trace.find("independent"), std::string::npos) << Trace;
}
