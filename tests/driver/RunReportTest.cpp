//===- tests/driver/RunReportTest.cpp - Run-report schema tests -----------===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//
//
// The consolidated run report's contract: render() produces valid
// pdt-report-v1 JSON that round-trips byte-stably through the parser,
// the "stats" section is byte-identical for the same workload at any
// thread count (the property the self-diff gate in ctest rests on),
// and a genuinely different run is caught by the differ.
//
//===----------------------------------------------------------------------===//

#include "driver/RunReport.h"

#include "driver/Analyzer.h"
#include "driver/ReportDiff.h"
#include "support/Json.h"
#include "support/Metrics.h"

#include <gtest/gtest.h>

#include <optional>
#include <string>

using namespace pdt;

namespace {

TestStats fixedStats() {
  TestStats S;
  S.ReferencePairs = 100;
  S.IndependentPairs = 40;
  S.DimensionHistogram = {50, 30, 15, 5};
  S.SeparableSubscripts = 80;
  S.CoupledSubscripts = 20;
  S.ZIVSubscripts = 10;
  S.SIVSubscripts = 70;
  S.MIVSubscripts = 20;
  S.CoupledGroups = 7;
  S.noteApplication(TestKind::StrongSIV);
  S.noteApplication(TestKind::StrongSIV);
  S.noteIndependence(TestKind::StrongSIV);
  S.noteApplication(TestKind::GCD);
  S.noteDegraded(FailureKind::Overflow);
  return S;
}

/// Renders a report for \p Stats with a fixed tool/workload identity.
std::string renderWith(const TestStats &Stats) {
  RunReport::reset();
  RunReport::noteTool("pdt_tests");
  RunReport::noteWorkload("case", "run-report-test");
  RunReport::noteStats(Stats);
  RunReport::noteWallNs(123456789);
  std::string Out = RunReport::render();
  RunReport::reset();
  return Out;
}

const char *WorkloadSource = "do i = 1, 30\n"
                             "  do j = 1, 30\n"
                             "    a(i+1, j) = a(i, j+1)\n"
                             "    b(2*i) = b(2*i+1) + a(i, j)\n"
                             "  end do\n"
                             "end do\n";

/// One full instrumented analysis at \p Threads workers; returns the
/// rendered report.
std::string analyzedReport(unsigned Threads) {
  Metrics::enable("");
  AnalyzerOptions Opt;
  Opt.NumThreads = Threads;
  AnalysisResult R = analyzeSource(WorkloadSource, "report-workload", Opt);
  EXPECT_TRUE(R.Parsed);
  RunReport::reset();
  RunReport::noteTool("pdt_tests");
  RunReport::noteWorkload("threads", static_cast<uint64_t>(Threads));
  RunReport::noteStats(R.Stats);
  std::string Out = RunReport::render();
  Metrics::stop();
  RunReport::reset();
  return Out;
}

/// The compact serialization of one top-level section, "" if absent.
std::string section(const std::string &Report, const char *Name) {
  std::optional<json::Value> V = json::parse(Report);
  if (!V)
    return "";
  const json::Value *S = V->find(Name);
  return S ? json::dump(*S) : "";
}

} // namespace

TEST(RunReport, RenderIsValidSchemaTaggedJson) {
  std::string Report = renderWith(fixedStats());
  std::string Error;
  std::optional<json::Value> V = json::parse(Report, &Error);
  ASSERT_TRUE(V) << Error;
  EXPECT_EQ(V->stringAt("schema").value_or(""), "pdt-report-v1");
  const json::Value *Meta = V->find("meta");
  ASSERT_TRUE(Meta);
  EXPECT_EQ(Meta->stringAt("tool").value_or(""), "pdt_tests");
  const json::Value *Timing = V->find("timing");
  ASSERT_TRUE(Timing);
  EXPECT_EQ(Timing->uintAt("wall_ns").value_or(0), 123456789u);
}

TEST(RunReport, StatsSectionCarriesEveryRow) {
  std::string Report = renderWith(fixedStats());
  std::optional<json::Value> V = json::parse(Report);
  ASSERT_TRUE(V);
  const json::Value *Stats = V->find("stats");
  ASSERT_TRUE(Stats);
  EXPECT_EQ(Stats->uintAt("reference_pairs").value_or(0), 100u);
  EXPECT_EQ(Stats->uintAt("degraded_results").value_or(0), 1u);
  // Every TestKind row is present even when zero, so diffs never see
  // keys appear or vanish between runs.
  const json::Value *Tests = Stats->find("tests");
  ASSERT_TRUE(Tests && Tests->isObject());
  EXPECT_EQ(Tests->asObject().size(), static_cast<size_t>(NumTestKinds));
  const json::Value *Degraded = Stats->find("degraded_by_kind");
  ASSERT_TRUE(Degraded && Degraded->isObject());
  EXPECT_EQ(Degraded->asObject().size(), static_cast<size_t>(NumFailureKinds));
  const json::Value *Strong = Tests->find(testKindName(TestKind::StrongSIV));
  ASSERT_TRUE(Strong);
  EXPECT_EQ(Strong->uintAt("applications").value_or(0), 2u);
  EXPECT_EQ(Strong->uintAt("independences").value_or(0), 1u);
}

TEST(RunReport, RoundTripsByteStablyThroughTheParser) {
  std::string Report = renderWith(fixedStats());
  std::optional<json::Value> Once = json::parse(Report);
  ASSERT_TRUE(Once);
  std::string Dumped = json::dump(*Once);
  std::optional<json::Value> Twice = json::parse(Dumped);
  ASSERT_TRUE(Twice);
  EXPECT_EQ(json::dump(*Twice), Dumped);
}

TEST(RunReport, WorkloadKeysOverwriteAndRenderSorted) {
  RunReport::reset();
  RunReport::noteTool("pdt_tests");
  RunReport::noteWorkload("zeta", "first");
  RunReport::noteWorkload("alpha", "1");
  RunReport::noteWorkload("zeta", "second"); // duplicate key: last wins
  std::string Report = RunReport::render();
  RunReport::reset();
  std::optional<json::Value> V = json::parse(Report);
  ASSERT_TRUE(V);
  const json::Value *W = V->find("workload");
  ASSERT_TRUE(W && W->isObject());
  ASSERT_EQ(W->asObject().size(), 2u);
  EXPECT_EQ(W->asObject()[0].first, "alpha");
  EXPECT_EQ(W->asObject()[1].first, "zeta");
  EXPECT_EQ(W->stringAt("zeta").value_or(""), "second");
}

TEST(RunReport, StatsAreByteIdenticalAcrossThreadCounts) {
  if (!Metrics::compiledIn())
    GTEST_SKIP() << "metrics compiled out";
  std::string At1 = analyzedReport(1);
  std::string At4 = analyzedReport(4);
  std::string At8 = analyzedReport(8);
  std::string Stats1 = section(At1, "stats");
  ASSERT_FALSE(Stats1.empty());
  EXPECT_EQ(Stats1, section(At4, "stats"));
  EXPECT_EQ(Stats1, section(At8, "stats"));
}

TEST(RunReport, SelfDiffAcrossThreadCountsHasNoRegressions) {
  if (!Metrics::compiledIn())
    GTEST_SKIP() << "metrics compiled out";
  std::optional<json::Value> At1 = json::parse(analyzedReport(1));
  std::optional<json::Value> At4 = json::parse(analyzedReport(4));
  std::optional<json::Value> At8 = json::parse(analyzedReport(8));
  ASSERT_TRUE(At1 && At4 && At8);
  // Scheduling-dependent splits and wall-clock values may move; under
  // the default options none of that is a regression.
  EXPECT_EQ(diffReports(*At1, *At4).Regressions, 0u);
  EXPECT_EQ(diffReports(*At1, *At8).Regressions, 0u);
  EXPECT_EQ(diffReports(*At4, *At8).Regressions, 0u);
}

TEST(RunReport, PlantedStatChangeIsCaughtByTheDiffer) {
  TestStats Before = fixedStats();
  TestStats After = fixedStats();
  After.ReferencePairs += 1; // the plant
  std::optional<json::Value> B = json::parse(renderWith(Before));
  std::optional<json::Value> A = json::parse(renderWith(After));
  ASSERT_TRUE(B && A);
  DiffResult R = diffReports(*B, *A);
  EXPECT_GE(R.Regressions, 1u);
  bool Found = false;
  for (const DiffEntry &E : R.Changed)
    if (E.Key == "stats.reference_pairs") {
      Found = true;
      EXPECT_TRUE(E.Regression);
      EXPECT_EQ(E.Class, KeyClass::Stat);
    }
  EXPECT_TRUE(Found);
}
