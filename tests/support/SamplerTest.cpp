//===- tests/support/SamplerTest.cpp - Timeseries sampler tests -----------===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//
//
// The pdt-timeseries-v1 sampler: counter *deltas* (not totals) per
// sample with zero deltas omitted, custom registered series, the
// stop()-takes-a-final-sample contract, and the file stream's header.
// All tests run threadless (IntervalMs=0) and drive samples manually.
//
//===----------------------------------------------------------------------===//

#include "support/Sampler.h"

#include "support/Json.h"
#include "support/Metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

using namespace pdt;

namespace {

class SamplerTest : public testing::Test {
protected:
  void SetUp() override {
    if (!Sampler::compiledIn())
      GTEST_SKIP() << "tracing compiled out";
  }
  void TearDown() override {
    if (Sampler::compiledIn())
      Sampler::stop();
  }
};

/// The counter the tests pulse. FlightDumps is as good as any: what
/// matters is that deltas, not totals, land in the stream.
void pulse(uint64_t N) {
  for (uint64_t I = 0; I != N; ++I)
    Metrics::count(Metric::FlightDumps);
}

std::optional<uint64_t> flightDumpDelta(const std::string &Line) {
  std::optional<json::Value> V = json::parse(Line);
  if (!V)
    return std::nullopt;
  const json::Value *Counters = V->find("counters");
  if (!Counters)
    return std::nullopt;
  return Counters->uintAt("monitor.flight.dumps");
}

TEST_F(SamplerTest, SamplesCarryDeltasNotTotals) {
  Sampler::start(/*IntervalMs=*/0);
  pulse(5);
  Sampler::sampleOnceForTest();
  pulse(3);
  Sampler::sampleOnceForTest();
  std::vector<std::string> Lines = Sampler::recentLines();
  ASSERT_EQ(Lines.size(), 2u);
  EXPECT_EQ(flightDumpDelta(Lines[0]), 5u);
  EXPECT_EQ(flightDumpDelta(Lines[1]), 3u) << "second sample must carry the "
                                              "delta, not the running total";
}

TEST_F(SamplerTest, ZeroDeltasAreOmitted) {
  Sampler::start(0);
  Sampler::sampleOnceForTest(); // Nothing pulsed since start.
  std::vector<std::string> Lines = Sampler::recentLines();
  ASSERT_EQ(Lines.size(), 1u);
  EXPECT_EQ(flightDumpDelta(Lines[0]), std::nullopt);
}

TEST_F(SamplerTest, CustomSeriesAppearUntilUnregistered) {
  std::atomic<uint64_t> Gauge{7};
  Sampler::start(0);
  size_t Id = Sampler::registerSeries(
      "test.series", [&Gauge] { return Gauge.load(); });
  Sampler::sampleOnceForTest();
  Gauge.store(11);
  Sampler::sampleOnceForTest();
  Sampler::unregisterSeries(Id);
  Sampler::sampleOnceForTest();

  std::vector<std::string> Lines = Sampler::recentLines();
  ASSERT_EQ(Lines.size(), 3u);
  auto SeriesValue = [](const std::string &Line) -> std::optional<uint64_t> {
    std::optional<json::Value> V = json::parse(Line);
    const json::Value *S = V ? V->find("series") : nullptr;
    return S ? S->uintAt("test.series") : std::nullopt;
  };
  EXPECT_EQ(SeriesValue(Lines[0]), 7u);
  EXPECT_EQ(SeriesValue(Lines[1]), 11u) << "series publish live values";
  EXPECT_EQ(SeriesValue(Lines[2]), std::nullopt) << "unregistered: gone";
}

TEST_F(SamplerTest, StopTakesOneFinalSample) {
  Sampler::start(0);
  Sampler::Summary Before = Sampler::summary();
  EXPECT_EQ(Before.Samples, 0u);
  Sampler::stop();
  EXPECT_EQ(Sampler::summary().Samples, 1u)
      << "stop() must flush a final sample so short runs have data";
}

TEST_F(SamplerTest, FileStreamHasSchemaHeaderAndParseableSamples) {
  const char *Path = "sampler_test.jsonl";
  std::remove(Path);
  ASSERT_TRUE(Sampler::start(0, Path));
  pulse(2);
  Sampler::sampleOnceForTest();
  Sampler::stop(); // Final sample + close.

  std::ifstream File(Path);
  ASSERT_TRUE(File.good());
  std::string Line;
  ASSERT_TRUE(std::getline(File, Line));
  std::optional<json::Value> Header = json::parse(Line);
  ASSERT_TRUE(Header.has_value());
  EXPECT_EQ(Header->stringAt("schema"), "pdt-timeseries-v1");
  EXPECT_EQ(Header->uintAt("interval_ms"), 0u);
  ASSERT_NE(Header->find("build"), nullptr)
      << "timeseries header must stamp build info";
  unsigned Samples = 0;
  while (std::getline(File, Line)) {
    std::optional<json::Value> V = json::parse(Line);
    ASSERT_TRUE(V.has_value()) << "unparseable sample: " << Line;
    EXPECT_TRUE(V->uintAt("t_ms").has_value());
    ++Samples;
  }
  EXPECT_EQ(Samples, 2u);
  std::remove(Path);
}

TEST_F(SamplerTest, SummaryTracksTheConfiguredInterval) {
  Sampler::start(125);
  EXPECT_EQ(Sampler::summary().IntervalMs, 125u);
  Sampler::stop();
}

} // namespace
