file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_applications.dir/bench_table2_applications.cpp.o"
  "CMakeFiles/bench_table2_applications.dir/bench_table2_applications.cpp.o.d"
  "bench_table2_applications"
  "bench_table2_applications.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_applications.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
