//===- tests/core/SIVGeometrySweepTest.cpp ------------------------------------===//
//
// Exhaustive geometric sweeps of the single-subscript tests: for every
// coefficient/constant/box combination in a grid, the exact SIV suite
// must agree with brute-force enumeration *bidirectionally* (its
// Dependent/Independent verdicts are claims of exactness), and its
// direction sets must match the enumerated sign sets precisely.
//
//===----------------------------------------------------------------------===//

#include "core/Oracle.h"
#include "core/SIVTests.h"

#include "../TestHelpers.h"

#include <gtest/gtest.h>

using namespace pdt;
using namespace pdt::test;

namespace {

LinearExpr idx(const char *N, int64_t C = 1) {
  return LinearExpr::index(N, C);
}

/// Runs one subscript pair through testSingleSubscript and the oracle;
/// checks verdict exactness and direction-set equality.
void checkCase(int64_t A1, int64_t C1, int64_t A2, int64_t C2, int64_t L,
               int64_t U) {
  LoopNestContext Ctx = singleLoop("i", L, U);
  SubscriptPair Pair(idx("i", A1) + LinearExpr(C1),
                     idx("i", A2) + LinearExpr(C2));
  LinearExpr Eq = Pair.equation();
  if (shapeOfEquation(Eq) == SubscriptShape::GeneralMIV)
    return; // Not single-subscript testable (cannot happen here).
  SIVResult R = testSingleSubscript(Eq, Ctx);
  std::optional<OracleResult> Truth = enumerateDependences({Pair}, Ctx);
  ASSERT_TRUE(Truth.has_value());

  std::string Label = Pair.str() + " over [" + std::to_string(L) + ", " +
                      std::to_string(U) + "]";
  if (R.TheVerdict == Verdict::Independent) {
    EXPECT_FALSE(Truth->Dependent) << "false independence: " << Label;
    return;
  }
  // Finite bounds: the SIV suite must be exact, so Maybe is only
  // acceptable for ZIV-with-symbols (none here).
  EXPECT_EQ(R.TheVerdict, Verdict::Dependent) << Label;
  EXPECT_TRUE(Truth->Dependent) << "false dependence: " << Label;

  if (R.Index.empty())
    return; // ZIV: no direction claims.
  DirectionSet Observed = DirNone;
  for (const std::vector<int> &Tuple : Truth->DirectionTuples) {
    if (Tuple[0] < 0)
      Observed |= DirLT;
    else if (Tuple[0] > 0)
      Observed |= DirGT;
    else
      Observed |= DirEQ;
  }
  EXPECT_EQ(R.Directions, Observed)
      << "direction set mismatch on " << Label << ": test "
      << directionSetString(R.Directions) << " vs oracle "
      << directionSetString(Observed);

  if (R.Distance) {
    // A pinned distance means every dependent pair has it.
    for (const std::vector<int64_t> &D : Truth->DistanceVectors)
      EXPECT_EQ(D[0], *R.Distance) << Label;
  }
}

} // namespace

/// The grid is partitioned by coefficient pair so failures name their
/// family; each instance sweeps constants and boxes.
class SIVGeometrySweep
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t>> {};

TEST_P(SIVGeometrySweep, MatchesOracleExactly) {
  auto [A1, A2] = GetParam();
  for (int64_t C1 : {-7, -2, 0, 1, 5, 12}) {
    for (int64_t C2 : {-5, 0, 3, 9}) {
      for (auto [L, U] : {std::pair<int64_t, int64_t>{1, 10},
                          {1, 1},
                          {-3, 4},
                          {5, 9}}) {
        checkCase(A1, C1, A2, C2, L, U);
        if (::testing::Test::HasFatalFailure())
          return;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    CoefficientFamilies, SIVGeometrySweep,
    ::testing::Values(std::make_tuple(1, 1),   // strong
                      std::make_tuple(2, 2),   // strong, scaled
                      std::make_tuple(3, -3),  // weak-crossing
                      std::make_tuple(1, -1),  // weak-crossing, unit
                      std::make_tuple(1, 0),   // weak-zero (sink free)
                      std::make_tuple(0, 2),   // weak-zero (source free)
                      std::make_tuple(0, 0),   // ZIV
                      std::make_tuple(2, 3),   // general exact SIV
                      std::make_tuple(-2, 5),  // general, mixed signs
                      std::make_tuple(4, 6))); // general, shared factor

//===----------------------------------------------------------------------===//
// Symbolic edges
//===----------------------------------------------------------------------===//

TEST(SIVSymbolicEdge, WeakCrossingSymbolicIndependence) {
  // i + i' = 2n + 30 with n >= 1 in a loop [1, 10]: the sum is at
  // least 32 > 2U = 20 — independent symbolically.
  LoopBounds B;
  B.Index = "i";
  B.Lower = LinearExpr(1);
  B.Upper = LinearExpr(10);
  SymbolRangeMap Symbols;
  Symbols["n"] = Interval(1, std::nullopt);
  LoopNestContext Ctx({B}, Symbols);
  LinearExpr Eq = SubscriptPair(idx("i"), idx("i", -1) +
                                              LinearExpr::symbol("n", 2) +
                                              LinearExpr(30))
                      .equation();
  SIVResult R = testSIV(Eq, Ctx);
  EXPECT_EQ(R.TheVerdict, Verdict::Independent);
  EXPECT_EQ(R.Test, TestKind::SymbolicSIV);
}

TEST(SIVSymbolicEdge, GeneralSIVSymbolicDisproof) {
  // 2i = 3i' + n + 40 with i, i' in [1, 5] and n >= 1: LHS <= 10,
  // RHS >= 44 — the interval check disproves.
  LoopBounds B;
  B.Index = "i";
  B.Lower = LinearExpr(1);
  B.Upper = LinearExpr(5);
  SymbolRangeMap Symbols;
  Symbols["n"] = Interval(1, std::nullopt);
  LoopNestContext Ctx({B}, Symbols);
  LinearExpr Eq = SubscriptPair(idx("i", 2),
                                idx("i", 3) + LinearExpr::symbol("n") +
                                    LinearExpr(40))
                      .equation();
  SIVResult R = testSIV(Eq, Ctx);
  EXPECT_EQ(R.TheVerdict, Verdict::Independent);
}

TEST(SIVSymbolicEdge, WeakZeroNonDivisibleSymbolic) {
  // 2i = n: not expressible as an affine fixed iteration; the test
  // must stay conservative (Maybe), never claim independence (n may
  // be even) nor exact dependence.
  LoopNestContext Ctx = symbolicLoop("i", "n");
  LinearExpr Eq =
      SubscriptPair(idx("i", 2), LinearExpr::symbol("n")).equation();
  SIVResult R = testSIV(Eq, Ctx);
  EXPECT_EQ(R.TheVerdict, Verdict::Maybe);
}

TEST(SIVSymbolicEdge, StrongSIVSymbolCancellation) {
  // <i + n, i + n>: the symbols cancel, distance 0, plain strong SIV.
  LoopNestContext Ctx = singleLoop("i", 1, 10);
  LinearExpr Eq = SubscriptPair(idx("i") + LinearExpr::symbol("n"),
                                idx("i") + LinearExpr::symbol("n"))
                      .equation();
  SIVResult R = testSIV(Eq, Ctx);
  EXPECT_EQ(R.Test, TestKind::StrongSIV);
  EXPECT_EQ(R.Distance, std::optional<int64_t>(0));
  EXPECT_TRUE(R.Exact);
}
