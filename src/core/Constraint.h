//===- core/Constraint.h - Delta test constraint lattice --------*- C++ -*-===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Constraints derived by exact SIV tests on coupled subscripts and
/// intersected by the Delta test (paper section 5.2). A constraint
/// describes the set of (i, i') source/sink iteration pairs of one
/// loop index that can participate in a dependence:
///
///   Any           every pair (no information yet)
///   Distance(d)   i' = i + d                 (from strong SIV)
///   Line(a,b,c)   a*i + b*i' = c             (from general SIV forms)
///   Point(x,y)    i = x and i' = y           (from weak SIV forms)
///   Empty         no pair: independence proven
///
/// Intersection follows the geometry: line/line intersection solves a
/// 2x2 integer system; a rational (non-integral) intersection point
/// proves independence, which is precisely how the Delta test refines
/// what single-subscript tests alone cannot (section 5.2's example).
///
//===----------------------------------------------------------------------===//

#ifndef PDT_CORE_CONSTRAINT_H
#define PDT_CORE_CONSTRAINT_H

#include <cstdint>
#include <string>

namespace pdt {

/// A per-index constraint on (source iteration, sink iteration) pairs.
/// Lines are kept normalized (gcd 1, leading coefficient positive), so
/// structural equality is semantic equality.
class Constraint {
public:
  enum class Kind { Any, Distance, Line, Point, Empty };

  /// Default-constructed constraint is Any (top of the lattice).
  Constraint() = default;

  static Constraint any() { return Constraint(); }
  static Constraint empty();
  static Constraint distance(int64_t D);
  /// a*i + b*i' = c. Degenerate inputs (a == b == 0) collapse to Any
  /// (c == 0) or Empty (c != 0); a distance-shaped line collapses to
  /// Distance.
  static Constraint line(int64_t A, int64_t B, int64_t C);
  static Constraint point(int64_t X, int64_t Y);

  Kind kind() const { return TheKind; }
  bool isAny() const { return TheKind == Kind::Any; }
  bool isEmpty() const { return TheKind == Kind::Empty; }

  /// Distance d for Distance constraints.
  int64_t getDistance() const;
  /// Line coefficients; Distance and Point also present themselves as
  /// lines (Point as the unnormalized pair of its coordinates is not a
  /// line, so lineA/B/C assert on Point and Empty).
  int64_t lineA() const;
  int64_t lineB() const;
  int64_t lineC() const;
  int64_t pointX() const;
  int64_t pointY() const;

  /// Lattice meet. Never returns a strictly larger set; intersecting
  /// anything with Empty yields Empty.
  Constraint intersect(const Constraint &RHS) const;

  /// True when the integer pair (X, Y) satisfies the constraint.
  bool contains(int64_t X, int64_t Y) const;

  bool operator==(const Constraint &RHS) const;
  bool operator!=(const Constraint &RHS) const { return !(*this == RHS); }

  /// Renders e.g. "any", "dist 2", "line i + i' = 10", "point (3, 5)".
  std::string str() const;

private:
  Kind TheKind = Kind::Any;
  // Distance: D in A (unused B, C). Line: A*i + B*i' = C.
  // Point: (A, B) = (x, y).
  int64_t A = 0;
  int64_t B = 0;
  int64_t C = 0;

  /// The line form of Distance and Line constraints.
  void asLine(int64_t &LA, int64_t &LB, int64_t &LC) const;
};

} // namespace pdt

#endif // PDT_CORE_CONSTRAINT_H
