//===- core/ResultStore.h - Persistent dependence-result cache -*- C++ -*-===//
//
// Part of the practical-dependence-testing project, released under the
// MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The persistent, cross-process analogue of the in-memory
/// testDependence memo: dependence results keyed by the *canonical
/// content* of a lowered pair and stored durably through the
/// crash-safe segment store (support/Store.h).
///
/// ## Canonicalization
///
/// The store key is the full canonical string of (subscripts, loop
/// bounds, symbol ranges) after two normalizations:
///
///  - *alpha-renaming*: loop indices become their nest level (%0 is
///    the outermost), symbolic constants become slots ($0, $1, ...)
///    numbered by first appearance, so `DO i / A(i+n)` and
///    `DO k / A(k+m)` share one record;
///  - *bound normalization*: every level whose lower bound is a pure
///    integer constant L is shifted to start at 0 (i := i" + L adds
///    coeff*L to each constant), so `DO i = 1,n / A(i)` and
///    `DO i = 5,n+4 / A(i-4)` share one record.
///
/// Equal canonical strings imply alpha-equivalent content, hence
/// identical test results up to renaming: the key is the whole string,
/// never a hash, so collisions are structurally impossible and a hit
/// can never be unsound. Name-order differences that the renaming does
/// not capture merely miss. Any canonicalization step that would
/// overflow abandons the pair (no store participation) rather than
/// guessing.
///
/// ## Hydration
///
/// Stored values are *dehydrated*: direction vectors and distances are
/// shift-invariant and stored as-is, while transform hints mention
/// concrete names and iteration numbers, so their index becomes a
/// level, a Split crossing point is stored in shifted coordinates
/// (p - L), and a symbolic crossing sum as sum - 2L over slots. A hit
/// rehydrates with the *querying* nest's names and shifts. The
/// TestStats delta of the original computation is stored alongside and
/// replayed on a hit, so warm-run statistics equal a cold run exactly.
/// Degraded results are never persisted (the failure may be transient
/// and must not poison future runs).
///
/// ## Robustness
///
/// All durability concerns (checksums, torn tails, quarantine,
/// rebuild, generation skew) live in SegmentStore; this layer adds the
/// same never-crash posture on top: a store that failed to open, a
/// record that fails to parse, or a rehydration that would overflow
/// all degrade to a plain miss — the analysis then computes the result
/// as if the store did not exist.
///
/// Enablement: programmatic (ResultStore::activate) or via the
/// environment — PDT_STORE=1 with PDT_STORE_DIR naming the directory
/// (default .pdt-store), picked up by the analyzer pipeline. The
/// PDT_PERSISTENT_STORE build option compiles the whole layer out;
/// activate() then reports failure and the analysis is byte-identical
/// to a build that never had a store.
///
//===----------------------------------------------------------------------===//

#ifndef PDT_CORE_RESULTSTORE_H
#define PDT_CORE_RESULTSTORE_H

#include "analysis/LoopNest.h"
#include "core/DependenceTester.h"
#include "core/Subscript.h"
#include "core/TestStats.h"
#include "support/Store.h"

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace pdt {

/// False when the build compiled the persistent store out
/// (PDT_PERSISTENT_STORE=OFF); activate() then always fails and
/// testDependence never probes a store.
bool resultStoreCompiledIn();

/// A canonicalized pair query: the content key plus the renaming /
/// shift context needed to dehydrate results on insert and rehydrate
/// them on lookup.
struct CanonicalPair {
  /// The full canonical content string (the store key).
  std::string Key;
  /// Nest level -> original index name.
  std::vector<std::string> LevelIndex;
  /// Nest level -> lower-bound shift L (0 when not normalized).
  std::vector<int64_t> Shift;
  /// Symbol slot -> original symbol name.
  std::vector<std::string> SlotSymbol;
  /// Original symbol name -> slot.
  std::map<std::string, unsigned> SymbolSlot;
};

/// The persistent result cache over one store directory. Thread-safe;
/// all failure modes degrade to misses. Use the static activation API
/// for the process-wide store testDependence probes.
class ResultStore {
public:
  /// Canonicalizes a lowered pair. nullopt when the content cannot be
  /// canonicalized safely (e.g. a bound shift would overflow); the
  /// caller then skips the store for this pair.
  static std::optional<CanonicalPair>
  canonicalize(const std::vector<SubscriptPair> &Subscripts,
               const LoopNestContext &Ctx);

  /// Opens (healing as needed) the store at \p Dir under \p Generation
  /// — the analyzer version + options fingerprint; records written
  /// under any other generation are invalidated wholesale — and makes
  /// it the process-wide store probed by testDependence. Replaces any
  /// previously active store (flushing it first). Returns false (store
  /// inactive) when compiled out. A store that cannot persist still
  /// activates: it serves misses and degrades writes, per the
  /// never-crash contract.
  static bool activate(const std::string &Dir, const std::string &Generation);

  /// Flushes and closes the process-wide store.
  static void deactivate();

  /// The process-wide store, or null when inactive, compiled out, or
  /// bypassed on this thread (StoreBypassGuard).
  static std::shared_ptr<ResultStore> active();

  /// Looks up a canonicalized pair. On a hit, rehydrates the result
  /// with the querying context in \p Q, replays the stored TestStats
  /// delta into \p Stats, and counts the hit; otherwise counts a miss.
  std::optional<DependenceTestResult> lookup(const CanonicalPair &Q,
                                             TestStats *Stats);

  /// Persists a result computed for \p Q. \p Delta is the TestStats
  /// the computation recorded (replayed on future hits). Degraded
  /// results and results whose hints cannot be dehydrated are not
  /// persisted.
  void insert(const CanonicalPair &Q, const DependenceTestResult &Result,
              const TestStats &Delta);

  /// Recovery counters of the underlying segment store.
  StoreRecoveryStats recoveryStats() { return Segments->recoveryStats(); }

  /// True once the underlying store stopped persisting.
  bool broken() const { return Segments->broken(); }

  /// Records currently served from memory.
  uint64_t size() { return Segments->size(); }

  const std::string &directory() const { return Segments->directory(); }
  const std::string &generation() const { return Generation; }

private:
  ResultStore(std::unique_ptr<SegmentStore> S, std::string Gen)
      : Segments(std::move(S)), Generation(std::move(Gen)) {}

  std::unique_ptr<SegmentStore> Segments;
  std::string Generation;
};

/// RAII thread-local store bypass: while alive, ResultStore::active()
/// returns null on this thread. The fuzzer's cached-vs-fresh
/// differential uses this to compute its fresh baseline.
class StoreBypassGuard {
public:
  StoreBypassGuard();
  ~StoreBypassGuard();
  StoreBypassGuard(const StoreBypassGuard &) = delete;
  StoreBypassGuard &operator=(const StoreBypassGuard &) = delete;
};

} // namespace pdt

#endif // PDT_CORE_RESULTSTORE_H
